"""Unit tests for the RISC-R instruction definitions."""

import pytest

from repro.isa.instructions import FuClass, Instruction, Op


class TestClassification:
    def test_load_store(self):
        ld = Instruction(Op.LD, rd=1, ra=2, imm=8)
        st = Instruction(Op.ST, ra=2, imm=8, rb=3)
        sth = Instruction(Op.STH, ra=2, imm=4, rb=3)
        assert ld.is_load and not ld.is_store
        assert st.is_store and not st.is_load
        assert sth.is_store and sth.is_partial_store
        assert not st.is_partial_store

    def test_control_flags(self):
        beqz = Instruction(Op.BEQZ, ra=1, target=0)
        br = Instruction(Op.BR, target=0)
        call = Instruction(Op.CALL, rd=5, target=0)
        ret = Instruction(Op.RET, ra=5)
        jmp = Instruction(Op.JMP, ra=5)
        assert beqz.is_control and beqz.is_conditional
        assert br.is_control and not br.is_conditional
        assert call.is_call and call.is_control
        assert ret.is_return and ret.is_indirect
        assert jmp.is_indirect and not jmp.is_return

    def test_membar(self):
        assert Instruction(Op.MEMBAR).is_membar

    def test_fu_classes(self):
        assert Instruction(Op.ADD, rd=1, ra=2, rb=3).fu_class is FuClass.INT
        assert Instruction(Op.XOR, rd=1, ra=2, rb=3).fu_class is FuClass.LOGIC
        assert Instruction(Op.FADD, rd=1, ra=2, rb=3).fu_class is FuClass.FP
        assert Instruction(Op.LD, rd=1, ra=2).fu_class is FuClass.MEM
        assert Instruction(Op.BNEZ, ra=1, target=0).fu_class is FuClass.INT

    def test_exec_latency(self):
        assert Instruction(Op.ADD, rd=1, ra=2, rb=3).exec_latency == 1
        assert Instruction(Op.MUL, rd=1, ra=2, rb=3).exec_latency == 7
        assert Instruction(Op.FDIV, rd=1, ra=2, rb=3).exec_latency == 12


class TestRegisterSemantics:
    def test_writes_reg(self):
        assert Instruction(Op.ADD, rd=1, ra=2, rb=3).writes_reg
        assert not Instruction(Op.ADD, rd=0, ra=2, rb=3).writes_reg  # r0 sink
        assert not Instruction(Op.ST, ra=1, rb=2).writes_reg
        assert Instruction(Op.CALL, rd=5, target=0).writes_reg
        assert Instruction(Op.LD, rd=4, ra=1).writes_reg

    def test_source_regs(self):
        assert Instruction(Op.ADD, rd=1, ra=2, rb=3).source_regs == (2, 3)
        assert Instruction(Op.LD, rd=1, ra=2).source_regs == (2,)
        assert Instruction(Op.ST, ra=2, rb=3).source_regs == (2, 3)
        assert Instruction(Op.LDI, rd=1, imm=5).source_regs == ()
        assert Instruction(Op.BEQZ, ra=4, target=0).source_regs == (4,)
        # FMA reads its destination as a third source.
        assert Instruction(Op.FMA, rd=1, ra=2, rb=3).source_regs == (2, 3, 1)

    def test_register_range_validation(self):
        with pytest.raises(ValueError):
            Instruction(Op.ADD, rd=64, ra=1, rb=2)
        with pytest.raises(ValueError):
            Instruction(Op.ADD, rd=1, ra=-1, rb=2)

    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Op.BEQZ, ra=1)
        with pytest.raises(ValueError):
            Instruction(Op.BR)
        # Indirect jumps carry no static target.
        Instruction(Op.JMP, ra=1)
        Instruction(Op.RET, ra=1)


class TestStr:
    def test_renderings(self):
        assert str(Instruction(Op.ADD, rd=1, ra=2, rb=3)) == "add r1 r2 r3"
        assert str(Instruction(Op.LD, rd=4, ra=2, imm=16)) == "ld r4 r2+16"
        assert str(Instruction(Op.ST, ra=2, imm=8, rb=5)) == "st r2+8 r5"
        assert str(Instruction(Op.BNEZ, ra=1, target=7)) == "bnez r1 @7"
        assert str(Instruction(Op.NOP)) == "nop"
