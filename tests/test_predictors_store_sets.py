"""Unit tests for the store-sets memory dependence predictor."""

from repro.predictors.store_sets import StoreSets


class TestStoreSets:
    def test_untrained_loads_unconstrained(self):
        sets = StoreSets()
        assert sets.load_dependence(0, load_pc=0x10) is None

    def test_violation_creates_dependence(self):
        sets = StoreSets()
        sets.record_violation(load_pc=0x10, store_pc=0x20)
        sets.store_dispatched(0, store_pc=0x20, seq=5)
        assert sets.load_dependence(0, load_pc=0x10) == 5

    def test_completed_store_clears_dependence(self):
        sets = StoreSets()
        sets.record_violation(0x10, 0x20)
        sets.store_dispatched(0, 0x20, seq=5)
        sets.store_completed(0, 0x20, seq=5)
        assert sets.load_dependence(0, 0x10) is None

    def test_newer_store_supersedes(self):
        sets = StoreSets()
        sets.record_violation(0x10, 0x20)
        sets.store_dispatched(0, 0x20, seq=5)
        sets.store_dispatched(0, 0x20, seq=9)
        assert sets.load_dependence(0, 0x10) == 9
        # Completion of the older instance must not clear the newer one.
        sets.store_completed(0, 0x20, seq=5)
        assert sets.load_dependence(0, 0x10) == 9

    def test_dependences_are_per_thread(self):
        sets = StoreSets()
        sets.record_violation(0x10, 0x20)
        sets.store_dispatched(0, 0x20, seq=5)
        assert sets.load_dependence(1, 0x10) is None

    def test_merging_existing_sets(self):
        sets = StoreSets()
        sets.record_violation(0x10, 0x20)
        sets.record_violation(0x30, 0x20)  # same store joins both loads
        sets.store_dispatched(0, 0x20, seq=7)
        assert sets.load_dependence(0, 0x10) == 7
        assert sets.load_dependence(0, 0x30) == 7

    def test_stats(self):
        sets = StoreSets()
        sets.record_violation(0x10, 0x20)
        assert sets.stats.violations == 1
        sets.store_dispatched(0, 0x20, seq=1)
        sets.load_dependence(0, 0x10)
        assert sets.stats.forced_waits == 1
