"""Engine resilience under chaos: worker crashes ride out to a
byte-identical artifact, and a deterministic killer is quarantined as
a structured infra-failure row the report surfaces."""

import re

import pytest

from repro.campaign.engine import (INFRA_FAILURE_OUTCOME, CampaignEngine,
                                   run_campaign)
from repro.campaign.report import aggregate, coverage_table
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.chaos import ChaosPlan, ChaosRule, armed

SPEC = CampaignSpec(kinds=("srt",), workloads=("compress",),
                    models=("transient-result",), injections=10,
                    instructions=100, warmup=10, seed=3)


def test_worker_crashes_ride_out_byte_identical(tmp_path):
    """Headline: crashes mid-campaign, yet the artifact converges on
    the fault-free bytes (missing chunks re-executed, order kept)."""
    clean = run_campaign(SPEC, tmp_path / "clean", jobs=2)
    plan = ChaosPlan(seed=13, rules=(
        ChaosRule("campaign.worker.task", "crash", p=0.4),))
    with armed(plan):
        chaotic = run_campaign(SPEC, tmp_path / "chaos", jobs=2)

    assert chaotic["state"] == "complete"
    infra = chaotic["infra"]
    assert infra["pool_rebuilds"] >= 1, "no crash fired; plan is inert"
    assert infra["quarantined"] == 0
    assert (tmp_path / "chaos" / "results.jsonl").read_bytes() == \
        (tmp_path / "clean" / "results.jsonl").read_bytes()
    # The clean summary carries no infra block at all.
    assert "infra" not in clean


def test_deterministic_killer_is_quarantined(tmp_path):
    """A task that kills its worker every time must not abort the
    campaign: after quarantine_after consecutive kills it is recorded
    as a structured infra-failure row and the rest completes."""
    clean = run_campaign(SPEC, tmp_path / "clean", jobs=1)
    victim = CampaignStore(tmp_path / "clean").records()[3]["task_id"]

    plan = ChaosPlan(rules=(
        ChaosRule("campaign.worker.task", "crash",
                  key_pattern=f"^{re.escape(victim)}$",
                  max_attempt=99),))
    with armed(plan):
        summary = run_campaign(SPEC, tmp_path / "chaos", jobs=2)

    assert summary["state"] == "complete"
    assert summary["infra"]["quarantined"] == 1

    records = CampaignStore(tmp_path / "chaos").records()
    clean_records = CampaignStore(tmp_path / "clean").records()
    assert [r["task_id"] for r in records] == \
        [r["task_id"] for r in clean_records]  # canonical order kept
    by_id = {r["task_id"]: r for r in records}
    row = by_id[victim]
    assert row["outcome"] == INFRA_FAILURE_OUTCOME
    assert row["termination"] == INFRA_FAILURE_OUTCOME
    assert row["infra"]["pool_kills"] >= 3
    # Every other row matches the fault-free run exactly.
    for record in clean_records:
        if record["task_id"] != victim:
            assert by_id[record["task_id"]] == record


def test_infra_failure_visible_in_report(tmp_path):
    """`campaign report` must show quarantined rows, not hide them."""
    run_campaign(SPEC, tmp_path / "clean", jobs=1)
    victim = CampaignStore(tmp_path / "clean").records()[0]["task_id"]
    plan = ChaosPlan(rules=(
        ChaosRule("campaign.worker.task", "crash",
                  key_pattern=f"^{re.escape(victim)}$",
                  max_attempt=99),))
    with armed(plan):
        run_campaign(SPEC, tmp_path / "chaos", jobs=2)

    strata = aggregate(CampaignStore(tmp_path / "chaos").records())
    table = coverage_table(strata)
    assert INFRA_FAILURE_OUTCOME in table.series
    stratum = table.rows["srt/compress"]
    assert stratum[INFRA_FAILURE_OUTCOME] == 1
    assert stratum["n"] == SPEC.total_tasks()


def test_resume_after_hard_kill_mid_campaign(tmp_path):
    """A campaign killed between chunks resumes to the same bytes."""
    reference = run_campaign(SPEC, tmp_path / "ref", jobs=1)
    assert reference["state"] == "complete"

    # Simulate the kill: a half-finished artifact with a torn tail.
    ref_bytes = (tmp_path / "ref" / "results.jsonl").read_bytes()
    out = tmp_path / "resume"
    engine = CampaignEngine(SPEC, out, jobs=1)
    engine.store.initialize(SPEC)
    cut = ref_bytes[:int(len(ref_bytes) * 0.6) + 7]
    (out / "results.jsonl").write_bytes(cut)

    summary = CampaignEngine(SPEC, out, jobs=1).run()
    assert summary["state"] == "complete"
    assert (out / "results.jsonl").read_bytes() == ref_bytes
