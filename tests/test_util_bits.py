"""Unit tests for 64-bit integer helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import MASK64, flip_bit, sign_extend, to_signed, to_unsigned


class TestToUnsigned:
    def test_masks_to_64_bits(self):
        assert to_unsigned(1 << 64) == 0
        assert to_unsigned((1 << 64) + 5) == 5

    def test_negative_wraps(self):
        assert to_unsigned(-1) == MASK64
        assert to_unsigned(-2) == MASK64 - 1

    def test_identity_in_range(self):
        assert to_unsigned(12345) == 12345


class TestToSigned:
    def test_positive_unchanged(self):
        assert to_signed(5) == 5
        assert to_signed((1 << 63) - 1) == (1 << 63) - 1

    def test_high_bit_is_negative(self):
        assert to_signed(MASK64) == -1
        assert to_signed(1 << 63) == -(1 << 63)

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip(self, value):
        assert to_signed(to_unsigned(value)) == value


class TestSignExtend:
    def test_positive_small(self):
        assert sign_extend(0x7F, 8) == 0x7F

    def test_negative_small(self):
        assert sign_extend(0x80, 8) == to_unsigned(-128)
        assert sign_extend(0xFF, 8) == MASK64

    def test_full_width_identity(self):
        assert sign_extend(MASK64, 64) == MASK64

    @pytest.mark.parametrize("bits", [0, -1, 65])
    def test_rejects_bad_width(self, bits):
        with pytest.raises(ValueError):
            sign_extend(1, bits)


class TestFlipBit:
    def test_flip_sets_and_clears(self):
        assert flip_bit(0, 3) == 8
        assert flip_bit(8, 3) == 0

    def test_flip_high_bit(self):
        assert flip_bit(0, 63) == 1 << 63

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            flip_bit(0, 64)
        with pytest.raises(ValueError):
            flip_bit(0, -1)

    @given(st.integers(min_value=0, max_value=MASK64),
           st.integers(min_value=0, max_value=63))
    def test_double_flip_is_identity(self, value, bit):
        assert flip_bit(flip_bit(value, bit), bit) == value
