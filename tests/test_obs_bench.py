"""Bench trajectory recording and the perf-regression gate.

The gate's teeth are proven the mutation-gate way: seed a 2x slowdown
into a recorded trajectory and assert both :func:`repro.obs.bench.compare`
and the ``repro obs bench-check`` CLI flag it."""

import json

import pytest

from repro.obs import bench
from repro.obs.cli import main as obs_main


@pytest.fixture()
def bench_out(tmp_path, monkeypatch):
    out = tmp_path / "bench.json"
    monkeypatch.setenv(bench.ENV_OUT, str(out))
    return out


def load(path):
    with open(path, "r", encoding="utf-8") as source:
        return json.load(source)


class TestRecord:
    def test_noop_when_env_unset(self, tmp_path, monkeypatch):
        monkeypatch.delenv(bench.ENV_OUT, raising=False)
        assert bench.record("m", ops_per_s=100.0) is None

    def test_requires_exactly_one_measurement(self, bench_out):
        with pytest.raises(ValueError):
            bench.record("m")
        with pytest.raises(ValueError):
            bench.record("m", ops_per_s=1.0, wall_s=1.0)

    def test_records_normalized_rate_and_wall(self, bench_out):
        bench.record("pkg.rate", ops_per_s=1000.0, meta={"n": 3})
        bench.record("pkg.wall", wall_s=2.0)
        data = load(bench_out)
        calibration = data["calibration"]
        assert calibration > 0
        rate = data["metrics"]["pkg.rate"]
        assert rate["kind"] == "rate"
        assert rate["raw"] == 1000.0
        # Stored values are rounded (9 decimals) for stable diffs.
        assert rate["normalized"] == pytest.approx(
            1000.0 / calibration, rel=1e-6, abs=1e-9)
        assert rate["meta"] == {"n": 3}
        wall = data["metrics"]["pkg.wall"]
        assert wall["kind"] == "wall"
        assert wall["normalized"] == pytest.approx(
            2.0 * calibration, rel=1e-6)

    def test_merges_into_existing_file(self, bench_out):
        bench.record("a", ops_per_s=1.0)
        first = load(bench_out)
        bench.record("b", ops_per_s=2.0)
        second = load(bench_out)
        # One calibration per file; both metrics present.
        assert second["calibration"] == first["calibration"]
        assert set(second["metrics"]) == {"a", "b"}


def trajectory(metrics):
    return {"version": bench.BENCH_SCHEMA, "calibration": 1.0,
            "metrics": metrics}


class TestCompare:
    def test_identical_is_clean(self):
        data = trajectory({"m": {"kind": "rate", "normalized": 10.0}})
        assert bench.compare(data, data) == []

    def test_seeded_2x_slowdown_is_flagged(self):
        baseline = trajectory({
            "rate": {"kind": "rate", "normalized": 10.0},
            "wall": {"kind": "wall", "normalized": 4.0},
        })
        slowed = trajectory({
            "rate": {"kind": "rate", "normalized": 5.0},   # half speed
            "wall": {"kind": "wall", "normalized": 8.0},   # twice as long
        })
        findings = bench.compare(slowed, baseline)
        assert sorted(f["metric"] for f in findings) == ["rate", "wall"]

    def test_improvement_never_fails(self):
        baseline = trajectory({
            "rate": {"kind": "rate", "normalized": 10.0},
            "wall": {"kind": "wall", "normalized": 4.0},
        })
        faster = trajectory({
            "rate": {"kind": "rate", "normalized": 40.0},
            "wall": {"kind": "wall", "normalized": 1.0},
        })
        assert bench.compare(faster, baseline) == []

    def test_within_tolerance_is_clean(self):
        baseline = trajectory({"m": {"kind": "rate", "normalized": 10.0}})
        slightly = trajectory({"m": {"kind": "rate", "normalized": 8.0}})
        assert bench.compare(slightly, baseline, tolerance=0.25) == []
        assert bench.compare(slightly, baseline, tolerance=0.1) != []

    def test_missing_metric_is_a_regression(self):
        baseline = trajectory({"m": {"kind": "rate", "normalized": 10.0}})
        findings = bench.compare(trajectory({}), baseline)
        assert findings and "missing" in findings[0]["error"]


class TestBenchCheckCli:
    def write(self, path, data):
        with open(path, "w", encoding="utf-8") as sink:
            json.dump(data, sink)
        return str(path)

    def test_clean_exits_zero(self, tmp_path, capsys):
        data = trajectory({"m": {"kind": "rate", "normalized": 10.0}})
        current = self.write(tmp_path / "current.json", data)
        baseline = self.write(tmp_path / "baseline.json", data)
        code = obs_main(["bench-check", current, "--baseline", baseline])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_seeded_slowdown_exits_nonzero(self, tmp_path, capsys):
        baseline = self.write(
            tmp_path / "baseline.json",
            trajectory({"m": {"kind": "rate", "normalized": 10.0}}))
        current = self.write(
            tmp_path / "current.json",
            trajectory({"m": {"kind": "rate", "normalized": 5.0}}))
        code = obs_main(["bench-check", current, "--baseline", baseline])
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSION" in captured.err
        assert "refresh" in captured.err  # the one-line recipe hint

    def test_empty_baseline_fails_loudly(self, tmp_path, capsys):
        current = self.write(
            tmp_path / "current.json",
            trajectory({"m": {"kind": "rate", "normalized": 5.0}}))
        baseline = self.write(tmp_path / "baseline.json", {})
        code = obs_main(["bench-check", current, "--baseline", baseline])
        assert code == 1
        assert "no baseline metrics" in capsys.readouterr().err
