"""Call-graph construction: name resolution (imports, self chains,
ctor-typed members, module globals, nested defs), call-site kind
classification, and the SCC/fixpoint machinery the rules build on."""

import ast
import textwrap

from repro.analysis.flow.callgraph import (build_callgraph,
                                           solve_bottom_up,
                                           strongly_connected)


def graph_of(sources=None, **kw):
    """Build a graph from ``{"rel/path.py": source}`` (keyword args
    spell ``m.py`` as ``m`` for the single-module case)."""
    sources = dict(sources or {})
    sources.update({f"{name}.py": src for name, src in kw.items()})
    modules = [(rel, ast.parse(textwrap.dedent(src)))
               for rel, src in sources.items()]
    return build_callgraph(modules, package="pkg")


def sites_of(graph, fid):
    return {(s.name, s.kind, s.target) for s in graph.sites[fid]}


class TestResolution:
    def test_from_import_resolves_across_modules(self):
        graph = graph_of(
            a="from pkg.b import helper\n"
              "def caller():\n"
              "    helper()\n",
            b="def helper():\n"
              "    pass\n")
        assert ("pkg.b.helper", "call", "b.py::helper") in \
            sites_of(graph, "a.py::caller")

    def test_reexport_chased_through_package_init(self):
        graph = graph_of({
            "sub/__init__.py": "from pkg.sub.impl import helper\n",
            "sub/impl.py": "def helper():\n"
                           "    pass\n",
            "a.py": "from pkg.sub import helper\n"
                    "def caller():\n"
                    "    helper()\n"})
        assert ("pkg.sub.helper", "call", "sub/impl.py::helper") in \
            sites_of(graph, "a.py::caller")

    def test_self_method_and_ctor_member_chain(self):
        graph = graph_of(
            m="class Cache:\n"
              "    def get(self):\n"
              "        pass\n"
              "class Server:\n"
              "    def __init__(self):\n"
              "        self.cache = Cache()\n"
              "    def probe(self):\n"
              "        self.cache.get()\n"
              "        self.helper()\n"
              "    def helper(self):\n"
              "        pass\n")
        sites = sites_of(graph, "m.py::Server.probe")
        assert ("self.cache.get", "call", "m.py::Cache.get") in sites
        assert ("self.helper", "call", "m.py::Server.helper") in sites

    def test_module_global_and_local_alias(self):
        graph = graph_of(
            m="from typing import Optional\n"
              "class Controller:\n"
              "    def fire(self):\n"
              "        pass\n"
              "_CTRL: Optional[Controller] = None\n"
              "def hook():\n"
              "    ctrl = _CTRL\n"
              "    ctrl.fire()\n")
        assert ("ctrl.fire", "call", "m.py::Controller.fire") in \
            sites_of(graph, "m.py::hook")

    def test_annotated_param_resolves_method(self):
        graph = graph_of(
            m="class Pool:\n"
              "    def execute(self):\n"
              "        pass\n"
              "def run(pool: Pool):\n"
              "    pool.execute()\n")
        assert ("pool.execute", "call", "m.py::Pool.execute") in \
            sites_of(graph, "m.py::run")

    def test_nested_def_visible_to_encloser_only(self):
        graph = graph_of(
            m="def outer():\n"
              "    def inner():\n"
              "        pass\n"
              "    inner()\n")
        assert ("inner", "call", "m.py::outer.inner") in \
            sites_of(graph, "m.py::outer")
        # inner's body is not part of outer's site list
        assert "m.py::outer.inner" in graph.sites


class TestSiteKinds:
    SRC = """
        import asyncio
        import threading

        async def work():
            pass

        def blocking():
            pass

        async def caller():
            await work()
            asyncio.create_task(work())
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, blocking)
            asyncio.run(work())

        def spawn():
            threading.Thread(target=blocking).start()

        def drop():
            work()
        """

    def test_kinds(self):
        graph = graph_of(m=self.SRC)
        sites = sites_of(graph, "m.py::caller")
        assert ("work", "await", "m.py::work") in sites
        assert ("work", "task", "m.py::work") in sites
        assert ("blocking", "executor", "m.py::blocking") in sites
        assert ("work", "enters-loop", "m.py::work") in sites

    def test_thread_target_is_executor_kind(self):
        graph = graph_of(m=self.SRC)
        assert ("blocking", "executor", "m.py::blocking") in \
            sites_of(graph, "m.py::spawn")

    def test_discarded_flag_on_expression_statement(self):
        graph = graph_of(m=self.SRC)
        site = next(s for s in graph.sites["m.py::drop"]
                    if s.name == "work")
        assert site.discarded
        awaited = next(s for s in graph.sites["m.py::caller"]
                       if s.kind == "await")
        assert not awaited.discarded

    def test_partial_unwrapped_to_its_callable(self):
        graph = graph_of(
            m="import functools, threading\n"
              "def blocking(x):\n"
              "    pass\n"
              "def spawn():\n"
              "    t = threading.Thread(\n"
              "        target=functools.partial(blocking, 1))\n"
              "    t.start()\n")
        assert ("blocking", "executor", "m.py::blocking") in \
            sites_of(graph, "m.py::spawn")

    def test_import_alias_canonicalized(self):
        graph = graph_of(
            m="import time as t\n"
              "def f():\n"
              "    t.sleep(1)\n")
        assert any(s.name == "time.sleep"
                   for s in graph.sites["m.py::f"])


class TestFixpoint:
    def test_tarjan_emits_callees_first(self):
        edges = {"a": ["b"], "b": ["c", "a"], "c": [], "d": ["c"]}
        sccs = strongly_connected(sorted(edges), edges.get)
        flat = {node: pos for pos, scc in enumerate(sccs)
                for node in scc}
        assert {"a", "b"} == set(sccs[flat["a"]])  # the cycle is one SCC
        assert flat["c"] < flat["a"]
        assert flat["c"] < flat["d"]

    def test_solve_bottom_up_reaches_fixpoint_on_cycle(self):
        graph = graph_of(
            m="def a():\n"
              "    b()\n"
              "def b():\n"
              "    a()\n"
              "    c()\n"
              "def c():\n"
              "    pass\n")

        def transfer(fid, summaries):
            # "reaches c" — must propagate around the a<->b cycle
            out = fid.endswith("::c")
            for target in graph.callees(fid, {"call"}):
                out = out or bool(summaries.get(target))
            return out

        summaries = solve_bottom_up(graph, {"call"}, transfer)
        assert summaries["m.py::a"] is True
        assert summaries["m.py::b"] is True
        assert summaries["m.py::c"] is True
