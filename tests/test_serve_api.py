"""HTTP API end-to-end: real daemon on a background loop, stdlib
client, real simulation pool (tiny workloads).  Covers the PR's
acceptance demo: concurrent identical submissions coalesce onto one
execution, resubmission after restart is served from the disk cache,
and /metrics counters stay consistent throughout."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.api import BackgroundServer, ServeServer
from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import JobSpec
from repro.serve.pool import JobCancelled
from repro.serve.scheduler import Scheduler

RUN_PARAMS = {"kind": "srt", "benchmarks": ["gcc"], "instructions": 250}


@pytest.fixture()
def server(tmp_path):
    with BackgroundServer(workdir=str(tmp_path / "serve"),
                          max_queue=4, max_running=2) as handle:
        client = ServeClient(handle.url)
        client.ping()
        yield handle, client


class TestLifecycle:
    def test_submit_wait_fetch(self, server):
        _, client = server
        job = client.submit("run", RUN_PARAMS)["job"]
        assert job["state"] in ("queued", "running", "done")
        final = client.wait_for(job["id"], timeout=120)
        assert final["job"]["state"] == "done"
        result = client.result(job["id"])["job"]["result"]
        assert result["kind"] == "srt"
        assert result["cycles"] > 0
        assert "mean_efficiency" in result

    def test_envelope_shape(self, server):
        _, client = server
        payload = client.submit("run", RUN_PARAMS)
        assert payload["tool"] == "serve"
        assert payload["version"] >= 2
        assert payload["ok"] is True

    def test_health_and_metrics(self, server):
        _, client = server
        health = client.healthz()
        assert health["state"] == "serving"
        metrics = client.metrics()
        assert set(metrics["counters"]) >= {"accepted", "completed",
                                            "cache_hits", "coalesced"}
        assert metrics["queue"]["limit"] == 4

    def test_unknown_job_404(self, server):
        _, client = server
        with pytest.raises(ServeError) as exc:
            client.status("j999999")
        assert exc.value.status == 404

    def test_bad_spec_400(self, server):
        _, client = server
        with pytest.raises(ServeError) as exc:
            client.submit("run", {"kind": "warp-drive"})
        assert exc.value.status == 400

    def test_result_before_done_409(self, server):
        handle, client = server
        # A job that blocks forever until cancelled.
        job = client.submit("campaign", {
            "kinds": ["srt"], "workloads": ["gcc"],
            "models": ["transient-result"], "injections": 500,
            "instructions": 400})["job"]
        with pytest.raises(ServeError) as exc:
            client.result(job["id"])
        assert exc.value.status == 409
        client.cancel(job["id"])


class TestCacheOverHTTP:
    def test_resubmit_is_cache_hit_and_byte_identical(self, server):
        _, client = server
        first = client.submit("run", RUN_PARAMS)["job"]
        client.wait_for(first["id"], timeout=120)
        second = client.submit("run", RUN_PARAMS)["job"]
        assert second["state"] == "done"
        assert second["cache_hit"] is True
        blob1 = json.dumps(client.result(first["id"])["job"]["result"],
                           sort_keys=True)
        blob2 = json.dumps(client.result(second["id"])["job"]["result"],
                           sort_keys=True)
        assert blob1 == blob2
        metrics = client.metrics()
        assert metrics["counters"]["cache_hits"] == 1
        assert metrics["cache"]["entries"] == 1

    def test_cache_survives_daemon_restart(self, tmp_path):
        workdir = str(tmp_path / "serve")
        with BackgroundServer(workdir=workdir) as handle:
            client = ServeClient(handle.url)
            client.ping()
            job = client.submit("run", RUN_PARAMS)["job"]
            first = client.wait_for(job["id"], timeout=120)
            assert first["job"]["cache_hit"] is False
        # Fresh daemon, same workdir: served from disk, no recompute.
        with BackgroundServer(workdir=workdir) as handle:
            client = ServeClient(handle.url)
            client.ping()
            job = client.submit("run", RUN_PARAMS)["job"]
            assert job["state"] == "done"
            assert job["cache_hit"] is True


class FakePool:
    """Deterministic pool for coalescing/admission tests over HTTP."""

    def __init__(self):
        self.gate = threading.Event()
        self.executions = 0
        self.lock = threading.Lock()

    def execute(self, spec, cancel):
        with self.lock:
            self.executions += 1
        while not self.gate.wait(timeout=0.02):
            if cancel.is_set():
                raise JobCancelled("stopped")
        return {"echo": spec.params.get("instructions")}


@pytest.fixture()
def fake_server(tmp_path):
    pool = FakePool()
    scheduler = Scheduler(pool, ResultCache(tmp_path / "cache"),
                          max_queue=2, max_running=1)
    with BackgroundServer(scheduler=scheduler) as handle:
        client = ServeClient(handle.url)
        client.ping()
        yield handle, client, pool


class TestCoalescingOverHTTP:
    def test_concurrent_identical_submissions_one_execution(
            self, fake_server):
        _, client, pool = fake_server
        first = client.submit("run", RUN_PARAMS, client="a")["job"]
        second = client.submit("run", RUN_PARAMS, client="b")["job"]
        assert second["coalesced_with"] == first["id"]
        pool.gate.set()
        final1 = client.wait_for(first["id"], timeout=30)["job"]
        final2 = client.wait_for(second["id"], timeout=30)["job"]
        assert final1["state"] == final2["state"] == "done"
        assert pool.executions == 1
        metrics = client.metrics()
        assert metrics["counters"]["coalesced"] == 1
        assert metrics["counters"]["accepted"] == 2
        assert metrics["counters"]["completed"] == 2


class TestAdmissionOverHTTP:
    def test_429_with_retry_after_header(self, fake_server):
        handle, client, pool = fake_server
        specs = [dict(RUN_PARAMS, instructions=300 + i)
                 for i in range(4)]
        jobs = [client.submit("run", s)["job"] for s in specs[:3]]
        # One running (slot=1), two queued (queue=2): full.
        with pytest.raises(ServeError) as exc:
            client.submit("run", specs[3])
        assert exc.value.status == 429
        assert exc.value.retry_after >= 1
        # The actual HTTP header, not just the JSON payload.
        request = urllib.request.Request(
            handle.url + "/v1/jobs",
            data=json.dumps({"type": "run",
                             "params": specs[3]}).encode(),
            method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as http_exc:
            urllib.request.urlopen(request, timeout=10)
        assert http_exc.value.code == 429
        assert int(http_exc.value.headers["Retry-After"]) >= 1
        for job in jobs:
            client.cancel(job["id"])

    def test_cancel_frees_queue_slot(self, fake_server):
        _, client, pool = fake_server
        specs = [dict(RUN_PARAMS, instructions=300 + i)
                 for i in range(4)]
        jobs = [client.submit("run", s)["job"] for s in specs[:3]]
        with pytest.raises(ServeError):
            client.submit("run", specs[3])
        cancelled = client.cancel(jobs[-1]["id"])["job"]
        assert cancelled["state"] == "cancelled"
        late = client.submit("run", specs[3])["job"]  # admitted now
        assert late["state"] == "queued"
        for job in jobs[:2] + [late]:
            client.cancel(job["id"])


class TestRequestLimits:
    def test_oversized_headers_rejected(self, fake_server):
        """A client streaming headers forever is answered 400 at the
        cap instead of holding daemon memory without bound."""
        handle, _, _ = fake_server
        address = (handle.server.host, handle.server.port)
        response = b""
        with socket.create_connection(address, timeout=10) as sock:
            try:
                sock.sendall(b"GET /healthz HTTP/1.1\r\n")
                junk = b"X-Junk: " + b"a" * 500 + b"\r\n"
                for _ in range(40):  # ~20KB of headers, far past the cap
                    sock.sendall(junk)
                sock.sendall(b"\r\n")
            except (BrokenPipeError, ConnectionResetError):
                pass  # server already answered and closed
            while True:
                try:
                    chunk = sock.recv(4096)
                except ConnectionResetError:
                    break
                if not chunk:
                    break
                response += chunk
        assert b" 400 " in response.split(b"\r\n", 1)[0]
        assert b"headers too large" in response

    def test_stalled_client_is_dropped(self, tmp_path, monkeypatch):
        """A connection that never finishes its request is closed at
        the read timeout and the daemon keeps serving."""
        import repro.serve.api as api_module
        monkeypatch.setattr(api_module, "REQUEST_READ_TIMEOUT", 0.3)
        with BackgroundServer(workdir=str(tmp_path / "serve")) as handle:
            address = (handle.server.host, handle.server.port)
            with socket.create_connection(address, timeout=10) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\n")  # then stall
                assert sock.recv(4096) == b""  # dropped, no response
            assert ServeClient(handle.url).ping()["ok"] is True


class TestDrain:
    def test_drain_leaves_no_torn_campaign_artifact(self, tmp_path):
        """SIGTERM mid-campaign: results.jsonl has no torn tail and
        the artifact resumes instead of restarting."""
        workdir = tmp_path / "serve"
        params = {"kinds": ["srt"], "workloads": ["gcc"],
                  "models": ["transient-result"], "injections": 200,
                  "instructions": 300}
        with BackgroundServer(workdir=str(workdir)) as handle:
            client = ServeClient(handle.url)
            client.ping()
            job = client.submit("campaign", params)["job"]
            client.status(job["id"], wait=0)
            handle.drain()  # the SIGTERM path, synchronously
        spec = JobSpec.build("campaign", params)
        artifact = workdir / "artifacts" / spec.cache_key()
        results = artifact / "results.jsonl"
        if results.exists():
            lines = results.read_text().splitlines()
            for line in lines:  # every line parses: no torn tail
                json.loads(line)
            indices = [json.loads(line)["index"] for line in lines]
            assert indices == list(range(len(indices)))

    def test_background_server_exits_cleanly(self, tmp_path):
        with BackgroundServer(workdir=str(tmp_path / "serve")) as handle:
            ServeClient(handle.url).ping()
        # __exit__ drained; a second context on the same dir works.
        with BackgroundServer(workdir=str(tmp_path / "serve")) as handle:
            assert ServeClient(handle.url).ping()["state"] == "serving"
