"""End-to-end pipeline tests using small hand-written assembly programs.

Each test runs a program through the full out-of-order core and checks
the committed architectural state — the strongest possible check that
renaming, scheduling, forwarding, squashing, and retirement cooperate.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.machine import BaseMachine
from repro.isa.assembler import assemble


def run_program(source, max_instructions=5000, max_cycles=100_000):
    program = assemble(source)
    machine = BaseMachine(MachineConfig(), [program])
    machine.run(max_instructions=max_instructions, max_cycles=max_cycles)
    thread = machine.cores[0].threads[0]
    assert thread.done, "program did not reach HALT"
    return machine, thread


def reg(thread, index):
    return thread.rename.architectural_value(index)


class TestArithmetic:
    def test_dependent_chain(self):
        _, thread = run_program("""
            ldi r1, 7
            add r2, r1, r1
            mul r3, r2, r2
            sub r4, r3, r1
            halt
        """)
        assert reg(thread, 4) == 14 * 14 - 7

    def test_independent_streams(self):
        _, thread = run_program("""
            ldi r1, 1
            ldi r2, 2
            ldi r3, 3
            add r4, r1, r1
            add r5, r2, r2
            add r6, r3, r3
            halt
        """)
        assert (reg(thread, 4), reg(thread, 5), reg(thread, 6)) == (2, 4, 6)

    def test_r0_writes_discarded(self):
        _, thread = run_program("""
            ldi r0, 99
            add r1, r0, r0
            halt
        """)
        assert reg(thread, 1) == 0


class TestControlFlow:
    def test_counted_loop(self):
        _, thread = run_program("""
            ldi r1, 20
            ldi r2, 0
        loop:
            addi r2, r2, 5
            addi r1, r1, -1
            bnez r1, loop
            halt
        """)
        assert reg(thread, 2) == 100

    def test_taken_and_not_taken_paths(self):
        _, thread = run_program("""
            ldi r1, 0
            beqz r1, skip
            ldi r2, 111
        skip:
            ldi r3, 5
            halt
        """)
        assert reg(thread, 2) == 0  # skipped
        assert reg(thread, 3) == 5

    def test_call_return(self):
        _, thread = run_program("""
            ldi r1, 10
            call r62, double
            call r62, double
            halt
        double:
            add r1, r1, r1
            ret r62
        """)
        assert reg(thread, 1) == 40

    def test_nested_loops(self):
        _, thread = run_program("""
            ldi r1, 5
            ldi r3, 0
        outer:
            ldi r2, 4
        inner:
            addi r3, r3, 1
            addi r2, r2, -1
            bnez r2, inner
            addi r1, r1, -1
            bnez r1, outer
            halt
        """)
        assert reg(thread, 3) == 20

    def test_mispredicted_branch_recovers_state(self):
        """Data-dependent branch flips each iteration; state must stay
        architecturally exact through the squashes."""
        _, thread = run_program("""
            ldi r1, 30
            ldi r2, 0
            ldi r4, 0
        loop:
            andi r3, r1, 1
            beqz r3, even
            addi r2, r2, 10
            br next
        even:
            addi r4, r4, 1
        next:
            addi r1, r1, -1
            bnez r1, loop
            halt
        """)
        assert reg(thread, 2) == 150  # 15 odd values of r1 in 30..1
        assert reg(thread, 4) == 15


class TestMemory:
    def test_store_load_roundtrip(self):
        _, thread = run_program("""
            ldi r1, 0x2000
            ldi r2, 777
            st r1, 0, r2
            ld r3, r1, 0
            halt
        """)
        assert reg(thread, 3) == 777

    def test_store_to_load_forwarding_correct_value(self):
        """A younger load must see the older in-flight store's value."""
        _, thread = run_program("""
            ldi r1, 0x2000
            ldi r2, 1
            ldi r4, 0
            ldi r5, 50
        loop:
            add r2, r2, r2
            st r1, 0, r2
            ld r3, r1, 0
            add r4, r4, r3
            addi r5, r5, -1
            bnez r5, loop
            halt
        """)
        expected = sum(2 ** i for i in range(1, 51))
        assert reg(thread, 4) == expected

    def test_memory_disambiguation_different_addresses(self):
        _, thread = run_program("""
            ldi r1, 0x2000
            ldi r2, 0x3000
            .data 0x3000 42
            ldi r3, 9
            st r1, 0, r3
            ld r4, r2, 0
            halt
        """)
        assert reg(thread, 4) == 42

    def test_partial_store_then_load_blocks_until_drain(self):
        _, thread = run_program("""
            .data 0x2000 0xFFFFFFFFFFFFFFFF
            ldi r1, 0x2000
            ldi r2, 0
            sth r1, 0, r2
            ld r3, r1, 0
            halt
        """)
        assert reg(thread, 3) == 0xFFFFFFFF_00000000

    def test_membar_orders_stores(self):
        machine, thread = run_program("""
            ldi r1, 0x2000
            ldi r2, 5
            st r1, 0, r2
            membar
            ld r3, r1, 0
            halt
        """)
        assert reg(thread, 3) == 5
        # After the membar retired, the store must have drained.
        assert machine.memory[thread.phys_addr(0x2000)] == 5

    def test_final_memory_image(self):
        machine, thread = run_program("""
            ldi r1, 0x4000
            ldi r2, 10
            ldi r3, 3
        loop:
            st r1, 0, r2
            addi r1, r1, 8
            addi r2, r2, 10
            addi r3, r3, -1
            bnez r3, loop
            membar
            halt
        """)
        base = thread.addr_offset
        assert machine.memory[base + 0x4000] == 10
        assert machine.memory[base + 0x4008] == 20
        assert machine.memory[base + 0x4010] == 30


class TestStructuralLimits:
    def test_more_writers_than_a_chunk(self):
        """64+ independent writers stress rename and the free list."""
        body = "\n".join(f"ldi r{i}, {i}" for i in range(1, 60))
        _, thread = run_program(f"{body}\nhalt")
        for i in range(1, 60):
            assert reg(thread, i) == i

    def test_long_program_exceeding_queues(self):
        lines = ["ldi r1, 0x2000", "ldi r2, 0"]
        for i in range(200):
            lines.append(f"addi r2, r2, 1")
            lines.append(f"st r1, {8 * (i % 30)}, r2")
        lines.append("halt")
        _, thread = run_program("\n".join(lines))
        assert reg(thread, 2) == 200
