"""Integration tests for the SRT machine (Section 4)."""

import pytest

from repro.core.config import MachineConfig
from repro.core.machine import make_machine
from repro.isa.assembler import assemble
from repro.isa.generator import generate_benchmark


def run_srt(programs, config=None, instructions=600, warmup=2000,
            max_cycles=200_000):
    machine = make_machine("srt", config or MachineConfig(), programs)
    result = machine.run(max_instructions=instructions, warmup=warmup,
                         max_cycles=max_cycles)
    return machine, result


class TestBasicRedundancy:
    def test_no_false_faults(self):
        machine, result = run_srt([generate_benchmark("gcc")])
        assert result.faults_detected == 0

    def test_trailing_keeps_pace(self):
        """The trailing thread lags by at most the decoupling-queue depth
        (LPQ chunks x chunk size) plus pipeline contents."""
        machine, result = run_srt([generate_benchmark("swim")])
        leading, trailing = machine.cores[0].threads
        max_slack = machine.config.lpq_entries * 8 + 150
        assert trailing.stats.retired > 0
        assert trailing.stats.retired >= leading.stats.retired - max_slack
        assert trailing.stats.retired <= leading.stats.retired

    def test_every_store_compared(self):
        machine, result = run_srt([generate_benchmark("vortex")])
        pair = machine.controller.pairs[0]
        assert pair.comparator.stats.comparisons > 0
        assert pair.comparator.stats.mismatches == 0
        # Every drained (forwarded) store was verified first.
        assert pair.sphere.outputs_forwarded <= pair.comparator.stats.comparisons

    def test_every_load_replicated(self):
        machine, result = run_srt([generate_benchmark("swim")])
        pair = machine.controller.pairs[0]
        assert pair.lvq.stats.writes > 0
        assert pair.lvq.stats.reads > 0
        assert pair.lvq.stats.address_mismatches == 0

    def test_trailing_never_misfetches(self):
        machine, result = run_srt([generate_benchmark("go")])
        trailing = machine.cores[0].threads[1]
        assert trailing.stats.misfetches == 0
        assert trailing.stats.branch_mispredicts == 0

    def test_trailing_bypasses_load_queue(self):
        machine, result = run_srt([generate_benchmark("swim")])
        trailing = machine.cores[0].threads[1]
        assert trailing.lq_capacity == 0
        assert len(trailing.load_queue) == 0


class TestStoreQueueBehaviour:
    def test_leading_store_lifetime_extended(self):
        """Section 7.1: leading stores wait ~39 extra cycles for their
        trailing twins."""
        program = generate_benchmark("m88ksim")
        base = make_machine("base", MachineConfig(), [program])
        base.run(max_instructions=800, warmup=2000)
        srt, _ = run_srt([generate_benchmark("m88ksim")], instructions=800)

        def lifetime(machine):
            stats = machine.cores[0].threads[0].stats
            return stats.store_lifetime_sum / max(stats.store_lifetime_count, 1)

        assert lifetime(srt) > lifetime(base) + 10

    def test_partitioning_without_ptsq(self):
        machine, _ = run_srt([generate_benchmark("gcc")], instructions=50)
        leading, trailing = machine.cores[0].threads
        assert leading.sq_capacity == 32
        assert trailing.sq_capacity == 32
        assert leading.lq_capacity == 64  # trailing frees its share

    def test_per_thread_store_queues(self):
        config = MachineConfig(per_thread_store_queues=True)
        machine, _ = run_srt([generate_benchmark("gcc")], config=config,
                             instructions=50)
        leading, trailing = machine.cores[0].threads
        assert leading.sq_capacity == 64
        assert trailing.sq_capacity == 64

    def test_nosc_skips_comparison(self):
        config = MachineConfig(store_comparison=False)
        machine, result = run_srt([generate_benchmark("gcc")], config=config)
        pair = machine.controller.pairs[0]
        assert pair.comparator.stats.comparisons == 0
        assert result.threads[0].retired == 600


class TestDeadlockAvoidance:
    def test_membar_heavy_program_completes(self):
        """Section 4.4.2 rule 1: a store before a membar in the same chunk
        must not deadlock the pair."""
        source_lines = ["ldi r1, 0x2000", "ldi r5, 40"]
        source_lines += ["loop:",
                         "addi r2, r2, 1",
                         "st r1, 0, r2",
                         "membar",
                         "st r1, 8, r2",
                         "membar",
                         "addi r5, r5, -1",
                         "bnez r5, loop",
                         "halt"]
        program = assemble("\n".join(source_lines), name="membar-heavy")
        machine, result = run_srt([program], instructions=300, warmup=0,
                                  max_cycles=60_000)
        assert machine.cores[0].threads[0].done
        assert result.faults_detected == 0

    def test_partial_store_forwarding_completes(self):
        """Section 4.4.2 rule 2: a partial store followed by a load of the
        same word must not deadlock (the chunk is force-terminated)."""
        program = assemble("""
            ldi r1, 0x2000
            ldi r5, 40
        loop:
            addi r2, r2, 3
            sth r1, 0, r2
            ld r3, r1, 0
            addi r5, r5, -1
            bnez r5, loop
            halt
        """, name="partial-heavy")
        machine, result = run_srt([program], instructions=250, warmup=0,
                                  max_cycles=60_000)
        assert machine.cores[0].threads[0].done
        assert result.faults_detected == 0
        pair = machine.controller.pairs[0]
        flushes = pair.lpq.stats.flush_partial_store
        assert flushes > 0

    def test_tiny_store_queue_no_deadlock(self):
        """Extreme store-queue pressure exercises the pressure flush."""
        config = MachineConfig()
        config.core.store_queue_entries = 8
        machine, result = run_srt([generate_benchmark("vortex")],
                                  config=config, instructions=400)
        assert result.threads[0].retired == 400


class TestTwoLogicalThreads:
    def test_two_programs_redundant(self):
        programs = [generate_benchmark("gcc"), generate_benchmark("swim")]
        machine, result = run_srt(programs, instructions=400)
        assert len(machine.cores[0].threads) == 4
        assert result.faults_detected == 0
        assert all(t.retired == 400 for t in result.threads)

    def test_partitioning_four_contexts(self):
        programs = [generate_benchmark("gcc"), generate_benchmark("swim")]
        machine, _ = run_srt(programs, instructions=50)
        threads = machine.cores[0].threads
        assert [t.sq_capacity for t in threads] == [16, 16, 16, 16]
        leaders = [t for t in threads if t.is_leading]
        assert all(t.lq_capacity == 32 for t in leaders)

    def test_three_logical_threads_rejected(self):
        programs = [generate_benchmark(n) for n in ("gcc", "go", "swim")]
        with pytest.raises(ValueError, match="contexts"):
            make_machine("srt", MachineConfig(), programs)


class TestPsrIntegration:
    def test_psr_steers_to_opposite_units(self):
        machine, _ = run_srt([generate_benchmark("fpppp")], instructions=500)
        tracker = machine.controller.pairs[0].tracker
        assert tracker.stats.pairs > 100
        assert tracker.stats.same_unit_fraction < 0.05

    def test_without_psr_units_shared(self):
        config = MachineConfig(preferential_space_redundancy=False)
        machine, _ = run_srt([generate_benchmark("fpppp")], config=config,
                             instructions=500)
        tracker = machine.controller.pairs[0].tracker
        assert tracker.stats.same_unit_fraction > 0.3
