"""Unit tests for the tournament branch predictor, jump table, and RAS."""

from repro.predictors.branch_predictor import (GshareBranchPredictor,
                                               JumpTargetPredictor,
                                               ReturnAddressStack)


class TestTournamentPredictor:
    def test_learns_always_taken(self):
        predictor = GshareBranchPredictor()
        pc = 0x40
        for _ in range(8):
            predicted = predictor.predict_conditional(0, pc)
            predictor.update_conditional(0, pc, taken=True,
                                         predicted=predicted)
        assert predictor.predict_conditional(0, pc) is True

    def test_learns_strongly_not_taken_quickly(self):
        """The bimodal component must pin rarely-taken branches fast."""
        predictor = GshareBranchPredictor()
        pc = 0x80
        wrong = 0
        for _ in range(50):
            predicted = predictor.predict_conditional(0, pc)
            if predicted:
                wrong += 1
            predictor.update_conditional(0, pc, taken=False,
                                         predicted=predicted)
        assert wrong <= 4

    def test_gshare_learns_alternating_pattern(self):
        predictor = GshareBranchPredictor()
        pc = 0xC0
        outcomes = [True, False] * 60
        wrong_tail = 0
        for i, taken in enumerate(outcomes):
            predicted = predictor.predict_conditional(0, pc)
            if i >= 60 and predicted != taken:
                wrong_tail += 1
            predictor.update_conditional(0, pc, taken, predicted)
        # After convergence the correlated predictor nails the pattern.
        assert wrong_tail <= 10

    def test_histories_are_per_thread(self):
        predictor = GshareBranchPredictor()
        predictor.update_conditional(0, 0x10, True)
        assert predictor.snapshot_history(0) != predictor.snapshot_history(1)

    def test_history_snapshot_restore(self):
        predictor = GshareBranchPredictor()
        predictor.update_conditional(0, 0x10, True)
        saved = predictor.snapshot_history(0)
        predictor.update_conditional(0, 0x10, False)
        predictor.restore_history(0, saved)
        assert predictor.snapshot_history(0) == saved

    def test_misprediction_stats(self):
        predictor = GshareBranchPredictor()
        predictor.update_conditional(0, 0x10, taken=True, predicted=False)
        assert predictor.stats.conditional_mispredictions == 1


class TestJumpTargetPredictor:
    def test_cold_returns_none(self):
        assert JumpTargetPredictor().predict(0x100) is None

    def test_remembers_last_target(self):
        predictor = JumpTargetPredictor()
        predictor.update(0x100, 0x500)
        assert predictor.predict(0x100) == 0x500
        predictor.update(0x100, 0x700)
        assert predictor.predict(0x100) == 0x700

    def test_aliases_by_table_size(self):
        predictor = JumpTargetPredictor(entries=16)
        predictor.update(0, 111)
        assert predictor.predict(16) == 111  # same entry


class TestReturnAddressStack:
    def test_lifo_order(self):
        ras = ReturnAddressStack()
        ras.push(10)
        ras.push(20)
        assert ras.predict_pop() == 20
        assert ras.predict_pop() == 10

    def test_empty_pop_returns_none(self):
        assert ReturnAddressStack().predict_pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.predict_pop() == 3
        assert ras.predict_pop() == 2
        assert ras.predict_pop() is None

    def test_outcome_recording(self):
        ras = ReturnAddressStack()
        ras.record_outcome(None, 5)
        ras.record_outcome(5, 5)
        ras.record_outcome(4, 5)
        assert ras.stats.ras_mispredictions == 2
