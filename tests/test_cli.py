"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "fig11" in out and "gcc" in out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_run_command(self, capsys):
        code = main(["run", "--kind", "srt", "--benchmark", "m88ksim",
                     "--instructions", "300", "--warmup", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SMT-Efficiency" in out and "m88ksim" in out

    def test_experiment_command(self, capsys):
        code = main(["sq-sweep", "--instructions", "250",
                     "--warmup", "800"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sq_sweep" in out and "arith.mean" in out

    def test_every_experiment_registered_is_callable(self):
        for name, (driver, description) in EXPERIMENTS.items():
            assert callable(driver)
            assert description
