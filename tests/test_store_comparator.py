"""Unit tests for the store comparator."""

from repro.isa.instructions import Instruction, Op
from repro.pipeline.regfile import PhysicalRegisterFile
from repro.pipeline.thread import HwThread, ThreadRole
from repro.pipeline.uop import Uop, UopState
from repro.core.store_comparator import StoreComparator
from repro.isa.assembler import assemble


def make_leading():
    program = assemble("st r1, 0, r2\nhalt", name="p")
    regfile = PhysicalRegisterFile(128)
    return HwThread(0, program, regfile, role=ThreadRole.LEADING)


def store_uop(seq, index, addr, value, op=Op.ST, raw=None):
    uop = Uop(seq=seq, thread=0, pc=0,
              instr=Instruction(op, ra=1, imm=0, rb=2))
    uop.store_index = index
    uop.mem_addr = addr
    uop.raw_addr = raw if raw is not None else addr
    uop.store_value = value
    uop.state = UopState.RETIRED
    return uop


class TestStoreComparator:
    def test_matching_store_verifies(self):
        leading = make_leading()
        mismatches = []
        comparator = StoreComparator(
            leading, on_mismatch=lambda *a: mismatches.append(a))
        entry = store_uop(1, 0, 0x100, 42)
        leading.store_queue.append(entry)
        comparator.trailing_store_retired(store_uop(2, 0, 0x100, 42), now=5)
        comparator.tick(now=5)
        assert entry.verified
        assert not mismatches
        assert comparator.stats.comparisons == 1

    def test_value_mismatch_detected(self):
        leading = make_leading()
        mismatches = []
        comparator = StoreComparator(
            leading, on_mismatch=lambda *a: mismatches.append(a))
        entry = store_uop(1, 0, 0x100, 42)
        leading.store_queue.append(entry)
        comparator.trailing_store_retired(store_uop(2, 0, 0x100, 43), now=5)
        comparator.tick(now=5)
        assert len(mismatches) == 1
        assert comparator.stats.mismatches == 1

    def test_address_mismatch_detected(self):
        leading = make_leading()
        mismatches = []
        comparator = StoreComparator(
            leading, on_mismatch=lambda *a: mismatches.append(a))
        leading.store_queue.append(store_uop(1, 0, 0x100, 42))
        comparator.trailing_store_retired(store_uop(2, 0, 0x108, 42), now=5)
        comparator.tick(now=5)
        assert len(mismatches) == 1

    def test_partial_store_half_compared(self):
        """STH to the other half of the same word must mismatch."""
        leading = make_leading()
        mismatches = []
        comparator = StoreComparator(
            leading, on_mismatch=lambda *a: mismatches.append(a))
        leading.store_queue.append(
            store_uop(1, 0, 0x100, 42, op=Op.STH, raw=0x100))
        comparator.trailing_store_retired(
            store_uop(2, 0, 0x100, 42, op=Op.STH, raw=0x104), now=5)
        comparator.tick(now=5)
        assert len(mismatches) == 1

    def test_forward_latency_delays_comparison(self):
        leading = make_leading()
        comparator = StoreComparator(leading, forward_latency=4)
        entry = store_uop(1, 0, 0x100, 42)
        leading.store_queue.append(entry)
        comparator.trailing_store_retired(store_uop(2, 0, 0x100, 42), now=10)
        comparator.tick(now=12)
        assert not entry.verified
        comparator.tick(now=14)
        assert entry.verified

    def test_out_of_order_trailing_arrival(self):
        """Comparisons match by store index, not arrival order."""
        leading = make_leading()
        comparator = StoreComparator(leading)
        first = store_uop(1, 0, 0x100, 1)
        second = store_uop(2, 1, 0x200, 2)
        leading.store_queue.extend([first, second])
        comparator.trailing_store_retired(store_uop(4, 1, 0x200, 2), now=0)
        comparator.tick(now=0)
        assert second.verified and not first.verified
        comparator.trailing_store_retired(store_uop(3, 0, 0x100, 1), now=1)
        comparator.tick(now=1)
        assert first.verified

    def test_unresolved_leading_address_skipped(self):
        leading = make_leading()
        comparator = StoreComparator(leading)
        entry = store_uop(1, 0, 0x100, 1)
        entry.mem_addr = None  # address not yet computed
        leading.store_queue.append(entry)
        comparator.trailing_store_retired(store_uop(2, 0, 0x100, 1), now=0)
        comparator.tick(now=0)
        assert not entry.verified
        assert len(comparator) == 1
