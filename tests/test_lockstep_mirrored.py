"""The mirrored lockstep fast mode must time exactly like dual mode."""

from repro.core.config import MachineConfig
from repro.core.machine import make_machine
from repro.isa.generator import generate_benchmark


class TestMirroredMode:
    def test_timing_identical_to_dual(self):
        """Core 1 is a deterministic mirror: simulating it must not
        change any timing observable."""
        for checker_latency in (0, 8):
            dual = make_machine(
                "lockstep", MachineConfig(), [generate_benchmark("gcc")],
                checker_latency=checker_latency)
            dual_result = dual.run(max_instructions=600, warmup=3000)
            mirrored = make_machine(
                "lockstep", MachineConfig(), [generate_benchmark("gcc")],
                checker_latency=checker_latency, mirrored=True)
            mirrored_result = mirrored.run(max_instructions=600, warmup=3000)
            assert mirrored_result.threads[0].cycles == \
                dual_result.threads[0].cycles
            assert mirrored_result.threads[0].ipc == dual_result.threads[0].ipc

    def test_mirrored_has_one_core(self):
        machine = make_machine("lockstep", MachineConfig(),
                               [generate_benchmark("gcc")], mirrored=True)
        assert len(machine.cores) == 1

    def test_mirrored_is_faster_to_simulate(self):
        import time

        def wall(mirrored):
            machine = make_machine(
                "lockstep", MachineConfig(), [generate_benchmark("swim")],
                mirrored=mirrored)
            start = time.perf_counter()
            machine.run(max_instructions=1000, warmup=3000)
            return time.perf_counter() - start

        # Not a strict 2x (shared overheads), but clearly cheaper.
        assert wall(True) < wall(False)

    def test_dual_mode_still_compares(self):
        machine = make_machine("lockstep", MachineConfig(),
                               [generate_benchmark("gcc")])
        machine.run(max_instructions=400, warmup=2000)
        assert machine.checker.comparisons > 0

    def test_mirrored_mode_skips_comparison(self):
        machine = make_machine("lockstep", MachineConfig(),
                               [generate_benchmark("gcc")], mirrored=True)
        machine.run(max_instructions=400, warmup=2000)
        assert machine.checker.comparisons == 0


class TestMultiSeedRunner:
    def test_efficiency_over_seeds(self):
        from repro.harness.runner import Runner

        runner = Runner(instructions=300, warmup=1500)
        stats = runner.efficiency_over_seeds("srt", ["m88ksim"],
                                             seeds=[0, 1])
        assert 0 < stats["min"] <= stats["mean"] <= stats["max"] <= 1.3
