"""The acceptance soak, as tests.

The short campaign-leg soak runs in tier-1 (seconds).  The full soak —
parallel campaign *plus* a live serve daemon under connection resets,
torn cache writes, and scheduler dispatch faults — is ``slow``-marked
and additionally exercised by the ``chaos-soak`` CI job via
``python -m repro chaos soak``.
"""

import os

import pytest

from repro.chaos.cli import main as chaos_main


def test_campaign_soak_byte_identical(tmp_path):
    """Crashes + torn/failed writes, yet bytes match the clean run."""
    code = chaos_main(["soak", "--seed", "7", "--jobs", "2",
                       "--injections", "10", "--crash-p", "0.4",
                       "--no-serve", "--keep", str(tmp_path / "soak")])
    assert code == 0


def test_soak_schedule_reproducible(tmp_path):
    """Same seed twice → the same checks pass and the same artifact
    bytes appear (the fault schedule is a pure function of the seed)."""
    for round_dir in ("a", "b"):
        code = chaos_main(["soak", "--seed", "11", "--jobs", "2",
                           "--injections", "8", "--crash-p", "0.5",
                           "--no-serve",
                           "--keep", str(tmp_path / round_dir)])
        assert code == 0
    a = (tmp_path / "a" / "chaos" / "results.jsonl").read_bytes()
    b = (tmp_path / "b" / "chaos" / "results.jsonl").read_bytes()
    assert a == b


@pytest.mark.slow
@pytest.mark.skipif(not os.environ.get("REPRO_CHAOS_SOAK"),
                    reason="full serve-leg soak: set REPRO_CHAOS_SOAK=1")
def test_full_soak_with_serve_daemon(tmp_path):
    """The headline claim end-to-end, serve daemon included."""
    code = chaos_main(["soak", "--seed", "7", "--jobs", "2",
                       "--keep", str(tmp_path / "soak")])
    assert code == 0
