"""Integration tests for the CRT machine (Section 5, Figure 5)."""

from repro.core.config import MachineConfig
from repro.core.machine import make_machine
from repro.isa.generator import generate_benchmark


def run_crt(names, config=None, instructions=500, warmup=2000):
    programs = [generate_benchmark(n) for n in names]
    machine = make_machine("crt", config or MachineConfig(), programs)
    result = machine.run(max_instructions=instructions, warmup=warmup)
    return machine, result


class TestPlacement:
    def test_single_program_spans_cores(self):
        machine, _ = run_crt(["gcc"], instructions=50)
        lead = machine.controller.pairs[0].leading
        trail = machine.controller.pairs[0].trailing
        assert lead.core.core_id == 0
        assert trail.core.core_id == 1

    def test_two_programs_cross_coupled(self):
        """Figure 5: leading of A with trailing of B on each core."""
        machine, _ = run_crt(["gcc", "swim"], instructions=50)
        pair_a, pair_b = machine.controller.pairs
        assert pair_a.leading.core.core_id == 0
        assert pair_a.trailing.core.core_id == 1
        assert pair_b.leading.core.core_id == 1
        assert pair_b.trailing.core.core_id == 0

    def test_four_programs_fill_both_cores(self):
        machine, _ = run_crt(["gcc", "go", "ijpeg", "swim"], instructions=50)
        for core in machine.cores:
            assert len(core.threads) == 4
            roles = sorted(t.role.value for t in core.threads)
            assert roles == ["leading", "leading", "trailing", "trailing"]


class TestRedundantExecution:
    def test_no_false_faults(self):
        machine, result = run_crt(["gcc", "swim"])
        assert result.faults_detected == 0

    def test_outputs_compared_across_cores(self):
        machine, result = run_crt(["vortex"])
        pair = machine.controller.pairs[0]
        assert pair.comparator.stats.comparisons > 0
        assert pair.comparator.stats.mismatches == 0

    def test_cross_latency_applied(self):
        machine, _ = run_crt(["gcc"], instructions=50)
        pair = machine.controller.pairs[0]
        config = MachineConfig()
        assert pair.lvq.forward_latency == (
            config.srt_load_forward_latency + config.crt_cross_latency)
        assert pair.aggregator.forward_latency == (
            config.srt_line_forward_latency + config.crt_cross_latency)
        assert pair.comparator.forward_latency == config.crt_cross_latency

    def test_all_programs_reach_target(self):
        machine, result = run_crt(["gcc", "go", "ijpeg", "swim"],
                                  instructions=300)
        assert all(t.retired == 300 for t in result.threads)


class TestCrtPerformance:
    def test_crt_beats_lock8_on_multiprogrammed(self):
        """The paper's headline: CRT outperforms realistic lockstepping
        on multithreaded workloads."""
        names = ["gcc", "swim"]
        programs = [generate_benchmark(n) for n in names]
        lock8 = make_machine("lockstep", MachineConfig(), programs,
                             checker_latency=8).run(
            max_instructions=700, warmup=4000)
        crt = make_machine("crt", MachineConfig(),
                           [generate_benchmark(n) for n in names]).run(
            max_instructions=700, warmup=4000)
        assert crt.total_ipc > lock8.total_ipc

    def test_trailing_frees_resources_for_other_program(self):
        """Each core's trailing thread must never use the load queue."""
        machine, _ = run_crt(["gcc", "swim"], instructions=200)
        for pair in machine.controller.pairs:
            assert pair.trailing.lq_capacity == 0

    def test_higher_cross_latency_hurts(self):
        fast = MachineConfig(crt_cross_latency=0)
        slow = MachineConfig(crt_cross_latency=64)
        _, fast_result = run_crt(["swim", "gcc"], config=fast)
        _, slow_result = run_crt(["swim", "gcc"], config=slow)
        assert slow_result.cycles >= fast_result.cycles
