"""Campaign spec validation, serialization, and content-hash identity."""

import pytest

from repro.campaign.spec import CampaignConfigError, CampaignSpec


def spec(**overrides) -> CampaignSpec:
    base = dict(kinds=("srt",), workloads=("gcc",),
                models=("transient-result",), injections=5,
                instructions=200, warmup=500)
    base.update(overrides)
    return CampaignSpec(**base)


class TestValidation:
    def test_valid_spec_passes(self):
        assert spec().validate() is not None

    def test_unknown_kind_rejected(self):
        with pytest.raises(CampaignConfigError, match="machine kind"):
            spec(kinds=("warp-core",)).validate()

    def test_unknown_workload_rejected(self):
        with pytest.raises(CampaignConfigError, match="workload"):
            spec(workloads=("doom",)).validate()

    def test_unknown_model_rejected(self):
        with pytest.raises(CampaignConfigError, match="fault model"):
            spec(models=("cosmic-ray",)).validate()

    def test_nonpositive_injections_rejected(self):
        with pytest.raises(CampaignConfigError, match="injections"):
            spec(injections=0).validate()

    def test_bad_strike_window_rejected(self):
        with pytest.raises(CampaignConfigError, match="strike window"):
            spec(strike_window=(500, 100)).validate()

    def test_bad_config_dict_rejected(self):
        with pytest.raises(ValueError):
            spec(config={"no_such_field": 1}).validate()


class TestDerived:
    def test_strata_is_full_cartesian_product(self):
        s = spec(kinds=("base", "srt"), workloads=("gcc", "swim"),
                 models=("transient-result", "stuck-unit"))
        assert len(s.strata()) == 8
        assert s.total_tasks() == 8 * 5

    def test_default_strike_window_tracks_instructions(self):
        assert spec(instructions=5000).effective_strike_window() == (50, 5000)
        assert spec(instructions=100).effective_strike_window() == (50, 200)

    def test_explicit_strike_window_wins(self):
        assert spec(strike_window=(10, 99)).effective_strike_window() \
            == (10, 99)


class TestIdentity:
    def test_round_trip_preserves_hash(self):
        original = spec(kinds=("srt", "crt"), strike_window=(10, 400))
        clone = CampaignSpec.from_dict(original.to_dict())
        assert clone == original
        assert clone.content_hash() == original.content_hash()

    def test_hash_stable_across_instances(self):
        assert spec().content_hash() == spec().content_hash()

    def test_any_result_affecting_field_changes_hash(self):
        reference = spec().content_hash()
        assert spec(seed=1).content_hash() != reference
        assert spec(injections=6).content_hash() != reference
        assert spec(instructions=201).content_hash() != reference
        assert spec(warmup=501).content_hash() != reference
        assert spec(kinds=("crt",)).content_hash() != reference
        assert spec(strike_window=(50, 200)).content_hash() != reference

    def test_unknown_fields_rejected_on_load(self):
        data = spec().to_dict()
        data["frobnication"] = True
        with pytest.raises(CampaignConfigError, match="unknown campaign"):
            CampaignSpec.from_dict(data)

    def test_future_format_version_rejected(self):
        data = spec().to_dict()
        data["format_version"] = 99
        with pytest.raises(CampaignConfigError, match="format"):
            CampaignSpec.from_dict(data)
