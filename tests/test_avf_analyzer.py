"""Unit tests for the static ACE/AVF analyzer on hand-built programs
whose masking classes are known by inspection."""

import pytest

from repro.avf.analyzer import (ACE_CLASS, ALL_CLASSES, MASKED_CLASSES,
                                ProgramAVF, analyze_program, collect_trace)
from repro.avf.sites import (ARCH_MODELS, SiteUniverse,
                             clear_universe_cache, get_universe)
from repro.isa.assembler import assemble
from repro.util.rng import DeterministicRng


def avf_of(source, steps=200):
    return analyze_program(assemble(source), steps=steps)


class TestGoldenTrace:
    def test_trace_records_pcs_and_halts(self):
        trace = collect_trace(assemble("ldi r1, 1\nhalt"), max_steps=50)
        assert trace.pcs == [0, 1]
        assert trace.halted
        assert not trace.crashed
        assert trace.pc_counts == {0: 1, 1: 1}

    def test_trace_caps_at_horizon(self):
        trace = collect_trace(assemble("loop: br loop"), max_steps=10)
        assert trace.steps == 10
        assert not trace.halted

    def test_footprint_is_initial_union_touched(self):
        source = """
            .data 0x2000 7
            ldi r1, 0x1000
            st  r1, 0, r1
            halt
        """
        trace = collect_trace(assemble(source), max_steps=50)
        assert trace.footprint == [0x1000, 0x2000]


class TestRegisterClasses:
    # r1's low nibble flows to the store; the high bits are ANDed away.
    # r2 is written and never read.  r3 carries the output.
    SOURCE = """
        ldi  r1, 0xF5
        ldi  r2, 3
        andi r3, r1, 0x0F
        st   r0, 0x1000, r3
        halt
    """

    def test_demanded_bit_is_ace(self):
        avf = avf_of(self.SOURCE)
        assert avf.classify_register(2, 1, 0) == ACE_CLASS

    def test_undemanded_bit_of_live_reg_is_logic_masked(self):
        avf = avf_of(self.SOURCE)
        assert avf.classify_register(2, 1, 32) == "logic-masked"

    def test_never_read_reg_is_dead(self):
        avf = avf_of(self.SOURCE)
        assert avf.classify_register(2, 2, 0) == "dead"

    def test_r0_is_always_dead(self):
        avf = avf_of(self.SOURCE)
        for bit in (0, 17, 63):
            assert avf.classify_register(0, 0, bit) == "dead"

    def test_overwritten_before_use(self):
        avf = avf_of("""
            ldi r1, 1
            ldi r1, 2
            st  r0, 0x1000, r1
            halt
        """)
        assert avf.classify_register(1, 1, 5) == "overwritten"

    def test_site_classification_follows_trace(self):
        avf = avf_of(self.SOURCE)
        # Step 2 executes pc 2 (straight-line program).
        assert (avf.classify_register_site(2, 1, 0)
                == avf.classify_register(2, 1, 0))

    def test_class_counts_partition_all_bits(self):
        avf = avf_of(self.SOURCE)
        for pc in range(5):
            counts = avf.register_class_counts(pc)
            assert sum(counts.values()) == 63 * 64  # regs 1..63


class TestMemoryClasses:
    SOURCE = """
        .data 0x1000 0xFF
        ldi r1, 0x1000
        ld  r2, r1, 0
        st  r1, 8, r2
        halt
    """

    def test_loaded_then_stored_word_is_ace(self):
        avf = avf_of(self.SOURCE)
        # Flip before the load: the bit rides r2 into the store.
        assert avf.classify_memory_site(0, 0x1000, 3) == ACE_CLASS

    def test_word_after_last_access_is_dead(self):
        avf = avf_of(self.SOURCE)
        assert avf.classify_memory_site(3, 0x1000, 3) == "dead"

    def test_word_overwritten_by_store(self):
        avf = avf_of(self.SOURCE)
        assert avf.classify_memory_site(0, 0x1008, 60) == "overwritten"

    def test_sth_overwrites_only_its_half(self):
        avf = avf_of("""
            ldi r1, 0x1000
            ldi r2, 7
            sth r1, 0, r2
            halt
        """)
        # Raw address 0x1000 has bit 2 clear: the LOW half is written.
        assert avf.classify_memory_site(0, 0x1000, 0) == "overwritten"
        assert avf.classify_memory_site(0, 0x1000, 40) == "dead"

    def test_aggregate_matches_pointwise(self):
        """The interval-recurrence aggregate equals brute-force
        classification over every (word, step, bit) site."""
        avf = avf_of(self.SOURCE)
        counts = {cls: 0 for cls in ALL_CLASSES}
        for word in avf.trace.footprint:
            for step in range(avf.trace.steps):
                for bit in range(64):
                    counts[avf.classify_memory_site(step, word, bit)] += 1
        component = avf.memory_component()
        assert {cls: component.class_bits.get(cls, 0)
                for cls in ALL_CLASSES} == counts


class TestDestFieldClasses:
    SOURCE = """
        ldi r1, 5
        st  r0, 0x1000, r1
        halt
    """

    def test_live_destination_is_ace(self):
        avf = avf_of(self.SOURCE)
        assert avf.classify_dest_field(0, 0) == ACE_CLASS

    def test_store_and_halt_ignore_rd(self):
        avf = avf_of(self.SOURCE)
        for bit in range(6):
            assert avf.classify_dest_field(1, bit) == "dead"
            assert avf.classify_dest_field(2, bit) == "dead"

    def test_redirect_to_dead_register_is_no_output(self):
        # r1 is never read: writing it — or its bit-flipped alias —
        # cannot reach the sphere outputs.
        avf = avf_of("ldi r1, 5\nhalt")
        assert avf.classify_dest_field(0, 1) == "no-output"


class TestSummary:
    def test_components_and_totals(self):
        summary = avf_of("""
            ldi r1, 1
            st  r0, 0x1000, r1
            halt
        """).summary()
        names = [c.name for c in summary.components]
        assert names == ["register", "register-static", "memory",
                         "dest-field"]
        steps = summary.steps
        assert summary.component("register").total == steps * 63 * 64
        assert summary.component("dest-field").total == steps * 6
        for comp in summary.components:
            assert 0.0 <= comp.avf <= 1.0
            assert comp.avf + comp.masked_fraction == pytest.approx(1.0)

    def test_to_dict_round_trips_classes(self):
        data = avf_of("ldi r1, 1\nhalt").summary().to_dict()
        assert data["halted"] is True
        for comp in data["components"]:
            assert set(comp["classes"]) == set(ALL_CLASSES)
            assert sum(comp["classes"].values()) == comp["total"]


class TestSiteUniverse:
    def setup_method(self):
        clear_universe_cache()

    def test_sampled_sites_classify_consistently(self):
        universe = get_universe("compress", 300)
        rng = DeterministicRng("test-universe")
        for model in ARCH_MODELS:
            for _ in range(25):
                site = universe.sample(rng, model)
                cls = universe.classify(model, site)
                assert cls in ALL_CLASSES
                assert universe.is_masked(model, site) == (
                    cls in MASKED_CLASSES)

    def test_class_fractions_sum_to_one(self):
        universe = get_universe("compress", 300)
        for model in ARCH_MODELS:
            fractions = universe.class_fractions(model)
            assert sum(fractions.values()) == pytest.approx(1.0)
            assert (universe.masked_fraction(model)
                    == pytest.approx(sum(fractions[c]
                                         for c in MASKED_CLASSES)))

    def test_cache_is_keyed_by_seed(self):
        a = get_universe("compress", 300, seed=0)
        b = get_universe("compress", 300, seed=1)
        assert a is get_universe("compress", 300, seed=0)
        assert a is not b

    def test_seed_matches_worker_program_composition(self):
        """The universe must classify the *same* program the campaign
        worker will inject into: generator seed = workload seed +
        campaign seed."""
        from repro.isa.generator import generate_benchmark
        universe = SiteUniverse("compress@3", 300, seed=2)
        expected = generate_benchmark("compress", seed=5)
        assert universe.program.name == expected.name
        assert [str(i) for i in universe.program.instructions] == \
            [str(i) for i in expected.instructions]
