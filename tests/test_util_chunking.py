"""Shared chunking + canonical-hash helpers (repro.util)."""

import json

import pytest

from repro.util import (auto_chunk_size, canonical_json, chunked,
                        content_hash, payload_digest)


class TestChunked:
    def test_contiguous_cover(self):
        items = list(range(23))
        chunks = chunked(items, 5)
        assert [len(c) for c in chunks] == [5, 5, 5, 5, 3]
        assert [x for c in chunks for x in c] == items

    def test_exact_multiple(self):
        assert chunked([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_empty(self):
        assert chunked([], 3) == []

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            chunked([1], 0)
        with pytest.raises(ValueError):
            chunked([1], -2)


class TestAutoChunkSize:
    def test_small_totals_chunk_of_one(self):
        assert auto_chunk_size(0, 4) == 1
        assert auto_chunk_size(1, 4) == 1
        assert auto_chunk_size(15, 4) == 1

    def test_scales_with_total(self):
        assert auto_chunk_size(160, 4) == 10
        assert auto_chunk_size(10_000, 4) == 16  # capped

    def test_respects_cap(self):
        assert auto_chunk_size(10_000, 1, cap=7) == 7

    def test_min_chunks_per_worker(self):
        # 4 workers x 4 chunks each = 16 chunks minimum
        assert auto_chunk_size(64, 4) == 4

    def test_consistent_with_engine_reexport(self):
        from repro.campaign.engine import auto_chunk_size as engine_acs
        assert engine_acs is auto_chunk_size


class TestCanonical:
    def test_canonical_json_sorted_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_key_order_irrelevant(self):
        assert (content_hash({"x": 1, "y": 2})
                == content_hash({"y": 2, "x": 1}))

    def test_one_field_changes_hash(self):
        base = {"kinds": ["srt"], "injections": 100}
        bumped = dict(base, injections=101)
        assert content_hash(base) != content_hash(bumped)

    def test_string_hashed_verbatim(self):
        # A raw string hashes its bytes, not its JSON encoding.
        assert content_hash("abc") != content_hash(json.dumps("abc"))

    def test_prefix_length(self):
        assert len(content_hash({"a": 1})) == 16
        assert len(content_hash({"a": 1}, length=8)) == 8
        assert len(payload_digest({"a": 1})) == 64

    def test_digest_is_hash_superset(self):
        data = {"a": [1, {"b": None}]}
        assert payload_digest(data).startswith(content_hash(data))

    def test_matches_campaign_spec_scheme(self):
        # The campaign store and the serve cache must agree on hashing.
        from repro.campaign.spec import CampaignSpec
        spec = CampaignSpec(kinds=("srt",), workloads=("gcc",),
                            injections=5)
        assert spec.content_hash() == content_hash(spec.to_dict())
