"""Engine integration: execution, cross-process determinism, resume."""

from pathlib import Path

from repro.campaign.engine import CampaignEngine, auto_chunk_size
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.campaign.worker import execute_chunk, execute_task
from repro.core.faults import FaultOutcome

SPEC = CampaignSpec(kinds=("base", "srt"), workloads=("m88ksim",),
                    models=("transient-result",), injections=3,
                    instructions=150, warmup=400)


def run_into(tmp_path, name, jobs, spec=SPEC, **kwargs):
    out = tmp_path / name
    engine = CampaignEngine(spec, out, jobs=jobs, **kwargs)
    summary = engine.run()
    return out, summary


class TestExecution:
    def test_runs_every_task_once(self, tmp_path):
        out, summary = run_into(tmp_path, "a", jobs=1)
        assert summary["executed"] == SPEC.total_tasks() == 6
        records = CampaignStore(out).records()
        assert len(records) == 6
        assert [r["index"] for r in records] == list(range(6))
        valid = {outcome.value for outcome in FaultOutcome}
        assert all(r["outcome"] in valid for r in records)

    def test_progress_callback_reaches_total(self, tmp_path):
        seen = []
        engine = CampaignEngine(SPEC, tmp_path / "p", jobs=1)
        engine.run(progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (6, 6)

    def test_auto_chunk_size_bounds(self):
        assert auto_chunk_size(0, 4) == 1
        assert auto_chunk_size(1, 4) == 1
        assert auto_chunk_size(1000, 4) == 16
        assert 1 <= auto_chunk_size(37, 8) <= 16


class TestCrossProcessDeterminism:
    def test_jobs_do_not_change_bytes(self, tmp_path):
        """Same config + seed ⇒ byte-identical JSONL at any --jobs."""
        seq, _ = run_into(tmp_path, "seq", jobs=1)
        par, _ = run_into(tmp_path, "par", jobs=2)
        assert (seq / "results.jsonl").read_bytes() \
            == (par / "results.jsonl").read_bytes()

    def test_chunk_size_does_not_change_bytes(self, tmp_path):
        a, _ = run_into(tmp_path, "c1", jobs=1, chunk_size=1)
        b, _ = run_into(tmp_path, "c5", jobs=1, chunk_size=5)
        assert (a / "results.jsonl").read_bytes() \
            == (b / "results.jsonl").read_bytes()


class TestResume:
    def test_kill_and_resume_skips_completed_work(self, tmp_path):
        reference, _ = run_into(tmp_path, "ref", jobs=1)
        reference_bytes = (reference / "results.jsonl").read_bytes()

        out, _ = run_into(tmp_path, "victim", jobs=1)
        results = Path(out / "results.jsonl")
        lines = results.read_bytes().splitlines(keepends=True)
        # Simulate a mid-run kill: two complete records + a torn write.
        results.write_bytes(b"".join(lines[:2]) + lines[2][:7])

        summary = CampaignEngine(SPEC, out, jobs=1).run()
        assert summary["already_complete"] == 2
        assert summary["executed"] == 4  # never re-runs the finished two
        assert results.read_bytes() == reference_bytes

    def test_completed_campaign_resumes_to_noop(self, tmp_path):
        out, _ = run_into(tmp_path, "done", jobs=1)
        summary = CampaignEngine(SPEC, out, jobs=1).run()
        assert summary["executed"] == 0
        assert summary["already_complete"] == 6


class TestWorker:
    def test_execute_task_matches_chunk_execution(self):
        from repro.campaign.sampler import enumerate_tasks
        task = enumerate_tasks(SPEC)[0].to_dict()
        solo = execute_task(task)
        chunked = execute_chunk({"tasks": [task], "config": None,
                                 "timeout": 0})
        assert chunked == [solo]

    def test_records_have_no_wall_clock_fields(self):
        from repro.campaign.sampler import enumerate_tasks
        task = enumerate_tasks(SPEC)[0].to_dict()
        record = execute_task(task)
        assert not any("time" in key or "stamp" in key for key in record
                       if key != "timed_out")


class TestCancellation:
    """Cooperative should_stop: clean prefix, resumable, both modes."""

    def stop_after(self, n):
        calls = {"count": 0}

        def should_stop():
            calls["count"] += 1
            return calls["count"] > n

        return should_stop

    def test_serial_stop_leaves_canonical_prefix(self, tmp_path):
        out = tmp_path / "c"
        engine = CampaignEngine(SPEC, out, jobs=1, chunk_size=1)
        summary = engine.run(should_stop=self.stop_after(2))
        assert summary["cancelled"] is True
        assert summary["state"] == "cancelled"
        records = CampaignStore(out).records()
        assert 0 < len(records) < SPEC.total_tasks()
        # The stored prefix is exactly canonical order: resumable.
        assert [r["index"] for r in records] == list(range(len(records)))

    def test_parallel_stop_leaves_canonical_prefix(self, tmp_path):
        # Enough tasks that the bounded submission window (jobs*4)
        # cannot swallow the whole campaign before the stop lands.
        big = CampaignSpec(kinds=("base", "srt"), workloads=("m88ksim",),
                           models=("transient-result",), injections=12,
                           instructions=150, warmup=400)
        out = tmp_path / "c"
        engine = CampaignEngine(big, out, jobs=2, chunk_size=1)
        summary = engine.run(should_stop=self.stop_after(2))
        assert summary["cancelled"] is True
        records = CampaignStore(out).records()
        assert 0 < len(records) < big.total_tasks()
        assert [r["index"] for r in records] == list(range(len(records)))

    def test_cancelled_campaign_resumes_to_completion(self, tmp_path):
        out = tmp_path / "c"
        CampaignEngine(SPEC, out, jobs=1, chunk_size=1).run(
            should_stop=self.stop_after(2))
        # Second run, no stop: picks up where the cancel left off.
        summary = CampaignEngine(SPEC, out, jobs=1).run()
        assert summary["cancelled"] is False
        assert summary["state"] == "complete"
        records = CampaignStore(out).records()
        assert len(records) == SPEC.total_tasks()
        assert [r["index"] for r in records] \
            == list(range(SPEC.total_tasks()))

    def test_cancelled_matches_uncancelled_prefix(self, tmp_path):
        # Determinism: a cancelled-then-resumed campaign is record-for-
        # record identical to one that never stopped.
        stopped = tmp_path / "stopped"
        CampaignEngine(SPEC, stopped, jobs=1, chunk_size=1).run(
            should_stop=self.stop_after(2))
        CampaignEngine(SPEC, stopped, jobs=1).run()
        straight = tmp_path / "straight"
        CampaignEngine(SPEC, straight, jobs=1).run()
        assert (CampaignStore(stopped).results_path.read_text()
                == CampaignStore(straight).results_path.read_text())

    def test_never_stopping_is_not_cancelled(self, tmp_path):
        out, summary = run_into(tmp_path, "c", jobs=1)
        assert summary["cancelled"] is False
        assert summary["state"] == "complete"

    def test_progress_sidecar_live_during_run(self, tmp_path):
        # The engine writes the sidecar after every chunk, so an
        # observer (campaign status) sees live progress mid-run.
        out = tmp_path / "c"
        seen = []
        store_holder = {}

        def spy_stop():
            store = store_holder.get("store")
            if store is not None:
                progress = store.load_progress()
                if progress is not None:
                    seen.append(progress["done"])
            return False

        engine = CampaignEngine(SPEC, out, jobs=1, chunk_size=1)
        store_holder["store"] = CampaignStore(out)
        engine.run(should_stop=spy_stop)
        assert seen  # sidecar observable while running
        assert seen == sorted(seen)
        final = CampaignStore(out).load_progress()
        assert final["state"] == "complete"
        assert final["already_complete"] + final["executed"] \
            == SPEC.total_tasks()
