"""Cache semantics: byte-identity, key sensitivity, corruption recovery."""

import json

import pytest

from repro.serve.cache import ResultCache
from repro.serve.jobs import JobSpec, JobValidationError


def spec(**overrides):
    params = {"kind": "srt", "benchmarks": ["gcc"], "instructions": 300}
    params.update(overrides)
    return JobSpec.build("run", params)


RESULT = {"cycles": 1234, "stats": {"ipc": 1.5, "vectors": [1, 2, 3]}}


class TestKeys:
    def test_key_is_deterministic(self):
        assert spec().cache_key() == spec().cache_key()

    def test_equivalent_specs_share_a_key(self):
        # Defaults merged and tuples/lists normalized before hashing.
        explicit = spec(warmup=12000, seed=0)  # the defaults, spelled out
        assert explicit.cache_key() == spec().cache_key()

    def test_one_field_difference_distinct_key(self):
        assert spec().cache_key() != spec(instructions=301).cache_key()
        assert spec().cache_key() != spec(kind="crt").cache_key()
        assert spec().cache_key() != spec(seed=8).cache_key()

    def test_type_disambiguates(self):
        avf = JobSpec.build("avf", {"workload": "gcc"})
        analyze = JobSpec.build("analyze", {"workload": "gcc"})
        assert avf.cache_key() != analyze.cache_key()

    def test_unknown_params_rejected(self):
        with pytest.raises(JobValidationError):
            spec(flux_capacitor=True)

    def test_unknown_type_rejected(self):
        with pytest.raises(JobValidationError):
            JobSpec.build("mine-bitcoin", {})


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = spec()
        assert cache.get(job.cache_key()) is None
        cache.put(job, RESULT)
        hit = cache.get(job.cache_key())
        assert hit == RESULT
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1,
                                 "evictions": 0, "write_errors": 0}

    def test_hit_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(spec(), RESULT)
        first = json.dumps(cache.get(spec().cache_key()), sort_keys=True)
        second = json.dumps(cache.get(spec().cache_key()), sort_keys=True)
        assert first == second == json.dumps(RESULT, sort_keys=True)

    def test_survives_reopen(self, tmp_path):
        ResultCache(tmp_path).put(spec(), RESULT)
        assert ResultCache(tmp_path).get(spec().cache_key()) == RESULT

    def test_one_field_difference_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(spec(), RESULT)
        assert cache.get(spec(instructions=301).cache_key()) is None
        assert cache.entry_count() == 1


class TestAtomicWrites:
    def test_put_leaves_no_stray_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(spec(), RESULT)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_concurrent_writers_same_key_do_not_collide(self, tmp_path):
        """Regression: a fixed ``<key>.tmp`` name made two writers
        sharing a cache dir race — the loser's ``os.replace`` raised
        FileNotFoundError and failed its job."""
        import threading

        cache = ResultCache(tmp_path)
        errors = []

        def writer():
            try:
                for _ in range(25):
                    cache.put(spec(), RESULT)
            except Exception as error:  # recorded, asserted below
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert cache.get(spec().cache_key()) == RESULT
        assert not list(tmp_path.rglob("*.tmp"))


class TestCounterLockDiscipline:
    def test_concurrent_counter_updates_are_exact(self, tmp_path):
        """Regression (found by `repro verify lockset`, S501): the
        hit/miss/eviction counters were bare ``+=`` from executor
        worker threads, so concurrent updates could drop increments.
        They now share ``_lock``; under contention the totals must be
        exact, not approximate."""
        import threading

        cache = ResultCache(tmp_path)
        n_threads, n_ops = 8, 200
        barrier = threading.Barrier(n_threads)

        def misser():
            barrier.wait()
            for _ in range(n_ops):
                cache.get("ff" + "0" * 14)  # always a miss

        threads = [threading.Thread(target=misser)
                   for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.stats()["misses"] == n_threads * n_ops

    def test_stats_snapshot_is_consistent(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = spec()
        cache.put(job, RESULT)
        cache.get(job.cache_key())
        cache.get("00" + "1" * 14)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1


class TestCorruption:
    def corrupt(self, cache, job, mutate):
        path = cache.path(job.cache_key())
        entry = json.loads(path.read_text())
        mutate(entry, path)

    def test_tampered_result_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = spec()
        cache.put(job, RESULT)

        def mutate(entry, path):
            entry["result"]["cycles"] = 9999  # seal no longer matches
            path.write_text(json.dumps(entry))

        self.corrupt(cache, job, mutate)
        assert cache.get(job.cache_key()) is None  # detected, not served
        assert not cache.path(job.cache_key()).exists()  # evicted
        assert cache.stats()["evictions"] == 1

    def test_truncated_entry_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = spec()
        cache.put(job, RESULT)
        cache.path(job.cache_key()).write_text('{"entry_version": 1, "k')
        assert cache.get(job.cache_key()) is None
        assert not cache.path(job.cache_key()).exists()

    def test_wrong_key_slot_evicted(self, tmp_path):
        # An entry whose recorded key disagrees with its slot is bogus.
        cache = ResultCache(tmp_path)
        job = spec()
        cache.put(job, RESULT)

        def mutate(entry, path):
            entry["key"] = "0" * 16
            path.write_text(json.dumps(entry))

        self.corrupt(cache, job, mutate)
        assert cache.get(job.cache_key()) is None

    def test_recompute_after_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = spec()
        cache.put(job, RESULT)
        cache.path(job.cache_key()).write_text("garbage")
        assert cache.get(job.cache_key()) is None
        cache.put(job, RESULT)  # the scheduler recomputes + re-seals
        assert cache.get(job.cache_key()) == RESULT
