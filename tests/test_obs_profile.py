"""Stage profiler: the profiled run loop must be an exact stand-in for
``Machine.run`` (same RunResult, byte for byte), with plausible stage
attribution on top."""

import pytest

from repro.core.config import MachineConfig
from repro.core.machine import make_machine
from repro.isa.generator import generate_benchmark
from repro.isa.profiles import split_workload
from repro.obs.profile import STAGES, StageProfiler


def program_for(workload):
    name, seed = split_workload(workload)
    return generate_benchmark(name, seed=seed)


@pytest.mark.parametrize("kind", ["base", "srt", "crt"])
def test_profiled_run_identical_to_plain_run(kind):
    """The whole contract: fences only, never a behaviour change."""
    programs = [program_for("compress")]
    if kind == "crt":
        programs.append(program_for("gcc"))

    plain = make_machine(kind, MachineConfig(), list(programs))
    expected = plain.run(max_instructions=400, warmup=50)

    profiled_machine = make_machine(kind, MachineConfig(), list(programs))
    profiler = StageProfiler()
    actual = profiler.run(profiled_machine, max_instructions=400,
                          warmup=50)

    assert actual.to_dict() == expected.to_dict()
    assert profiler.cycles > 0


def test_stage_attribution_shape():
    program = program_for("gcc")
    machine = make_machine("srt", MachineConfig(), [program])
    profiler = StageProfiler()
    profiler.run(machine, max_instructions=300, warmup=20)

    assert set(profiler.seconds) == set(STAGES)
    assert all(seconds >= 0.0 for seconds in profiler.seconds.values())
    assert profiler.attributed_s > 0.0
    assert profiler.total_s >= profiler.attributed_s

    shares = profiler.shares()
    assert sum(shares.values()) == pytest.approx(1.0)
    # The queue group (issue/rename/writeback) dominates every machine
    # kind we ship; a profiler bug that misattributes stages shows up
    # here as a wildly different split.
    assert shares["queue"] == max(shares.values())


def test_report_and_to_dict():
    program = program_for("compress")
    machine = make_machine("base", MachineConfig(), [program])
    profiler = StageProfiler()
    profiler.run(machine, max_instructions=200, warmup=10)

    text = profiler.report()
    assert "stage profile:" in text
    for stage in STAGES:
        assert stage in text

    payload = profiler.to_dict()
    assert payload["cycles"] == profiler.cycles
    assert set(payload["seconds"]) == set(STAGES)
    assert payload["overhead_s"] >= 0.0


def test_empty_profiler_shares_are_zero():
    profiler = StageProfiler()
    assert profiler.shares() == {stage: 0.0 for stage in STAGES}
    assert profiler.overhead_s == 0.0
