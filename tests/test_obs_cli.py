"""``python -m repro obs`` verbs over a real span log, plus the
top-level dispatch."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.obs import trace
from repro.obs.cli import main as obs_main


@pytest.fixture()
def span_log(tmp_path):
    path = tmp_path / "spans.jsonl"
    with trace.traced(path, trace_id="t1"):
        with trace.span("campaign.run", key="c"):
            with trace.span("campaign.chunk", key="k0", infra=True):
                with trace.span("campaign.task", key="t0"):
                    pass
    trace.disarm_tracing()
    return path


def test_report_text(span_log, capsys):
    assert obs_main(["report", "--spans", str(span_log)]) == 0
    out = capsys.readouterr().out
    assert "3 span(s)" in out
    assert "campaign.task" in out


def test_report_json_envelope(span_log, capsys):
    assert obs_main(["report", "--spans", str(span_log),
                     "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "obs"
    assert payload["spans"]["total_spans"] == 3


def test_tail(span_log, capsys):
    assert obs_main(["tail", "--spans", str(span_log), "-n", "2"]) == 0
    lines = [json.loads(line)
             for line in capsys.readouterr().out.splitlines()]
    assert len(lines) == 2
    # Spans are emitted at exit, so the root closes last.
    assert lines[-1]["name"] == "campaign.run"


def test_export_and_normalize(span_log, capsys):
    assert obs_main(["export", "--spans", str(span_log)]) == 0
    full = json.loads(capsys.readouterr().out)
    assert len(full["spans"]) == 3

    assert obs_main(["export", "--spans", str(span_log),
                     "--normalize"]) == 0
    normalized = json.loads(capsys.readouterr().out)["normalized"]
    names = sorted(record["name"] for record in normalized)
    assert names == ["campaign.run", "campaign.task"]  # infra dropped
    assert all("ts" not in record and "dur_s" not in record
               for record in normalized)


def test_profile_json(capsys):
    assert obs_main(["profile", "--kind", "base",
                     "--benchmark", "compress", "--instructions", "150",
                     "--warmup", "10", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["run"]["kind"] == "base"
    assert set(payload["profile"]["seconds"]) == {"fetch", "queue",
                                                  "verify", "commit"}


def test_main_dispatches_obs(span_log, capsys):
    assert repro_main(["obs", "tail", "--spans", str(span_log)]) == 0
    assert capsys.readouterr().out.strip()


def test_list_mentions_obs(capsys):
    assert repro_main(["list"]) == 0
    assert "obs" in capsys.readouterr().out
