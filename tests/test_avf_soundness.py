"""Soundness property test for the static AVF analyzer.

The analyzer's one contract with the fault-injection campaign is
one-directional: a site it classifies into ``MASKED_CLASSES`` must
*never* be observed DETECTED (or SDC) by the architectural oracle over
the same step horizon.  (LATENT is fine — a flipped bit may stay
resident in dead state.  The other direction — predicted-ACE sites
being masked in practice — is expected and harmless: ACE analysis is a
conservative over-approximation, per Mukherjee et al.)

This test sweeps **every generator profile × 3 seeds = 54 program
instances** (the ISSUE floor is 50), draws class-stratified sites for
all three architectural fault models in each, and injects every
predicted-masked draw through the oracle.  Any detection fails the
suite with the full site description for replay.
"""

import pytest

from repro.avf.analyzer import MASKED_CLASSES
from repro.avf.sites import clear_universe_cache
from repro.campaign.report import FALSE_MASKED_OUTCOMES
from repro.campaign.sampler import enumerate_tasks
from repro.campaign.spec import CampaignSpec
from repro.campaign.worker import execute_task
from repro.core.faults import ARCH_FAULT_MODELS
from repro.isa.profiles import SPEC95_NAMES

SEEDS_PER_PROFILE = 3
INJECTIONS_PER_STRATUM = 4
INSTRUCTIONS = 300


def _spec(profile: str, seed: int) -> CampaignSpec:
    workload = f"{profile}@{seed}" if seed else profile
    return CampaignSpec(
        kinds=("arch",), workloads=(workload,),
        models=ARCH_FAULT_MODELS,
        injections=INJECTIONS_PER_STRATUM,
        instructions=INSTRUCTIONS, warmup=0,
        sampling="stratified")


@pytest.mark.parametrize("profile", SPEC95_NAMES)
def test_no_predicted_masked_site_is_detected(profile):
    clear_universe_cache()
    cache = {}
    masked_checked = 0
    for seed in range(SEEDS_PER_PROFILE):
        tasks = enumerate_tasks(_spec(profile, seed))
        for task in tasks:
            if task.predicted not in MASKED_CLASSES:
                continue
            record = execute_task(task.to_dict(), _cache=cache)
            masked_checked += 1
            assert record["outcome"] not in FALSE_MASKED_OUTCOMES, (
                f"SOUNDNESS VIOLATION: {profile}@{seed} "
                f"model={task.model} predicted={task.predicted} "
                f"fault={dict(task.fault)} -> {record['outcome']}")
    # Stratified sampling guarantees masked draws whenever the class
    # exists; a profile with zero checked sites would make this test
    # vacuous.
    assert masked_checked > 0, f"no masked sites sampled for {profile}"


def test_property_covers_at_least_fifty_instances():
    assert len(SPEC95_NAMES) * SEEDS_PER_PROFILE >= 50
