"""Unit tests for deterministic RNG derivation."""

from repro.util.rng import DeterministicRng, seed_from


class TestSeedFrom:
    def test_stable(self):
        assert seed_from("a", 1) == seed_from("a", 1)

    def test_distinguishes_parts(self):
        assert seed_from("a", 1) != seed_from("a", 2)
        assert seed_from("ab", "c") != seed_from("a", "bc")


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng("x", 1)
        b = DeterministicRng("x", 1)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)]

    def test_different_seed_diverges(self):
        a = DeterministicRng("x", 1)
        b = DeterministicRng("x", 2)
        assert [a.randint(0, 1 << 32) for _ in range(4)] != [
            b.randint(0, 1 << 32) for _ in range(4)]

    def test_derive_is_independent_of_parent_consumption(self):
        parent1 = DeterministicRng("root")
        parent2 = DeterministicRng("root")
        parent2.randint(0, 10)  # consume from parent2 only
        child1 = parent1.derive("child")
        child2 = parent2.derive("child")
        assert child1.randint(0, 1 << 32) == child2.randint(0, 1 << 32)

    def test_choice_uses_stream(self):
        rng = DeterministicRng("c")
        options = list(range(100))
        picks = [rng.choice(options) for _ in range(5)]
        rng2 = DeterministicRng("c")
        assert picks == [rng2.choice(options) for _ in range(5)]
