"""Unit tests for deterministic RNG derivation."""

from repro.util.rng import DeterministicRng, seed_from, spawn_seed


class TestSeedFrom:
    def test_stable(self):
        assert seed_from("a", 1) == seed_from("a", 1)

    def test_distinguishes_parts(self):
        assert seed_from("a", 1) != seed_from("a", 2)
        assert seed_from("ab", "c") != seed_from("a", "bc")


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng("x", 1)
        b = DeterministicRng("x", 1)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)]

    def test_different_seed_diverges(self):
        a = DeterministicRng("x", 1)
        b = DeterministicRng("x", 2)
        assert [a.randint(0, 1 << 32) for _ in range(4)] != [
            b.randint(0, 1 << 32) for _ in range(4)]

    def test_derive_is_independent_of_parent_consumption(self):
        parent1 = DeterministicRng("root")
        parent2 = DeterministicRng("root")
        parent2.randint(0, 10)  # consume from parent2 only
        child1 = parent1.derive("child")
        child2 = parent2.derive("child")
        assert child1.randint(0, 1 << 32) == child2.randint(0, 1 << 32)

    def test_choice_uses_stream(self):
        rng = DeterministicRng("c")
        options = list(range(100))
        picks = [rng.choice(options) for _ in range(5)]
        rng2 = DeterministicRng("c")
        assert picks == [rng2.choice(options) for _ in range(5)]


class TestSpawn:
    """Spawn-style sub-seeds: the cross-process derivation contract."""

    def test_spawn_seed_is_a_pure_function(self):
        assert spawn_seed(7, "a", 1) == spawn_seed(7, "a", 1)
        assert spawn_seed(7, "a", 1) != spawn_seed(7, "a", 2)
        assert spawn_seed(7, "a", 1) != spawn_seed(8, "a", 1)

    def test_spawn_independent_of_parent_consumption(self):
        """The property workers rely on: a spawned stream depends only
        on (root seed, key), never on shared parent state."""
        parent1 = DeterministicRng("root", 3)
        parent2 = DeterministicRng("root", 3)
        for _ in range(17):
            parent2.random()  # consume parent2 heavily
        child1 = parent1.spawn("task", 5)
        child2 = parent2.spawn("task", 5)
        assert [child1.randint(0, 1 << 32) for _ in range(8)] == [
            child2.randint(0, 1 << 32) for _ in range(8)]

    def test_sibling_spawns_diverge(self):
        parent = DeterministicRng("root")
        a = parent.spawn("task", 0)
        b = parent.spawn("task", 1)
        assert [a.randint(0, 1 << 32) for _ in range(4)] != [
            b.randint(0, 1 << 32) for _ in range(4)]

    def test_spawn_rebuildable_from_seed_alone(self):
        """A worker holding only the integer seed rebuilds the stream."""
        child = DeterministicRng("root").spawn("k")
        rebuilt = DeterministicRng.from_seed(child.seed)
        assert [child.randint(0, 1 << 32) for _ in range(4)] == [
            rebuilt.randint(0, 1 << 32) for _ in range(4)]

    def test_spawn_differs_from_derive(self):
        """Two distinct namespaces: spawn keys never collide with
        derive parts."""
        parent = DeterministicRng("root")
        assert parent.spawn("x").seed != parent.derive("x").seed
