"""Engine A acceptance: every shipped (srt|crt) × queue-size
configuration proves deadlock-free with in-order verified store commit,
POR agrees with full BFS everywhere, and each of the three seeded
protocol mutations yields its golden minimal counterexample."""

import dataclasses

import pytest

from repro.verify.explore import explore_bfs, replay
from repro.verify.protocol import (MUTATIONS, ProtocolConfig,
                                   ProtocolSystem, demo_configuration,
                                   shipped_configurations, verify_protocol)

#: Golden minimal violating schedules for the seeded mutations, as
#: reported by exhaustive BFS over the demo configuration.  These are
#: fixtures: a model change that alters them must be re-blessed here
#: *and* shown to still replay to a violation (TestMutations checks
#: both).
GOLDEN_SCHEDULES = {
    "boq-zero": (),
    "lvq-unchecked": (
        "lead-retire/L0", "lead-retire/L1", "trail-fetch/L0",
        "trail-fetch/L1", "trail-exec/L1"),
    "commit-before-verify": (
        "lead-retire/L0", "lead-retire/L1", "trail-fetch/L0",
        "lead-retire/S2", "drain/S0"),
}

GOLDEN_KINDS = {
    "boq-zero": "deadlock",
    "lvq-unchecked": "invariant",
    "commit-before-verify": "invariant",
}


class TestShippedConfigurations:
    def test_covers_both_kinds_and_the_paper_variants(self):
        configs = shipped_configurations()
        names = {c.name for c in configs}
        for kind in ("srt", "crt"):
            assert f"{kind}-default" in names
            assert f"{kind}-ptsq" in names
            assert f"{kind}-nosc" in names
            assert f"{kind}-slack" in names
            assert f"{kind}-recovery" in names
            # Boundary sweep: the full lpq × lvq × sq cross-product.
            for lpq in (1, 2):
                for lvq in (1, 2):
                    for sq in (1, 2):
                        assert (f"{kind}-sweep-lpq{lpq}-lvq{lvq}-sq{sq}"
                                in names)

    @pytest.mark.parametrize(
        "config", shipped_configurations(), ids=lambda c: c.name)
    def test_deadlock_free_with_in_order_commit(self, config):
        result = verify_protocol(config)
        assert result.ok, result.counterexample.render()
        # Every store the program issues actually committed in some
        # final state — the invariants weren't vacuous.
        assert result.final_states >= 1

    @pytest.mark.parametrize(
        "config", shipped_configurations()[:6], ids=lambda c: c.name)
    def test_por_agrees_with_full_bfs(self, config):
        por = verify_protocol(config, por=True)
        full = verify_protocol(config, por=False)
        assert por.ok == full.ok
        assert por.states == full.states

    def test_programs_exercise_queue_fullness(self):
        for config in shipped_configurations():
            longest = max(config.lpq_capacity, config.lvq_capacity,
                          config.sq_capacity, config.window)
            assert len(config.program) >= 2 * longest


class TestModelSemantics:
    def test_final_state_drains_everything(self):
        system = ProtocolSystem(demo_configuration())
        result = explore_bfs(system)
        assert result.ok
        # Reconstruct one complete run by greedy scheduling and check
        # the final state committed every store in order.
        state = system.initial()
        steps = 0
        while not system.is_final(state):
            label, state = system.enabled(state)[0]
            steps += 1
            assert steps < 500
        assert state.committed == system.total_stores

    def test_lvq_overflow_is_gated_not_raised(self):
        # A 1-entry LVQ with back-to-back loads must stall the leading
        # thread, never overflow: lead-retire of the second load is not
        # enabled until the trailing thread consumes the first value.
        config = ProtocolConfig(
            name="tiny", kind="srt", program="LL",
            lpq_capacity=2, lvq_capacity=1, sq_capacity=1,
            trail_sq_capacity=1, window=2)
        system = ProtocolSystem(config)
        state = dict(system.enabled(system.initial()))["lead-retire/L0"]
        labels = [lbl for lbl, _ in system.enabled(state)]
        assert "lead-retire/L1" not in labels

    def test_fifo_checked_head_gate(self):
        # Under fifo-checked discipline a younger load cannot consume
        # until the LVQ head is its own entry.
        config = dataclasses.replace(demo_configuration(), window=2)
        system = ProtocolSystem(config)
        state = system.initial()
        for want in ("lead-retire/L0", "lead-retire/L1",
                     "trail-fetch/L0", "trail-fetch/L1"):
            state = dict(system.enabled(state))[want]
        labels = [lbl for lbl, _ in system.enabled(state)]
        assert "trail-exec/L0" in labels
        assert "trail-exec/L1" not in labels  # head is L0's entry

    def test_associative_discipline_allows_out_of_order_consume(self):
        config = dataclasses.replace(demo_configuration(),
                                     lvq_discipline="associative")
        system = ProtocolSystem(config)
        state = system.initial()
        for want in ("lead-retire/L0", "lead-retire/L1",
                     "trail-fetch/L0", "trail-fetch/L1"):
            state = dict(system.enabled(state))[want]
        labels = [lbl for lbl, _ in system.enabled(state)]
        assert "trail-exec/L0" in labels and "trail-exec/L1" in labels
        result = verify_protocol(config)
        assert result.ok  # tag match keeps OoO consumption coherent

    def test_validate_rejects_bad_configs(self):
        with pytest.raises(ValueError):
            ProtocolConfig(name="x", kind="weird", program="L",
                           lpq_capacity=1, lvq_capacity=1, sq_capacity=1,
                           trail_sq_capacity=1, window=1).validate()
        with pytest.raises(ValueError):
            ProtocolConfig(name="x", kind="srt", program="LXQ",
                           lpq_capacity=1, lvq_capacity=1, sq_capacity=1,
                           trail_sq_capacity=1, window=1).validate()


class TestMutations:
    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_golden_minimal_counterexample(self, mutation):
        result = verify_protocol(demo_configuration(), mutation=mutation)
        assert not result.ok
        ce = result.counterexample
        assert ce.minimal
        assert ce.kind == GOLDEN_KINDS[mutation]
        assert ce.schedule == GOLDEN_SCHEDULES[mutation]

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_golden_schedule_replays_to_the_violation(self, mutation):
        if mutation == "boq-zero":
            pytest.skip("empty schedule: the initial state deadlocks")
        config = MUTATIONS[mutation](demo_configuration())
        system = ProtocolSystem(config)
        state, violation = replay(system, GOLDEN_SCHEDULES[mutation])
        assert violation is not None

    def test_boq_zero_deadlocks_immediately(self):
        config = MUTATIONS["boq-zero"](demo_configuration())
        system = ProtocolSystem(config)
        assert system.enabled(system.initial()) == []
        assert not system.is_final(system.initial())

    def test_lvq_unchecked_reason_names_the_swap(self):
        result = verify_protocol(demo_configuration(),
                                 mutation="lvq-unchecked")
        assert "replication integrity" in result.counterexample.reason

    def test_commit_before_verify_reason_names_the_store(self):
        result = verify_protocol(demo_configuration(),
                                 mutation="commit-before-verify")
        assert "before output comparison" in result.counterexample.reason

    def test_unmutated_demo_is_clean(self):
        result = verify_protocol(demo_configuration())
        assert result.ok
