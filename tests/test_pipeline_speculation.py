"""Speculation edge cases: memory-order violations, indirect control
flow, return-stack behaviour."""

from repro.core.config import MachineConfig
from repro.core.machine import BaseMachine
from repro.isa.assembler import assemble


def run_program(source, max_instructions=20_000, max_cycles=200_000):
    program = assemble(source)
    machine = BaseMachine(MachineConfig(), [program])
    machine.run(max_instructions=max_instructions, max_cycles=max_cycles)
    thread = machine.cores[0].threads[0]
    assert thread.done, "program did not reach HALT"
    return machine, thread


def reg(thread, index):
    return thread.rename.architectural_value(index)


class TestMemoryOrderViolation:
    SOURCE = """
        ldi r1, 0x2000
        ldi r10, 5          ; loop count
        ldi r11, 0          ; sum
    loop:
        ldi r2, 1
        ldi r3, 3
        fdiv r4, r2, r3     ; long-latency chain ...
        fdiv r4, r4, r3
        add r5, r1, r4      ; ... store address depends on it (r4 == 0)
        ldi r6, 77
        st r5, 0, r6        ; store resolves late, to 0x2000
        ld r7, r1, 0        ; load issues early to the same address
        add r11, r11, r7
        addi r10, r10, -1
        bnez r10, loop
        halt
    """

    def test_violation_detected_and_state_correct(self):
        machine, thread = run_program(self.SOURCE)
        # The load must architecturally observe the store's 77 each pass.
        assert reg(thread, 11) == 5 * 77
        # At least the first pass speculated wrongly (store sets then learn).
        assert thread.stats.memory_violations >= 1

    def test_store_sets_learn(self):
        """After the first violation the predictor should prevent most
        repeats of the same load/store pair."""
        machine, thread = run_program(self.SOURCE)
        assert thread.stats.memory_violations < 5
        assert machine.cores[0].store_sets.stats.violations >= 1


class TestIndirectControl:
    def test_jump_table_dispatch(self):
        machine, thread = run_program("""
            .data 0x3000 5
            .data 0x3008 8
            ldi r1, 0x3000    ; pc 0
            ldi r10, 0        ; pc 1
            ld r2, r1, 0      ; pc 2: first target (pc 5)
            jmp r2            ; pc 3
            halt              ; pc 4: skipped
        target1:              ; pc 5
            addi r10, r10, 1  ; pc 5
            ld r2, r1, 8      ; pc 6
            jmp r2            ; pc 7
        target2:              ; pc 8
            addi r10, r10, 10
            halt
        """)
        # The .data values 5 and 8 must match the label positions.
        assert reg(thread, 10) == 11

    def test_mispredicted_return_recovers(self):
        """Call the same function from two sites; the RAS must sort the
        returns out (and recover from any corruption)."""
        machine, thread = run_program("""
            ldi r1, 0
            ldi r10, 30
        loop:
            call r62, bump
            call r62, bump
            addi r10, r10, -1
            bnez r10, loop
            halt
        bump:
            addi r1, r1, 1
            ret r62
        """)
        assert reg(thread, 1) == 60

    def test_deep_recursion_overflows_ras_gracefully(self):
        """Calls nested beyond the RAS depth must still execute correctly
        (through mispredicted returns)."""
        lines = ["ldi r1, 0"]
        # 40 nested call sites (> 32-entry RAS), distinct link registers
        # are impossible, so chain through memory.
        lines += ["ldi r2, 0x4000",
                  "call r62, f0",
                  "halt"]
        for depth in range(40):
            lines += [f"f{depth}:",
                      f"st r2, {8 * depth}, r62",
                      "addi r1, r1, 1",
                      (f"call r62, f{depth + 1}" if depth < 39 else "nop"),
                      f"ld r62, r2, {8 * depth}",
                      "ret r62"]
        lines += ["f40:", "ret r62"]
        machine, thread = run_program("\n".join(lines))
        assert reg(thread, 1) == 40


class TestWrongPathBehaviour:
    def test_wrong_path_stores_never_commit(self):
        machine, thread = run_program("""
            ldi r1, 0x2000
            ldi r2, 0
            ldi r3, 99
            beqz r2, skip      ; always taken; fall-through is wrong path
            st r1, 0, r3       ; wrong-path store
        skip:
            ldi r4, 1
            halt
        """)
        assert machine.memory.get(thread.phys_addr(0x2000)) is None

    def test_wrong_path_loads_do_not_corrupt(self):
        machine, thread = run_program("""
            .data 0x2000 5
            ldi r1, 0x2000
            ldi r10, 40
            ldi r11, 0
        loop:
            andi r2, r10, 3
            bnez r2, noload
            ld r3, r1, 0
            add r11, r11, r3
        noload:
            addi r10, r10, -1
            bnez r10, loop
            halt
        """)
        assert reg(thread, 11) == 10 * 5
