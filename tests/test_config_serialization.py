"""MachineConfig JSON round-trip (experiment reproducibility)."""

import pytest

from repro.core.config import MachineConfig


class TestSerialization:
    def test_roundtrip_defaults(self):
        config = MachineConfig()
        restored = MachineConfig.from_json(config.to_json())
        assert restored == config

    def test_roundtrip_customised(self):
        config = MachineConfig(per_thread_store_queues=True,
                               store_comparison=False,
                               crt_cross_latency=16,
                               trailing_fetch_mode="predictors")
        config.core.store_queue_entries = 96
        config.hierarchy.l2_hit_latency = 20
        restored = MachineConfig.from_json(config.to_json())
        assert restored == config
        assert restored.core.store_queue_entries == 96
        assert restored.hierarchy.l2_hit_latency == 20

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown MachineConfig"):
            MachineConfig.from_dict({"flux_capacitor": True})

    def test_json_is_stable_and_readable(self):
        text = MachineConfig().to_json()
        assert '"checker_latency": 8' in text
        assert '"store_queue_entries": 64' in text

    def test_restored_config_builds_machines(self):
        from repro.core.machine import make_machine
        from repro.isa.generator import generate_benchmark

        restored = MachineConfig.from_json(MachineConfig().to_json())
        machine = make_machine("srt", restored,
                               [generate_benchmark("m88ksim")])
        result = machine.run(max_instructions=100, warmup=500)
        assert result.threads[0].retired == 100
