"""Regressions for the async-safety fixes the flow analyzer surfaced
on the shipped tree: deferred chaos stalls (controller), off-loop cache
probes in submit_async, off-loop cache.put in the dispatch loop, and
off-loop cache.stats in the metrics endpoint."""

import asyncio
import threading
import time

import pytest

from repro.chaos import chaos_point, chaos_point_async
from repro.chaos.controller import armed
from repro.chaos.plan import ChaosPlan, ChaosRule
from repro.serve.api import ServeServer
from repro.serve.cache import ResultCache
from repro.serve.jobs import JobSpec
from repro.serve.scheduler import DONE, Draining, Scheduler


def stall_plan(delay_s=0.1):
    return ChaosPlan(seed=1, rules=(
        ChaosRule("test.stall.site", "stall", delay_s=delay_s),))


def spec(tag=0):
    return JobSpec.build("run", {"kind": "srt", "benchmarks": ["gcc"],
                                 "instructions": 300 + tag})


class InstantPool:
    def execute(self, job_spec, cancel):
        return {"echo": job_spec.params["instructions"]}


class RecordingCache(ResultCache):
    """ResultCache that records which thread touches the disk."""

    def __init__(self, root):
        super().__init__(root)
        self.get_threads = []
        self.put_threads = []
        self.stats_threads = []

    def get(self, key):
        self.get_threads.append(threading.current_thread())
        return super().get(key)

    def put(self, job_spec, result):
        self.put_threads.append(threading.current_thread())
        return super().put(job_spec, result)

    def stats(self):
        self.stats_threads.append(threading.current_thread())
        return super().stats()


async def wait_for(predicate, timeout=5.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while not predicate():
        if asyncio.get_event_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.01)


class TestDeferredStall:
    def test_fire_returns_stall_event_without_sleeping(self):
        plan = stall_plan(delay_s=5.0)
        with armed(plan) as controller:
            start = time.monotonic()
            event = controller.fire("test.stall.site", None, 0)
            elapsed = time.monotonic() - start
        assert event is not None
        assert event.fault == "stall"
        assert event.delay_s == 5.0
        assert elapsed < 1.0  # the controller itself never sleeps

    def test_sync_chaos_point_still_sleeps(self):
        with armed(stall_plan(delay_s=0.05)):
            start = time.monotonic()
            result = chaos_point("test.stall.site")
            elapsed = time.monotonic() - start
        assert result is None  # stalls are absorbed, not returned
        assert elapsed >= 0.05

    def test_async_stall_yields_to_the_loop(self):
        async def scenario():
            ticks = []

            async def ticker():
                while True:
                    ticks.append(1)
                    await asyncio.sleep(0.005)

            task = asyncio.create_task(ticker())
            result = await chaos_point_async("test.stall.site")
            task.cancel()
            return result, len(ticks)

        with armed(stall_plan(delay_s=0.1)):
            result, tick_count = asyncio.run(scenario())
        assert result is None
        # Other loop work ran *during* the stall — the loop never froze.
        assert tick_count >= 5

    def test_non_stall_events_still_pass_through(self):
        plan = ChaosPlan(seed=1, rules=(
            ChaosRule("test.stall.site", "torn-write"),))
        with armed(plan):
            event = chaos_point("test.stall.site")
            assert event is not None and event.fault == "torn-write"

            async def crossing():
                return await chaos_point_async("test.stall.site")
            event = asyncio.run(crossing())
            assert event is not None and event.fault == "torn-write"


class TestSubmitAsyncProbe:
    def test_cache_probe_runs_off_loop(self, tmp_path):
        cache = RecordingCache(tmp_path / "cache")
        scheduler = Scheduler(InstantPool(), cache, max_running=1)

        async def scenario():
            loop_thread = threading.current_thread()
            scheduler.start()
            job = await scheduler.submit_async(spec())
            await wait_for(lambda: job.state == DONE)
            await scheduler.drain()
            return loop_thread

        loop_thread = asyncio.run(scenario())
        assert cache.get_threads  # the probe happened
        assert all(t is not loop_thread for t in cache.get_threads)

    def test_drain_during_probe_is_refused(self, tmp_path):
        cache = RecordingCache(tmp_path / "cache")
        scheduler = Scheduler(InstantPool(), cache, max_running=1)
        original_get = cache.get

        def draining_get(key):
            scheduler._draining = True  # drain lands mid-probe
            return original_get(key)

        cache.get = draining_get

        async def scenario():
            with pytest.raises(Draining):
                await scheduler.submit_async(spec())

        asyncio.run(scenario())
        assert scheduler.jobs == {}  # nothing was admitted


class TestDispatchPut:
    def test_result_seal_runs_off_loop(self, tmp_path):
        cache = RecordingCache(tmp_path / "cache")
        scheduler = Scheduler(InstantPool(), cache, max_running=1)

        async def scenario():
            loop_thread = threading.current_thread()
            scheduler.start()
            job = scheduler.submit(spec())
            await wait_for(lambda: job.state == DONE)
            await scheduler.drain()
            return loop_thread

        loop_thread = asyncio.run(scenario())
        assert cache.put_threads  # the seal happened
        assert all(t is not loop_thread for t in cache.put_threads)


class TestMetricsStats:
    def test_cache_stats_runs_off_loop(self, tmp_path):
        cache = RecordingCache(tmp_path / "cache")
        scheduler = Scheduler(InstantPool(), cache, max_running=1)
        server = ServeServer(scheduler=scheduler)

        async def scenario():
            loop_thread = threading.current_thread()
            payload = await server._metrics()
            return loop_thread, payload

        loop_thread, payload = asyncio.run(scenario())
        assert payload["cache"] == cache.stats()
        assert cache.stats_threads
        assert all(t is not loop_thread
                   for t in cache.stats_threads[:-1])
