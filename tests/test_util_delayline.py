"""Unit tests for the fixed-latency delay line."""

import pytest

from repro.util.delayline import DelayLine


class TestDelayLine:
    def test_items_arrive_after_latency(self):
        line = DelayLine(3)
        line.push("x", now=10)
        assert line.pop_ready(now=12) == []
        assert line.pop_ready(now=13) == ["x"]

    def test_zero_latency_same_cycle(self):
        line = DelayLine(0)
        line.push("x", now=5)
        assert line.pop_ready(now=5) == ["x"]

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            DelayLine(-1)

    def test_order_preserved_across_cycles(self):
        line = DelayLine(2)
        line.push("a", now=0)
        line.push("b", now=1)
        assert line.pop_ready(now=3) == ["a", "b"]

    def test_pop_removes(self):
        line = DelayLine(1)
        line.push("a", now=0)
        assert line.pop_ready(now=1) == ["a"]
        assert line.pop_ready(now=1) == []

    def test_peek_ready_does_not_remove(self):
        line = DelayLine(1)
        line.push("a", now=0)
        assert line.peek_ready(now=1) == ["a"]
        assert line.pop_ready(now=1) == ["a"]

    def test_remove_if_drops_in_flight(self):
        line = DelayLine(5)
        line.push(1, now=0)
        line.push(2, now=0)
        assert line.remove_if(lambda x: x == 1) == 1
        assert line.pop_ready(now=5) == [2]

    def test_len_counts_in_flight(self):
        line = DelayLine(4)
        line.push("a", now=0)
        line.push("b", now=0)
        assert len(line) == 2
        line.pop_ready(now=4)
        assert len(line) == 0

    def test_clear(self):
        line = DelayLine(2)
        line.push("a", now=0)
        line.clear()
        assert line.pop_ready(now=10) == []
