"""Tests for occupancy sampling, histograms, and pipe traces."""

from repro.core.config import MachineConfig
from repro.core.machine import BaseMachine, make_machine
from repro.harness.tracing import (Histogram, OccupancySampler,
                                   format_pipetrace)
from repro.isa.assembler import assemble
from repro.isa.generator import generate_benchmark


class TestHistogram:
    def test_bucketing(self):
        histogram = Histogram(bucket_width=8)
        for value in (0, 3, 7, 8, 9, 100):
            histogram.add(value)
        rows = dict((low, count) for low, high, count in histogram.rows())
        assert rows[0] == 3
        assert rows[8] == 2
        assert rows[96] == 1

    def test_mean_and_percentile(self):
        histogram = Histogram(bucket_width=10)
        for value in [5] * 9 + [95]:
            histogram.add(value)
        assert 0 < histogram.mean() < 30
        assert histogram.percentile(0.5) == 10
        assert histogram.percentile(0.99) == 100

    def test_empty(self):
        histogram = Histogram()
        assert histogram.mean() == 0.0
        assert histogram.percentile(0.9) == 0


class TestOccupancySampler:
    def test_samples_collected(self):
        program = generate_benchmark("m88ksim")
        machine = BaseMachine(MachineConfig(), [program])
        sampler = OccupancySampler(machine, interval=4)
        result = sampler.run(400, warmup=1500)
        assert result.threads[0].retired == 400
        assert len(sampler.samples) > 10
        assert sampler.peak("core0.t0.rob") > 0

    def test_rmt_pair_keys_present(self):
        program = generate_benchmark("m88ksim")
        machine = make_machine("srt", MachineConfig(), [program])
        sampler = OccupancySampler(machine, interval=4)
        sampler.run(400, warmup=1500)
        slack = sampler.series("pair.m88ksim.slack")
        assert slack and max(slack) > 0
        assert sampler.mean("pair.m88ksim.lvq") >= 0

    def test_histogram_of_series(self):
        program = generate_benchmark("gcc")
        machine = make_machine("srt", MachineConfig(), [program])
        sampler = OccupancySampler(machine, interval=4)
        sampler.run(300, warmup=1000)
        histogram = sampler.histogram("pair.gcc.slack", bucket_width=16)
        assert histogram.total == len(sampler.samples)


class TestPipetrace:
    def test_renders_stages(self):
        program = assemble("""
            ldi r1, 5
            add r2, r1, r1
            mul r3, r2, r2
            halt
        """)
        machine = BaseMachine(MachineConfig(), [program])
        core = machine.cores[0]
        core.retire_trace[0] = []
        machine.run(max_instructions=10)
        text = format_pipetrace(core.retire_trace[0], width=60)
        lines = text.splitlines()
        assert len(lines) == 4
        for letter in "FQIR":
            assert letter in lines[0]
        # The dependent MUL must issue at or after its producer's issue.
        assert lines[2].index("I") >= lines[1].index("I")

    def test_empty_trace(self):
        assert format_pipetrace([]) == "(no uops)"
