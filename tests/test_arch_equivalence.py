"""The pipeline's retired stream must equal the architectural executor.

This is the repository's strongest correctness property: for every
synthetic benchmark, the out-of-order, speculating, forwarding pipeline
must retire exactly the instruction stream — same PCs, same load values,
same store addresses and data — that the simple in-order functional
executor produces.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.machine import BaseMachine
from repro.isa.executor import FunctionalExecutor
from repro.isa.generator import generate_benchmark
from repro.isa.profiles import SPEC95_NAMES

INSTRUCTIONS = 1200


def check_equivalence(program, machine, core, tid=0):
    trace = core.retire_trace[tid]
    reference = FunctionalExecutor(program).run(len(trace))
    assert len(trace) > 0
    for index, (uop, ref) in enumerate(zip(trace, reference)):
        assert uop.pc == ref.pc, (
            f"pc diverged at retired instruction {index}: "
            f"{uop.pc} != {ref.pc} ({uop.instr} vs {ref.instr})")
        if ref.load is not None:
            assert uop.mem_addr == ref.load[0], f"load address @{index}"
            assert uop.result == ref.load[1], f"load value @{index}"
        if ref.store is not None:
            assert uop.mem_addr == ref.store[0], f"store address @{index}"


@pytest.mark.parametrize("name", SPEC95_NAMES)
def test_base_machine_matches_functional_executor(name):
    program = generate_benchmark(name)
    machine = BaseMachine(MachineConfig(), [program])
    core = machine.cores[0]
    core.retire_trace[0] = []
    result = machine.run(max_instructions=INSTRUCTIONS, warmup=3000)
    assert result.threads[0].retired == INSTRUCTIONS, "stalled before target"
    check_equivalence(program, machine, core)


@pytest.mark.parametrize("name", ["gcc", "swim", "li", "fpppp"])
def test_base_machine_matches_with_different_seeds(name):
    program = generate_benchmark(name, seed=7)
    machine = BaseMachine(MachineConfig(), [program])
    core = machine.cores[0]
    core.retire_trace[0] = []
    machine.run(max_instructions=800, warmup=2000)
    check_equivalence(program, machine, core)


def test_two_threads_both_match():
    """Coscheduled threads must not corrupt each other's state."""
    programs = [generate_benchmark("gcc"), generate_benchmark("swim")]
    machine = BaseMachine(MachineConfig(), programs)
    core = machine.cores[0]
    core.retire_trace[0] = []
    core.retire_trace[1] = []
    machine.run(max_instructions=800, warmup=2000)
    for tid, program in enumerate(programs):
        trace = core.retire_trace[tid]
        reference = FunctionalExecutor(program).run(len(trace))
        for uop, ref in zip(trace, reference):
            assert uop.pc == ref.pc
            if ref.load is not None:
                assert uop.result == ref.load[1]


def test_srt_leading_and_trailing_match_reference():
    """Both redundant threads retire the identical correct stream."""
    from repro.core.machine import make_machine

    program = generate_benchmark("vortex")
    machine = make_machine("srt", MachineConfig(), [program])
    core = machine.cores[0]
    core.retire_trace[0] = []
    core.retire_trace[1] = []
    result = machine.run(max_instructions=800, warmup=2000)
    assert result.faults_detected == 0
    lead, trail = core.retire_trace[0], core.retire_trace[1]
    reference = FunctionalExecutor(program).run(len(lead))
    for uop, ref in zip(lead, reference):
        assert uop.pc == ref.pc
    for lead_uop, trail_uop in zip(lead, trail):
        assert lead_uop.pc == trail_uop.pc
        if lead_uop.instr.is_store:
            assert lead_uop.mem_addr == trail_uop.mem_addr
            assert lead_uop.store_value == trail_uop.store_value
