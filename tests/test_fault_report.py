"""Tests for detailed fault reports and detection latency."""

from repro.core.config import MachineConfig
from repro.core.faults import (FaultOutcome, FaultReport,
                               TransientResultFault,
                               run_fault_experiment_detailed)
from repro.core.machine import make_machine
from repro.isa.generator import generate_benchmark

PROGRAM = generate_benchmark("gcc")


class TestFaultReport:
    def test_latency_requires_both_cycles(self):
        assert FaultReport(FaultOutcome.MASKED).detection_latency is None
        assert FaultReport(FaultOutcome.DETECTED,
                           struck_cycle=10).detection_latency is None
        report = FaultReport(FaultOutcome.DETECTED, struck_cycle=10,
                             detected_cycle=70)
        assert report.detection_latency == 60

    def test_struck_cycle_recorded(self):
        machine = make_machine("srt", MachineConfig(), [PROGRAM])
        fault = TransientResultFault(cycle=150, core_index=0, bit=1)
        report = run_fault_experiment_detailed(
            machine, PROGRAM, fault, instructions=600, warmup=2000)
        assert fault.fired
        assert report.struck_cycle is not None
        assert report.struck_cycle >= 150

    def test_detected_faults_have_positive_latency(self):
        found = 0
        for index in range(8):
            machine = make_machine("srt", MachineConfig(), [PROGRAM])
            fault = TransientResultFault(cycle=100 + 70 * index,
                                         core_index=0, bit=1)
            report = run_fault_experiment_detailed(
                machine, PROGRAM, fault, instructions=800, warmup=2000)
            if report.outcome is FaultOutcome.DETECTED:
                found += 1
                assert report.detection_latency is not None
                assert report.detection_latency > 0
        assert found > 0

    def test_masked_faults_have_no_detection_cycle(self):
        machine = make_machine("base", MachineConfig(), [PROGRAM])
        fault = TransientResultFault(cycle=150, core_index=0, bit=1)
        report = run_fault_experiment_detailed(
            machine, PROGRAM, fault, instructions=400, warmup=2000)
        assert report.detected_cycle is None
