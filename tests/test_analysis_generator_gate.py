"""The generator's mandatory validity gate + the 50-seed property.

Every program the workload generator emits must be certified free of
ERROR-severity findings (definitely-uninitialized reads, statically
out-of-bounds stores, control past the end) before a machine runs it.
"""

import pytest

from repro.analysis.checks import ProgramVerificationError, verify_program
from repro.isa import generator as gen
from repro.isa.generator import generate_benchmark, generate_program
from repro.isa.profiles import SPEC95_NAMES, get_profile

#: 50 (profile, seed) pairs covering every profile and seeds 0..49.
FIFTY_SEEDS = [(SPEC95_NAMES[seed % len(SPEC95_NAMES)], seed)
               for seed in range(50)]


class TestGateWiring:
    def test_generate_runs_gate_by_default(self, monkeypatch):
        calls = []
        from repro.analysis import checks

        real = checks.gate_program
        monkeypatch.setattr(checks, "gate_program",
                            lambda p: calls.append(p.name) or real(p))
        monkeypatch.setattr(gen, "_VERIFIED", set())
        generate_benchmark("compress", 7)
        assert calls == ["compress#7"]

    def test_gate_memoizes_per_profile_seed(self, monkeypatch):
        calls = []
        from repro.analysis import checks

        real = checks.gate_program
        monkeypatch.setattr(checks, "gate_program",
                            lambda p: calls.append(p.name) or real(p))
        monkeypatch.setattr(gen, "_VERIFIED", set())
        generate_benchmark("compress", 3)
        generate_benchmark("compress", 3)
        assert len(calls) == 1

    def test_verify_false_skips_gate(self, monkeypatch):
        def boom(_):
            raise AssertionError("gate must not run")

        from repro.analysis import checks
        monkeypatch.setattr(checks, "gate_program", boom)
        monkeypatch.setattr(gen, "_VERIFIED", set())
        generate_benchmark("compress", 11, verify=False)

    def test_gate_rejects_corrupted_program(self):
        from repro.analysis.checks import gate_program
        program = generate_benchmark("m88ksim", 0, verify=False)
        # Surgically corrupt the program: drop the declared data
        # segments and shrink them to exclude the jump table writes...
        # simplest seeded defect: declare an empty data segment so every
        # statically-known store is out of bounds.
        program.metadata["data_segments"] = [(0, 8)]
        with pytest.raises(ProgramVerificationError):
            gate_program(program)


class TestGeneratorMetadata:
    def test_structural_metadata_present(self):
        program = generate_benchmark("gcc", 0, verify=False)
        assert program.metadata["runs_forever"] is True
        targets = program.metadata["jump_table_targets"]
        assert len(targets) == gen.JUMP_TABLE_SLOTS
        assert all(0 <= t < len(program) for t in targets)
        segments = program.metadata["data_segments"]
        assert any(lo == gen.DATA_BASE for lo, hi in segments)
        assert any(lo == gen.TABLE_BASE for lo, hi in segments)

    def test_jump_table_matches_memory(self):
        program = generate_benchmark("perl", 2, verify=False)
        from_table = [program.initial_memory[gen.TABLE_BASE + 8 * slot]
                      for slot in range(gen.JUMP_TABLE_SLOTS)]
        assert from_table == program.metadata["jump_table_targets"]


@pytest.mark.parametrize("name,seed", FIFTY_SEEDS,
                         ids=[f"{n}-{s}" for n, s in FIFTY_SEEDS])
def test_property_fifty_seeds_verify_clean(name, seed):
    """Acceptance: generated programs have zero ERROR findings."""
    program = generate_program(get_profile(name), seed, verify=False)
    report = verify_program(program)
    assert report.errors == [], (
        f"{name}#{seed}: " + "; ".join(str(f) for f in report.errors))
