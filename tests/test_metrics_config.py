"""Tests for metrics (Section 6.4) and the Table 1 configuration."""

import pytest

from repro.core.config import MachineConfig
from repro.core.metrics import (RunResult, ThreadResult, arithmetic_mean,
                                mean_smt_efficiency, smt_efficiency)
from repro.memory.hierarchy import HierarchyConfig
from repro.pipeline.config import CoreConfig


class TestSmtEfficiency:
    def result(self):
        return RunResult(kind="srt", cycles=1000, threads=[
            ThreadResult("a", retired=1000, cycles=1000),   # IPC 1.0
            ThreadResult("b", retired=500, cycles=1000),    # IPC 0.5
        ])

    def test_per_thread_efficiency(self):
        eff = smt_efficiency(self.result(), {"a": 2.0, "b": 1.0})
        assert eff == {"a": 0.5, "b": 0.5}

    def test_mean_is_weighted_speedup(self):
        mean = mean_smt_efficiency(self.result(), {"a": 2.0, "b": 0.5})
        assert mean == pytest.approx((0.5 + 1.0) / 2)

    def test_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            smt_efficiency(self.result(), {"a": 2.0})

    def test_ipc_of(self):
        result = self.result()
        assert result.ipc_of("a") == 1.0
        with pytest.raises(KeyError):
            result.ipc_of("zzz")

    def test_total_ipc(self):
        assert self.result().total_ipc == 1.5

    def test_arithmetic_mean_empty(self):
        assert arithmetic_mean([]) == 0.0


class TestTable1Parameters:
    """The default configuration must be the paper's Table 1 machine."""

    def test_ibox(self):
        config = CoreConfig()
        assert config.fetch_chunks_per_cycle == 2
        assert config.chunk_size == 8
        assert config.line_predictor_entries == 28 * 1024

    def test_qbox(self):
        config = CoreConfig()
        assert config.iq_entries == 128
        assert config.issue_width == 8

    def test_registers(self):
        config = CoreConfig()
        assert config.physical_registers == 512
        assert config.num_thread_contexts == 4
        # 256 architectural (64 x 4 threads) leaves 256 for renaming.

    def test_mbox(self):
        config = CoreConfig()
        assert config.load_queue_entries == 64
        assert config.store_queue_entries == 64
        assert config.max_load_issue == 3
        assert config.max_store_issue == 2
        assert config.max_mem_issue == 4

    def test_pipeline_latencies_figure2(self):
        config = CoreConfig()
        assert config.ibox_latency == 4
        assert config.pbox_latency == 2
        assert config.qbox_latency == 4
        assert config.rbox_latency == 4
        assert config.mbox_latency == 2

    def test_memory_system(self):
        config = HierarchyConfig()
        assert config.l2_size == 3 * 1024 * 1024
        assert config.l2_assoc == 8
        assert config.memory_channels == 10

    def test_store_sets_size(self):
        assert CoreConfig().store_sets_entries == 4096

    def test_rmt_latencies_section63(self):
        config = MachineConfig()
        assert config.srt_line_forward_latency == 4
        assert config.srt_load_forward_latency == 2
        assert config.crt_cross_latency == 4
        assert config.checker_latency == 8

    def test_invalid_iq_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(iq_entries=127)


class TestMachineFactory:
    def test_unknown_kind_rejected(self):
        from repro.core.machine import make_machine
        from repro.isa.generator import generate_benchmark

        with pytest.raises(ValueError, match="unknown machine kind"):
            make_machine("quantum", MachineConfig(),
                         [generate_benchmark("gcc")])

    def test_all_kinds_constructible(self):
        from repro.core.machine import make_machine
        from repro.isa.generator import generate_benchmark

        program = generate_benchmark("gcc")
        for kind in ("base", "base2", "srt", "lockstep", "crt"):
            machine = make_machine(kind, MachineConfig(), [program])
            assert machine.kind in ("base", "srt", "lockstep", "crt")

    def test_duplicate_program_names_rejected(self):
        from repro.core.machine import BaseMachine
        from repro.isa.generator import generate_benchmark

        program = generate_benchmark("gcc")
        with pytest.raises(ValueError, match="duplicate"):
            BaseMachine(MachineConfig(), [program, program])
