"""Unit tests for the architectural executor (the ISA's golden model)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.executor import (FunctionalExecutor, align_word, alu_result,
                                branch_taken, merge_partial_store)
from repro.isa.instructions import Instruction, Op
from repro.util.bits import MASK64, to_unsigned

U64 = st.integers(min_value=0, max_value=MASK64)


def run_asm(source, max_instructions=10_000):
    executor = FunctionalExecutor(assemble(source))
    executor.run(max_instructions)
    return executor


class TestAluSemantics:
    @given(U64, U64)
    def test_add_wraps(self, a, b):
        instr = Instruction(Op.ADD, rd=1, ra=2, rb=3)
        assert alu_result(instr, a, b) == (a + b) & MASK64

    @given(U64, U64)
    def test_sub_wraps(self, a, b):
        instr = Instruction(Op.SUB, rd=1, ra=2, rb=3)
        assert alu_result(instr, a, b) == (a - b) & MASK64

    def test_cmplt_is_signed(self):
        instr = Instruction(Op.CMPLT, rd=1, ra=2, rb=3)
        assert alu_result(instr, to_unsigned(-1), 0) == 1
        assert alu_result(instr, 0, to_unsigned(-1)) == 0

    @given(U64, st.integers(min_value=0, max_value=200))
    def test_shifts_use_low_six_bits(self, a, sh):
        shl = Instruction(Op.SHL, rd=1, ra=2, rb=3)
        shr = Instruction(Op.SHR, rd=1, ra=2, rb=3)
        assert alu_result(shl, a, sh) == (a << (sh & 63)) & MASK64
        assert alu_result(shr, a, sh) == a >> (sh & 63)

    def test_fdiv_never_divides_by_zero(self):
        instr = Instruction(Op.FDIV, rd=1, ra=2, rb=3)
        assert alu_result(instr, 10, 0) == 10  # divisor forced odd: 0|1 == 1

    @given(U64, U64, U64)
    def test_fma_reads_old_dest(self, a, b, c):
        instr = Instruction(Op.FMA, rd=1, ra=2, rb=3)
        assert alu_result(instr, a, b, c) == (a * b + c) & MASK64

    def test_alu_result_rejects_control(self):
        with pytest.raises(ValueError):
            alu_result(Instruction(Op.BR, target=0), 0, 0)


class TestBranchSemantics:
    def test_beqz_bnez(self):
        beqz = Instruction(Op.BEQZ, ra=1, target=0)
        bnez = Instruction(Op.BNEZ, ra=1, target=0)
        assert branch_taken(beqz, 0) and not branch_taken(beqz, 7)
        assert branch_taken(bnez, 7) and not branch_taken(bnez, 0)

    def test_unconditionals_always_taken(self):
        assert branch_taken(Instruction(Op.BR, target=0), 0)
        assert branch_taken(Instruction(Op.CALL, rd=1, target=0), 0)
        assert branch_taken(Instruction(Op.RET, ra=1), 5)


class TestAlignAndMerge:
    @given(U64)
    def test_align_word_clears_low_bits(self, addr):
        assert align_word(addr) % 8 == 0
        assert align_word(addr) <= addr

    @given(U64, U64)
    def test_merge_low_half(self, old, value):
        merged = merge_partial_store(0x1000, old, value)
        assert merged & 0xFFFF_FFFF == value & 0xFFFF_FFFF
        assert merged >> 32 == old >> 32

    @given(U64, U64)
    def test_merge_high_half(self, old, value):
        merged = merge_partial_store(0x1004, old, value)
        assert merged >> 32 == value & 0xFFFF_FFFF
        assert merged & 0xFFFF_FFFF == old & 0xFFFF_FFFF


class TestProgramExecution:
    def test_counted_loop(self):
        executor = run_asm("""
            ldi r1, 5
            ldi r2, 0
        loop:
            addi r2, r2, 3
            addi r1, r1, -1
            bnez r1, loop
            halt
        """)
        assert executor.state.read_reg(2) == 15
        assert executor.state.halted

    def test_memory_roundtrip(self):
        executor = run_asm("""
            ldi r1, 0x2000
            ldi r2, 77
            st r1, 0, r2
            ld r3, r1, 0
            halt
        """)
        assert executor.state.read_reg(3) == 77
        assert executor.state.read_mem(0x2000) == 77

    def test_partial_store_merges_halves(self):
        executor = run_asm("""
            .data 0x2000 0xAAAAAAAABBBBBBBB
            ldi r1, 0x2000
            ldi r2, 0x11111111
            sth r1, 4, r2       ; high half
            ld r3, r1, 0
            halt
        """)
        assert executor.state.read_reg(3) == 0x11111111_BBBBBBBB

    def test_call_and_return(self):
        executor = run_asm("""
            ldi r1, 1
            call r62, double
            call r62, double
            halt
        double:
            add r1, r1, r1
            ret r62
        """)
        assert executor.state.read_reg(1) == 4

    def test_r0_is_hardwired_zero(self):
        executor = run_asm("""
            ldi r0, 99
            add r1, r0, r0
            halt
        """)
        assert executor.state.read_reg(0) == 0
        assert executor.state.read_reg(1) == 0

    def test_halt_stops_and_further_step_raises(self):
        executor = run_asm("halt")
        assert executor.state.halted
        with pytest.raises(RuntimeError, match="halted"):
            executor.step()

    def test_step_results_record_loads_and_stores(self):
        executor = FunctionalExecutor(assemble("""
            ldi r1, 0x2000
            ldi r2, 5
            st r1, 0, r2
            ld r3, r1, 0
            halt
        """))
        results = executor.run(10)
        assert results[2].store == (0x2000, 5)
        assert results[3].load == (0x2000, 5)

    def test_unaligned_access_is_word_aligned(self):
        executor = run_asm("""
            ldi r1, 0x2003
            ldi r2, 9
            st r1, 0, r2
            ld r3, r1, 4    ; 0x2007 aligns to 0x2000
            halt
        """)
        assert executor.state.read_reg(3) == 9

    def test_retired_count(self):
        executor = FunctionalExecutor(assemble("nop\nnop\nhalt"))
        executor.run(100)
        assert executor.retired == 3
