"""Tests for the experiment harness (runner, drivers, reporting)."""

import pytest

from repro.harness import (Runner, fig6_srt_one_thread, fig7_psr,
                           fig9_store_lifetime, line_predictor_rates,
                           render_table)
from repro.harness.experiments import ExperimentResult


@pytest.fixture(scope="module")
def runner():
    return Runner(instructions=400, warmup=1500)


class TestRunner:
    def test_program_caching(self, runner):
        assert runner.program("gcc") is runner.program("gcc")

    def test_duplicate_names_get_copies(self, runner):
        programs = runner.programs(["gcc", "gcc"])
        assert programs[0].name != programs[1].name
        assert programs[0].instructions != programs[1].instructions

    def test_baseline_cached(self, runner):
        first = runner.baseline_ipc("m88ksim")
        second = runner.baseline_ipc("m88ksim")
        assert first == second > 0

    def test_variant_config_does_not_mutate(self, runner):
        variant = runner.variant_config(store_comparison=False)
        assert variant.store_comparison is False
        assert runner.config.store_comparison is True

    def test_variant_rejects_unknown_field(self, runner):
        with pytest.raises(AttributeError):
            runner.variant_config(warp_drive=True)

    def test_efficiency(self, runner):
        result = runner.run("srt", ["m88ksim"])
        eff = runner.efficiency(result)
        assert 0 < eff["m88ksim"] <= 1.2


class TestExperimentResult:
    def test_mean_and_summary(self):
        result = ExperimentResult("x", "desc", series=["a"])
        result.add_row("one", {"a": 1.0})
        result.add_row("two", {"a": 3.0})
        result.finish()
        assert result.summary["mean.a"] == 2.0

    def test_render_table(self):
        result = ExperimentResult("x", "desc", series=["a", "b"])
        result.add_row("row", {"a": 0.5, "b": 7})
        result.finish()
        text = render_table(result)
        assert "row" in text and "0.500" in text and "desc" in text
        assert "arith.mean" in text


class TestDrivers:
    def test_fig6_shape(self, runner):
        result = fig6_srt_one_thread(runner, benchmarks=["m88ksim"])
        row = result.rows["m88ksim"]
        assert set(row) == {"base2", "srt", "srt_ptsq", "srt_nosc"}
        assert all(0 < v <= 1.25 for v in row.values())

    def test_fig7_shape(self, runner):
        result = fig7_psr(runner, benchmarks=["m88ksim"])
        row = result.rows["m88ksim"]
        assert row["psr"] < row["no_psr"]

    def test_fig9_lifetime(self, runner):
        result = fig9_store_lifetime(runner, benchmarks=["m88ksim"])
        row = result.rows["m88ksim"]
        assert row["srt"] > row["base"]
        assert row["delta"] == pytest.approx(row["srt"] - row["base"])

    def test_line_predictor_rates(self, runner):
        result = line_predictor_rates(runner, benchmarks=["m88ksim"])
        row = result.rows["m88ksim"]
        assert 0 <= row["base_rate"] < 1
        assert row["trailing_misfetches"] == 0


class TestRenderComparison:
    def test_simple_pairs(self):
        from repro.harness.reporting import render_comparison

        text = render_comparison("title", [("alpha", 1.0), ("b", 0.25)])
        lines = text.splitlines()
        assert lines[0] == "# title"
        assert "alpha  1.000" in lines[1]
        assert lines[2].startswith("b")
