"""Sphere-of-replication accounting across whole machine runs."""

from repro.core.config import MachineConfig
from repro.core.machine import make_machine
from repro.isa.generator import generate_benchmark


def run_pair(kind="srt", name="vortex", instructions=500, config=None):
    machine = make_machine(kind, config or MachineConfig(),
                           [generate_benchmark(name)])
    machine.run(max_instructions=instructions, warmup=2000)
    return machine, machine.controller.pairs[0]


class TestSphereAccounting:
    def test_every_drained_store_was_compared_first(self):
        """The core output-comparison invariant: nothing leaves the
        sphere unchecked."""
        machine, pair = run_pair()
        assert pair.sphere.outputs_forwarded > 0
        assert (pair.comparator.stats.comparisons
                >= pair.sphere.outputs_forwarded)

    def test_inputs_replicated_equal_lvq_writes(self):
        machine, pair = run_pair(name="swim")
        assert pair.sphere.inputs_replicated == pair.lvq.stats.writes
        assert pair.sphere.inputs_replicated > 0

    def test_no_mismatches_in_fault_free_run(self):
        machine, pair = run_pair(name="gcc")
        assert pair.sphere.mismatches == 0

    def test_crt_sphere_spans_cores(self):
        machine, pair = run_pair(kind="crt", name="gcc")
        assert pair.leading.core is not pair.trailing.core
        assert pair.sphere.outputs_compared > 0

    def test_nosc_forwards_without_comparison(self):
        """Disabling store comparison removes the output check entirely —
        the sphere exists in name only (the paper's upper bound)."""
        config = MachineConfig(store_comparison=False)
        machine, pair = run_pair(config=config)
        assert pair.comparator.stats.comparisons == 0
        assert pair.sphere.outputs_compared == 0

    def test_replication_counts_scale_with_run_length(self):
        _, short_pair = run_pair(name="swim", instructions=300)
        _, long_pair = run_pair(name="swim", instructions=900)
        assert (long_pair.sphere.inputs_replicated
                > short_pair.sphere.inputs_replicated)
