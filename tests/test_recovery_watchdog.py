"""Forward-progress watchdog: classification unit tests + wedged runs."""

import logging

from repro.core.config import MachineConfig
from repro.core.machine import make_machine
from repro.core.metrics import Termination
from repro.isa.generator import generate_benchmark
from repro.pipeline.hooks import CoreHooks
from repro.recovery.watchdog import Fingerprint, HangReport, ProgressWatchdog


def fp(cycle, retired, activity=0):
    """Synthetic fingerprint: one measured thread, one activity counter."""
    return Fingerprint(cycle=cycle, measured={"t": retired},
                       activity={"core0.retired": activity})


class TestClassify:
    """Pure verdict function over fingerprint sequences (no machine)."""

    def test_short_history_is_undecided(self):
        assert ProgressWatchdog.classify([fp(0, 0)], window=100) is None

    def test_progress_inside_window_is_healthy(self):
        history = [fp(0, 10), fp(100, 20), fp(200, 30)]
        assert ProgressWatchdog.classify(history, window=100) is None

    def test_frozen_everything_is_hung(self):
        history = [fp(0, 10, 50), fp(100, 10, 50), fp(200, 10, 50)]
        assert ProgressWatchdog.classify(history, window=150) is \
            Termination.HUNG

    def test_churn_without_retirement_is_livelock(self):
        history = [fp(0, 10, 50), fp(100, 10, 90), fp(200, 10, 130)]
        assert ProgressWatchdog.classify(history, window=150) is \
            Termination.LIVELOCK

    def test_window_not_yet_expired(self):
        history = [fp(0, 10), fp(64, 10)]
        assert ProgressWatchdog.classify(history, window=4096) is None


class RetirementJammer(CoreHooks):
    """Veto every load retirement past ``wedge_cycle``: the machine keeps
    fetching and executing but can never commit another load."""

    def __init__(self, wedge_cycle):
        self.wedge_cycle = wedge_cycle

    def can_retire_load(self, core, thread, uop, now):
        return now < self.wedge_cycle


class TestWedgedRun:
    def test_jammed_machine_gets_a_verdict(self, caplog):
        program = generate_benchmark("gcc")
        machine = make_machine(
            "base", MachineConfig(watchdog_window=1024), [program])
        machine.cores[0].hooks = RetirementJammer(100)
        with caplog.at_level(logging.WARNING, logger="repro.run"):
            result = machine.run(max_instructions=2000)
        assert result.termination.is_wedged
        assert not result.completed
        # The verdict came from the watchdog, well before the cycle cap.
        assert result.cycles < 2000 * 60
        # Full forensics live in the result ...
        report = result.hang_report
        assert report is not None
        assert report["verdict"] == result.termination.value
        assert report["fingerprint"]["blockers"]
        assert report["window"] == 1024
        # ... and exactly one warning line reached the log.
        warnings = [r for r in caplog.records if r.name == "repro.run"]
        assert len(warnings) == 1
        assert (result.termination.value.upper()
                in warnings[0].getMessage())

    def test_jammed_run_is_livelock_not_deadlock(self):
        """The jammer leaves the front end spinning: speculative activity
        keeps moving while measured retirement is frozen."""
        program = generate_benchmark("gcc")
        machine = make_machine(
            "base", MachineConfig(watchdog_window=1024), [program])
        machine.cores[0].hooks = RetirementJammer(100)
        result = machine.run(max_instructions=2000)
        assert result.termination is Termination.LIVELOCK
        assert result.hang_report["activity_delta"]

    def test_healthy_run_never_alarms(self):
        program = generate_benchmark("gcc")
        machine = make_machine(
            "base", MachineConfig(watchdog_window=1024), [program])
        result = machine.run(max_instructions=800)
        assert result.termination is Termination.DONE
        assert machine.watchdog is not None
        assert machine.watchdog.verdict is None
        assert result.hang_report is None

    def test_srt_machine_is_watched_too(self):
        program = generate_benchmark("gcc")
        machine = make_machine(
            "srt", MachineConfig(watchdog_window=1024), [program])
        result = machine.run(max_instructions=400)
        assert machine.watchdog is not None
        assert result.termination is Termination.DONE


class TestHangReport:
    def test_format_mentions_verdict_and_blockers(self):
        report = HangReport(
            verdict="hung", cycle=5000, window=4096, stalled_since=900,
            fingerprint={"blockers": {"core0.t0(single)": "seq=9 pc=12"},
                         "queues": {"core0.t0(single).rob": 64},
                         "stalls": {"core0.t0(single).retire_stalls": 99}},
            activity_delta={})
        text = report.format()
        assert "HUNG at cycle 5000" in text
        assert "true deadlock" in text
        assert "seq=9 pc=12" in text
        assert "retire_stalls" in text

    def test_round_trip_dict(self):
        report = HangReport(verdict="livelock", cycle=1, window=2,
                            stalled_since=0, fingerprint={},
                            activity_delta={"x": 3})
        data = report.to_dict()
        assert data["verdict"] == "livelock"
        assert data["activity_delta"] == {"x": 3}
