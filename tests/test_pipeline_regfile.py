"""Unit tests for the physical register file and renaming."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.regfile import (OutOfPhysicalRegisters,
                                    PhysicalRegisterFile, RenameMap)


class TestPhysicalRegisterFile:
    def test_allocate_release_roundtrip(self):
        regfile = PhysicalRegisterFile(8)
        reg = regfile.allocate()
        assert not regfile.is_ready(reg)
        regfile.write(reg, 42)
        assert regfile.is_ready(reg)
        assert regfile.read(reg) == 42
        regfile.release(reg)
        assert regfile.free_count == 8

    def test_exhaustion_raises(self):
        regfile = PhysicalRegisterFile(2)
        regfile.allocate()
        regfile.allocate()
        with pytest.raises(OutOfPhysicalRegisters):
            regfile.allocate()

    def test_free_count(self):
        regfile = PhysicalRegisterFile(4)
        regfile.allocate()
        assert regfile.free_count == 3


class TestRenameMap:
    def test_init_allocates_arch_regs(self):
        regfile = PhysicalRegisterFile(128)
        RenameMap(regfile)
        assert regfile.free_count == 64

    def test_rename_and_lookup(self):
        regfile = PhysicalRegisterFile(128)
        rmap = RenameMap(regfile)
        old = rmap.lookup(5)
        new, prev = rmap.rename_dest(5)
        assert prev == old
        assert rmap.lookup(5) == new

    def test_zero_reg_never_renamed(self):
        regfile = PhysicalRegisterFile(128)
        rmap = RenameMap(regfile)
        with pytest.raises(ValueError):
            rmap.rename_dest(0)

    def test_undo_rename_restores(self):
        regfile = PhysicalRegisterFile(128)
        rmap = RenameMap(regfile)
        old = rmap.lookup(7)
        new, prev = rmap.rename_dest(7)
        rmap.undo_rename(7, new, prev)
        assert rmap.lookup(7) == old
        assert regfile.free_count == 64  # the new reg went back

    def test_undo_out_of_order_asserts(self):
        regfile = PhysicalRegisterFile(128)
        rmap = RenameMap(regfile)
        new1, prev1 = rmap.rename_dest(3)
        new2, prev2 = rmap.rename_dest(3)
        with pytest.raises(AssertionError):
            rmap.undo_rename(3, new1, prev1)  # must unwind newest first

    def test_architectural_value(self):
        regfile = PhysicalRegisterFile(128)
        rmap = RenameMap(regfile)
        new, _ = rmap.rename_dest(9)
        regfile.write(new, 1234)
        assert rmap.architectural_value(9) == 1234
        assert rmap.architectural_value(0) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=63), min_size=1,
                    max_size=40))
    def test_rename_undo_stack_property(self, arch_regs):
        """Renaming a sequence then undoing it all restores the map."""
        regfile = PhysicalRegisterFile(256)
        rmap = RenameMap(regfile)
        initial = list(rmap.map)
        free0 = regfile.free_count
        stack = []
        for reg in arch_regs:
            new, prev = rmap.rename_dest(reg)
            stack.append((reg, new, prev))
        for reg, new, prev in reversed(stack):
            rmap.undo_rename(reg, new, prev)
        assert rmap.map == initial
        assert regfile.free_count == free0
