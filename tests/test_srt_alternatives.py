"""Tests for the paper's alternative SRT mechanisms: slack fetch and
predictor-driven trailing fetch (Sections 2.3 and 4.4)."""

from repro.core.config import MachineConfig
from repro.core.machine import make_machine
from repro.isa.executor import FunctionalExecutor
from repro.isa.generator import generate_benchmark


def run_srt(config, name="gcc", instructions=600, warmup=2500):
    program = generate_benchmark(name)
    machine = make_machine("srt", config, [program])
    result = machine.run(max_instructions=instructions, warmup=warmup,
                         max_cycles=150_000)
    return machine, result, program


class TestPredictorModeTrailingFetch:
    def test_runs_correctly_without_lpq(self):
        config = MachineConfig(trailing_fetch_mode="predictors")
        machine, result, _ = run_srt(config)
        assert result.threads[0].retired == 600
        assert result.faults_detected == 0
        pair = machine.controller.pairs[0]
        assert pair.lpq.stats.chunks_pushed == 0

    def test_stores_still_verified(self):
        config = MachineConfig(trailing_fetch_mode="predictors")
        machine, result, _ = run_srt(config, name="vortex")
        pair = machine.controller.pairs[0]
        assert pair.comparator.stats.comparisons > 0
        assert pair.comparator.stats.mismatches == 0

    def test_trailing_misfetches_reappear(self):
        """The LPQ's whole point: perfect trailing line predictions."""
        lpq_machine, _, _ = run_srt(MachineConfig(), name="gcc",
                                    instructions=1000)
        pred_machine, _, _ = run_srt(
            MachineConfig(trailing_fetch_mode="predictors"), name="gcc",
            instructions=1000)
        lpq_trailing = lpq_machine.cores[0].threads[1]
        pred_trailing = pred_machine.cores[0].threads[1]
        assert lpq_trailing.stats.misfetches == 0
        assert pred_trailing.stats.misfetches > 0

    def test_trailing_stream_still_matches(self):
        """Even fetching through shared predictors (with squashes), the
        trailing thread's retired stream matches the reference."""
        config = MachineConfig(trailing_fetch_mode="predictors")
        program = generate_benchmark("li")
        machine = make_machine("srt", config, [program])
        core = machine.cores[0]
        core.retire_trace[1] = []
        machine.run(max_instructions=500, warmup=2000)
        trace = core.retire_trace[1]
        reference = FunctionalExecutor(program).run(len(trace))
        for uop, ref in zip(trace, reference):
            assert uop.pc == ref.pc
            if ref.load is not None:
                assert uop.result == ref.load[1]

    def test_crt_supports_predictor_mode(self):
        config = MachineConfig(trailing_fetch_mode="predictors")
        program = generate_benchmark("gcc")
        machine = make_machine("crt", config, [program])
        result = machine.run(max_instructions=400, warmup=2000)
        assert result.threads[0].retired == 400
        assert result.faults_detected == 0


class TestSlackFetch:
    def test_explicit_slack_enforced(self):
        config = MachineConfig(srt_slack_instructions=32)
        machine, result, _ = run_srt(config, name="swim")
        assert result.threads[0].retired == 600
        assert result.faults_detected == 0

    def test_excessive_slack_clamped_not_deadlocked(self):
        """Slack beyond what the LVQ can buffer must be clamped."""
        config = MachineConfig(srt_slack_instructions=100_000)
        machine, result, _ = run_srt(config, name="swim",
                                     instructions=400)
        assert result.threads[0].retired == 400

    def test_slack_unnecessary_with_lpq(self):
        """Section 4.4.1: the LPQ's retirement gating already provides
        the slack-fetch benefit; explicit slack changes little."""
        no_slack = run_srt(MachineConfig(), name="swim",
                           instructions=800)[1]
        slack = run_srt(MachineConfig(srt_slack_instructions=16),
                        name="swim", instructions=800)[1]
        ratio = slack.threads[0].ipc / no_slack.threads[0].ipc
        assert 0.9 < ratio < 1.15
