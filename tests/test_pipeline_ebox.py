"""Unit tests for the functional-unit pools."""

from repro.isa.instructions import FuClass
from repro.pipeline.ebox import POOL_SIZES, FunctionalUnitPools


class TestPoolGeometry:
    def test_table1_pool_sizes(self):
        assert POOL_SIZES[FuClass.INT] == 8
        assert POOL_SIZES[FuClass.LOGIC] == 8
        assert POOL_SIZES[FuClass.MEM] == 4
        assert POOL_SIZES[FuClass.FP] == 4

    def test_halves_partition_units(self):
        pools = FunctionalUnitPools()
        lower = set(pools.units_for_half(FuClass.INT, 0))
        upper = set(pools.units_for_half(FuClass.INT, 1))
        assert lower == {0, 1, 2, 3}
        assert upper == {4, 5, 6, 7}
        assert not lower & upper


class TestAcquire:
    def test_acquire_returns_distinct_units(self):
        pools = FunctionalUnitPools()
        used = {pools.acquire(FuClass.FP, 0, now=0) for _ in range(2)}
        assert len(used) == 2

    def test_exhaustion_stalls(self):
        pools = FunctionalUnitPools()
        for _ in range(2):  # FP has 2 units per half
            assert pools.acquire(FuClass.FP, 0, now=0) is not None
        assert pools.acquire(FuClass.FP, 0, now=0) is None
        assert pools.stats.structural_stalls == 1

    def test_other_half_unaffected(self):
        pools = FunctionalUnitPools()
        for _ in range(2):
            pools.acquire(FuClass.FP, 0, now=0)
        assert pools.acquire(FuClass.FP, 1, now=0) is not None

    def test_units_free_next_cycle(self):
        pools = FunctionalUnitPools()
        for _ in range(2):
            pools.acquire(FuClass.FP, 0, now=0)
        assert pools.acquire(FuClass.FP, 0, now=1) is not None

    def test_busy_cycles_respected(self):
        pools = FunctionalUnitPools()
        pools.acquire(FuClass.MEM, 0, now=0, busy_cycles=5)
        pools.acquire(FuClass.MEM, 0, now=0, busy_cycles=5)
        assert not pools.is_free(FuClass.MEM, 0, now=4)
        assert pools.is_free(FuClass.MEM, 0, now=5)

    def test_per_unit_issue_stats(self):
        pools = FunctionalUnitPools()
        fu = pools.acquire(FuClass.INT, 0, now=0)
        assert pools.stats.per_unit_issues[fu] == 1
