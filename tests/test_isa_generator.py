"""Tests for the synthetic benchmark generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.executor import FunctionalExecutor
from repro.isa.generator import generate_benchmark, generate_program
from repro.isa.profiles import SPEC95_NAMES, SPEC95_PROFILES, get_profile


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = generate_benchmark("gcc", seed=3)
        b = generate_benchmark("gcc", seed=3)
        assert a.instructions == b.instructions
        assert a.initial_memory == b.initial_memory

    def test_different_seed_different_program(self):
        a = generate_benchmark("gcc", seed=0)
        b = generate_benchmark("gcc", seed=1)
        assert a.instructions != b.instructions


class TestStructuralValidity:
    @pytest.mark.parametrize("name", SPEC95_NAMES)
    def test_all_profiles_generate_valid_programs(self, name):
        program = generate_benchmark(name)
        # Program.__post_init__ validates targets; also check density sanity.
        assert len(program) > 100
        assert program.static_branch_count > 0
        assert program.static_load_count > 0
        assert program.static_store_count > 0

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_profile("doom")


class TestExecutionBehaviour:
    @pytest.mark.parametrize("name", SPEC95_NAMES)
    def test_runs_without_trapping(self, name):
        """Programs must keep making progress over a wide code footprint."""
        program = generate_benchmark(name)
        executor = FunctionalExecutor(program)
        results = executor.run(8000)
        assert len(results) == 8000  # never halts
        covered = {r.pc for r in results}
        # A trapped program spins over a handful of PCs.
        assert len(covered) > 50

    def test_loops_respect_trip_counts(self):
        """Backward conditional branches must eventually fall through."""
        program = generate_benchmark("swim")
        executor = FunctionalExecutor(program)
        results = executor.run(20000)
        backward_conditionals = [
            r for r in results
            if r.instr.is_conditional and r.instr.target is not None
            and r.instr.target < r.pc
        ]
        assert backward_conditionals
        fallthroughs = sum(1 for r in backward_conditionals if not r.taken)
        assert fallthroughs > 0

    def test_memory_mix_close_to_profile(self):
        profile = get_profile("vortex")
        program = generate_program(profile, seed=0)
        results = FunctionalExecutor(program).run(20000)
        n = len(results)
        load_rate = sum(1 for r in results if r.load) / n
        store_rate = sum(1 for r in results if r.store) / n
        # Rates land within a loose band of the requested fractions
        # (control-flow and address-arithmetic overhead dilutes them).
        assert 0.3 * profile.load_frac < load_rate <= profile.load_frac + 0.1
        assert 0.2 * profile.store_frac < store_rate <= profile.store_frac + 0.1

    def test_random_branches_are_balanced(self):
        """LCG-driven 50/50 branches should actually be near 50/50."""
        program = generate_benchmark("go")
        results = FunctionalExecutor(program).run(30000)
        forward_conditionals = [
            r for r in results
            if r.instr.is_conditional and r.instr.op.name == "BNEZ"
            and r.instr.target is not None and r.instr.target > r.pc
        ]
        assert len(forward_conditionals) > 60
        taken_rate = (sum(1 for r in forward_conditionals if r.taken)
                      / len(forward_conditionals))
        assert 0.2 < taken_rate < 0.8

    def test_indirect_jumps_hit_table_targets(self):
        program = generate_benchmark("perl")
        results = FunctionalExecutor(program).run(30000)
        jumps = [r for r in results if r.instr.op.name == "JMP"]
        if jumps:  # profile-dependent, but targets must always be valid
            for r in jumps:
                assert program.in_range(r.next_pc)

    def test_working_set_respected(self):
        """All data addresses stay inside the profile's working set."""
        from repro.isa.generator import DATA_BASE, TABLE_BASE

        profile = get_profile("compress")
        program = generate_program(profile, seed=0)
        results = FunctionalExecutor(program).run(20000)
        ws_bytes = profile.working_set_words * 8
        slack = 8 * 64  # block-local immediate offsets
        for r in results:
            for access in (r.load, r.store):
                if access is None:
                    continue
                addr = access[0]
                in_data = DATA_BASE <= addr < DATA_BASE + ws_bytes + slack
                in_table = TABLE_BASE <= addr < TABLE_BASE + 8 * 64
                assert in_data or in_table, hex(addr)


class TestSeedVariation:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_any_seed_generates_runnable_program(self, seed):
        program = generate_benchmark("li", seed=seed)
        results = FunctionalExecutor(program).run(2000)
        assert len(results) == 2000
