"""Unit tests for the bounded FIFO."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.fifo import BoundedFifo, FifoFullError


class TestBoundedFifo:
    def test_fifo_order(self):
        fifo = BoundedFifo(3)
        fifo.push(1)
        fifo.push(2)
        fifo.push(3)
        assert [fifo.pop(), fifo.pop(), fifo.pop()] == [1, 2, 3]

    def test_push_full_raises(self):
        fifo = BoundedFifo(1)
        fifo.push("a")
        with pytest.raises(FifoFullError):
            fifo.push("b")

    def test_try_push_reports_capacity(self):
        fifo = BoundedFifo(1)
        assert fifo.try_push("a") is True
        assert fifo.try_push("b") is False
        assert len(fifo) == 1

    def test_free_and_full(self):
        fifo = BoundedFifo(2)
        assert fifo.free == 2 and not fifo.full
        fifo.push(0)
        assert fifo.free == 1
        fifo.push(0)
        assert fifo.full

    def test_peek_does_not_remove(self):
        fifo = BoundedFifo(2)
        fifo.push(7)
        assert fifo.peek() == 7
        assert len(fifo) == 1

    def test_peek_empty_is_none(self):
        assert BoundedFifo(1).peek() is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedFifo(0)

    def test_remove_if(self):
        fifo = BoundedFifo(5)
        for i in range(5):
            fifo.push(i)
        removed = fifo.remove_if(lambda x: x % 2 == 0)
        assert removed == 3
        assert list(fifo) == [1, 3]

    def test_clear(self):
        fifo = BoundedFifo(2)
        fifo.push(1)
        fifo.clear()
        assert len(fifo) == 0 and not fifo

    @given(st.lists(st.integers(), max_size=20))
    def test_order_preserved(self, items):
        fifo = BoundedFifo(max(len(items), 1))
        for item in items:
            fifo.push(item)
        assert [fifo.pop() for _ in items] == items
