"""CLI surface of `python -m repro analyze` and `python -m repro lint`."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures" / "asm"


def fixture(name):
    return str(FIXTURES / f"{name}.asm")


class TestAnalyzeCli:
    def test_clean_file_exits_zero(self, capsys):
        assert main(["analyze", fixture("clean"), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_error_fixture_exits_nonzero(self, capsys):
        assert main(["analyze", fixture("uninit_read")]) == 1
        out = capsys.readouterr().out
        assert "A1-uninit-read" in out

    def test_warning_fixture_gated_only_by_strict(self, capsys):
        assert main(["analyze", fixture("dead_store")]) == 0
        assert main(["analyze", fixture("dead_store"), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "A3-dead-store" in out

    def test_json_format(self, capsys):
        assert main(["analyze", fixture("oob_store"),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        (program,) = payload["programs"]
        assert program["by_rule"] == {"A5-oob-store": 1}
        (finding,) = program["findings"]
        assert finding["severity"] == "error" and finding["pc"] == 2

    def test_select_rules(self, capsys):
        assert main(["analyze", fixture("falls_off"),
                     "--select", "A3"]) == 0  # A3 is a warning
        out = capsys.readouterr().out
        assert "A8-falls-off-end" not in out

    def test_generated_profile_clean(self, capsys):
        assert main(["analyze", "--generated", "compress"]) == 0
        out = capsys.readouterr().out
        assert "1/1 program(s) clean" in out

    def test_generated_unknown_profile(self, capsys):
        assert main(["analyze", "--generated", "nope"]) == 2
        assert "unknown profile" in capsys.readouterr().err

    def test_missing_input_is_usage_error(self, capsys):
        assert main(["analyze"]) == 2
        assert "nothing to analyze" in capsys.readouterr().err

    def test_rules_listing(self, capsys):
        assert main(["analyze", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("A1-uninit-read", "A5-oob-store", "A8-falls-off-end"):
            assert rule in out

    def test_multiple_files_mixed(self, capsys):
        assert main(["analyze", fixture("clean"),
                     fixture("uninit_read"), "--quiet"]) == 1
        out = capsys.readouterr().out
        # --quiet hides the clean program's section.
        assert "program 'clean'" not in out
        assert "program 'uninit_read'" in out


class TestLintCli:
    def test_repo_is_strict_clean(self, capsys):
        assert main(["lint", "--strict"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["findings"] == []

    def test_violation_tree(self, tmp_path, capsys):
        bad = tmp_path / "core"
        bad.mkdir()
        (bad / "clock.py").write_text(
            "import time\nnow = time.time()\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "S102" in out

    def test_violation_selected_away(self, tmp_path, capsys):
        bad = tmp_path / "core"
        bad.mkdir()
        (bad / "clock.py").write_text("import random\n")
        assert main(["lint", str(tmp_path), "--select", "S2"]) == 0

    def test_missing_path(self, capsys):
        assert main(["lint", "/nonexistent/tree"]) == 2

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "S101" in out and "suppress" in out


class TestListMentionsAnalysis:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "analyze" in out and "lint" in out
