"""WorkerPool: execution-knob resolution onto the campaign engine."""

from repro.serve.jobs import JobSpec
from repro.serve.pool import WorkerPool

CAMPAIGN = {"kinds": ["srt"], "workloads": ["gcc"],
            "models": ["transient-result"], "injections": 4,
            "instructions": 200, "warmup": 500}


class TestCampaignJobsDefault:
    def test_daemon_default_used_when_jobs_omitted(self, tmp_path):
        """Regression: ``--campaign-jobs`` was dead code — the spec
        default ``jobs=1`` always won, so a daemon started with
        ``--campaign-jobs N`` silently ran campaigns single-process."""
        spec = JobSpec.build("campaign", CAMPAIGN)
        assert spec.params["jobs"] is None  # "let the daemon decide"
        pool = WorkerPool(tmp_path, campaign_jobs=2)
        result = pool.execute(spec)
        assert result["summary"]["jobs"] == 2

    def test_explicit_jobs_overrides_daemon_default(self, tmp_path):
        spec = JobSpec.build("campaign", dict(CAMPAIGN, jobs=1))
        pool = WorkerPool(tmp_path, campaign_jobs=2)
        result = pool.execute(spec)
        assert result["summary"]["jobs"] == 1

    def test_explicit_jobs_keys_differently_from_omitted(self):
        # Execution knobs stay part of the cache key when spelled out.
        omitted = JobSpec.build("campaign", CAMPAIGN)
        explicit = JobSpec.build("campaign", dict(CAMPAIGN, jobs=1))
        assert omitted.cache_key() != explicit.cache_key()
