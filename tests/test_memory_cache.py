"""Unit tests for the set-associative cache and memory controller."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import MemoryController, SetAssociativeCache


def make_cache(size=1024, assoc=2, block=64, hit=1, next_level=None,
               extra=0):
    return SetAssociativeCache("test", size, assoc, block, hit,
                               next_level=next_level, extra_miss_latency=extra)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = make_cache(next_level=MemoryController(latency=50))
        first = cache.access(0x100, now=0)
        assert first > 1  # miss: slower than the hit latency
        assert cache.stats.misses == 1
        second = cache.access(0x100, now=100)
        assert second == 101  # hit latency 1
        assert cache.stats.hits == 1

    def test_same_block_hits(self):
        cache = make_cache()
        cache.access(0x100, now=0)
        cache.access(0x13F, now=10)  # same 64-byte block
        assert cache.stats.hits == 1

    def test_different_block_misses(self):
        cache = make_cache()
        cache.access(0x100, now=0)
        cache.access(0x140, now=10)
        assert cache.stats.misses == 2

    def test_contains(self):
        cache = make_cache()
        assert not cache.contains(0x100)
        cache.access(0x100, now=0)
        assert cache.contains(0x100)

    def test_warm_installs_without_stats(self):
        cache = make_cache()
        cache.warm(0x100)
        assert cache.contains(0x100)
        assert cache.stats.accesses == 0
        assert cache.access(0x100, now=5) == 6  # hit


class TestLru:
    def test_lru_eviction(self):
        # 2-way, 8 sets: three blocks mapping to the same set.
        cache = make_cache(size=1024, assoc=2, block=64)
        s = cache.num_sets
        a, b, c = 0x0, s * 64, 2 * s * 64  # same set index
        cache.access(a, 0)
        cache.access(b, 1)
        cache.access(a, 2)       # touch a: b becomes LRU
        cache.access(c, 3)       # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)

    def test_associativity_respected(self):
        cache = make_cache(size=1024, assoc=2, block=64)
        s = cache.num_sets
        cache.access(0, 0)
        cache.access(s * 64, 1)
        assert cache.contains(0) and cache.contains(s * 64)


class TestMshr:
    def test_concurrent_misses_merge(self):
        cache = make_cache(next_level=MemoryController(latency=50))
        t1 = cache.access(0x100, now=0)
        t2 = cache.access(0x100, now=1)   # hit (block installed), or merged
        assert t2 <= t1

    def test_merge_returns_pending_fill_time(self):
        # Force the merge path: two accesses to the same block address in
        # the same cycle window, second sees the MSHR.
        class SlowLevel:
            def access(self, addr, now, write=False):
                return now + 100

        cache = SetAssociativeCache("t", 1024, 2, 64, 0,
                                    next_level=SlowLevel())
        cache._sets.clear()
        t1 = cache.access(0x100, now=0)
        # Remove the freshly-installed block to simulate a parallel port
        # probing before fill; the MSHR must answer.
        index, tag = cache._index_tag(0x100)
        del cache._sets[index][tag]
        t2 = cache.access(0x120, now=1)   # same block
        assert t2 == t1
        assert cache.stats.mshr_merges == 1


class TestValidation:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("bad", 1000, 3, 64, 1)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("bad", 1024, 2, 48, 1)


class TestCheckerLatency:
    def test_extra_miss_latency_charged(self):
        plain = make_cache(next_level=MemoryController(latency=50))
        checked = make_cache(next_level=MemoryController(latency=50), extra=8)
        t_plain = plain.access(0x100, now=0)
        t_checked = checked.access(0x100, now=0)
        assert t_checked == t_plain + 8

    def test_hits_unaffected_by_checker(self):
        checked = make_cache(extra=8)
        checked.access(0x100, now=0)
        assert checked.access(0x100, now=50) == 51


class TestMemoryController:
    def test_flat_latency(self):
        mem = MemoryController(latency=80, channels=4)
        assert mem.access(0x0, now=0) == 80

    def test_channel_queuing(self):
        mem = MemoryController(latency=80, channels=1, channel_occupancy=4)
        t1 = mem.access(0x0, now=0)
        t2 = mem.access(0x1000, now=0)  # same (only) channel: queued
        assert t2 == t1 + 4

    def test_distinct_channels_parallel(self):
        mem = MemoryController(latency=80, channels=10, channel_occupancy=4)
        t1 = mem.access(0 << 6, now=0)
        t2 = mem.access(1 << 6, now=0)
        assert t1 == t2 == 80


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=50))
    def test_accesses_and_stats_consistent(self, addrs):
        cache = make_cache()
        for i, addr in enumerate(addrs):
            cache.access(addr, now=i * 10)
        assert cache.stats.hits + cache.stats.misses == len(addrs)
        assert 0.0 <= cache.stats.miss_rate <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 30))
    def test_second_access_always_at_least_as_fast(self, addr):
        cache = make_cache(next_level=MemoryController(latency=50))
        t1 = cache.access(addr, now=0)
        t2 = cache.access(addr, now=t1)
        assert t2 - t1 <= t1 - 0
