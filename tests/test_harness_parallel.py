"""Parallel experiment fan-out (--jobs) must reproduce sequential output."""

import pytest

from repro.harness import experiments
from repro.harness.parallel import (default_items, merge_results,
                                    run_experiment_parallel, split_param)
from repro.harness.runner import Runner
from repro.isa.profiles import SPEC95_NAMES

RUNNER_KWARGS = {"instructions": 100, "warmup": 300, "seed": 0}


class TestSplitDetection:
    def test_benchmark_list_drivers_are_splittable(self):
        assert split_param(experiments.fig6_srt_one_thread) == "benchmarks"
        assert split_param(experiments.fig9_store_lifetime) == "benchmarks"
        assert split_param(experiments.fig8_srt_two_threads) == "pairs"
        assert split_param(experiments.fig11_crt_multithread) == "workloads"

    def test_single_workload_sweeps_are_not(self):
        assert split_param(experiments.store_queue_sweep) is None
        assert split_param(experiments.ablation_cross_latency) is None

    def test_default_items(self):
        assert default_items(experiments.fig6_srt_one_thread) \
            == list(SPEC95_NAMES)
        assert default_items(experiments.fig8_srt_two_threads) \
            == experiments.fig8_default_pairs()
        assert default_items(experiments.fig11_crt_multithread) \
            == experiments.fig11_default_workloads()
        assert default_items(experiments.store_queue_sweep) is None


class TestMerge:
    def test_merge_preserves_order_and_recomputes_means(self):
        from repro.harness.experiments import ExperimentResult
        a = ExperimentResult("x", "d", series=["v"])
        a.add_row("one", {"v": 1.0})
        a.finish()
        b = ExperimentResult("x", "d", series=["v"])
        b.add_row("two", {"v": 3.0})
        b.finish()
        b.summary["max.v"] = 3.0
        a.summary["max.v"] = 1.0
        merged = merge_results([a, b])
        assert list(merged.rows) == ["one", "two"]
        assert merged.summary["mean.v"] == pytest.approx(2.0)
        assert merged.summary["max.v"] == 3.0

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_results([])


class TestParallelEquivalence:
    def test_fig9_parallel_matches_sequential(self):
        sequential = experiments.fig9_store_lifetime(
            Runner(**RUNNER_KWARGS), benchmarks=["m88ksim", "ijpeg"])
        # Parallel path over the same subset via explicit slices.
        from repro.harness.parallel import _run_slice
        slices = [_run_slice(("fig9_store_lifetime", RUNNER_KWARGS,
                              "benchmarks", [name]))
                  for name in ("m88ksim", "ijpeg")]
        merged = merge_results(slices)
        assert merged.rows == sequential.rows
        assert merged.summary == sequential.summary

    def test_pool_execution_matches_sequential(self):
        """Full ProcessPoolExecutor path on a down-scaled driver."""
        parallel = run_experiment_parallel("line_predictor_rates",
                                           RUNNER_KWARGS, jobs=2)
        sequential = experiments.line_predictor_rates(Runner(**RUNNER_KWARGS))
        assert parallel.rows == sequential.rows
        assert parallel.summary == sequential.summary

    def test_unsplittable_driver_falls_back(self):
        result = run_experiment_parallel("store_queue_sweep",
                                         RUNNER_KWARGS, jobs=4)
        assert result.rows  # ran sequentially, produced the sweep
