"""Smoke tests: every example script must run end-to-end (scaled down)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv):
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py", ["m88ksim", "400"])
        out = capsys.readouterr().out
        assert "base machine" in out and "SRT machine" in out
        assert "store comparisons" not in out  # sanity: real output text
        assert "faults detected" in out

    def test_custom_program(self, capsys):
        run_example("custom_program.py", [])
        out = capsys.readouterr().out
        assert "checksum" in out
        assert "agreed on every output" in out

    def test_crt_vs_lockstep(self, capsys):
        run_example("crt_vs_lockstep.py", ["m88ksim", "ijpeg", "400"])
        out = capsys.readouterr().out
        assert "Lock0" in out and "Lock8" in out and "CRT" in out
        assert "CRT vs Lock8" in out

    def test_fault_injection_demo(self, capsys):
        run_example("fault_injection_demo.py", ["m88ksim", "4"])
        out = capsys.readouterr().out
        assert "transient single-bit faults" in out
        assert "PSR" in out

    def test_campaign_demo(self, capsys):
        run_example("campaign_demo.py", ["m88ksim", "3"])
        out = capsys.readouterr().out
        assert "simulated kill" in out
        assert "re-ran only" in out
        assert "coverage" in out and "Wilson" in out

    def test_avf_demo(self, capsys):
        # avf_demo exits via sys.exit(main()); 0 means the soundness
        # spot-check against the injection oracle passed.
        with pytest.raises(SystemExit) as excinfo:
            run_example("avf_demo.py", ["200"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "Per-component AVF" in out
        assert "logic-masked" in out and "dead" in out
        assert "soundness holds" in out

    def test_recovery_demo(self, capsys):
        run_example("recovery_demo.py", ["gcc", "800"])
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "unrecoverable" in out
        assert "prefix matches fault-free run" in out
        assert "all three verdicts rendered as designed" in out

    def test_serve_demo(self, capsys):
        run_example("serve_demo.py", ["m88ksim", "3"])
        out = capsys.readouterr().out
        assert "one execution, two answers" in out
        assert "cache_hit=True" in out
        assert "drained cleanly" in out

    def test_chaos_demo(self, capsys):
        run_example("chaos_demo.py", ["6", "2"])
        out = capsys.readouterr().out
        assert "byte-identical to clean run: True" in out
        assert "outcome 'infra-failure'" in out
