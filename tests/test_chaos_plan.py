"""Chaos plans: decision determinism, wire round-trips, validation,
and the controller's rule gating (everything short of killing the
test process)."""

import errno

import pytest

from repro.chaos import (FAULT_KINDS, ChaosController, ChaosPlan,
                         ChaosPlanError, ChaosRule, armed, chaos_point,
                         controller, soak_plan)
from repro.chaos.plan import PRESETS


def crossings():
    """A spread of (site, key, attempt) hook crossings."""
    return [("campaign.worker.task", f"srt/compress/t{i:04d}", a)
            for i in range(40) for a in (0, 1)]


class TestDecisions:
    def test_same_seed_same_schedule(self):
        a = ChaosPlan(seed=11, rules=(
            ChaosRule("campaign.worker.*", "crash", p=0.3),))
        b = ChaosPlan(seed=11, rules=(
            ChaosRule("campaign.worker.*", "crash", p=0.3),))
        for site, key, attempt in crossings():
            assert a.decides(0, site, key, attempt) == \
                b.decides(0, site, key, attempt)

    def test_different_seed_different_schedule(self):
        a = ChaosPlan(seed=11, rules=(
            ChaosRule("campaign.worker.*", "crash", p=0.3),))
        b = ChaosPlan(seed=12, rules=(
            ChaosRule("campaign.worker.*", "crash", p=0.3),))
        decisions_a = [a.decides(0, s, k, at) for s, k, at in crossings()]
        decisions_b = [b.decides(0, s, k, at) for s, k, at in crossings()]
        assert decisions_a != decisions_b

    def test_decision_is_pure_not_stateful(self):
        plan = ChaosPlan(seed=5, rules=(
            ChaosRule("x", "io-error", p=0.5),))
        first = [plan.decides(0, "x", "k", 0) for _ in range(10)]
        assert len(set(first)) == 1  # same inputs, same answer, always

    def test_p_extremes(self):
        plan = ChaosPlan(seed=0, rules=(
            ChaosRule("x", "io-error", p=1.0),
            ChaosRule("x", "io-error", p=0.0)))
        assert plan.decides(0, "x", "k", 0)
        assert not plan.decides(1, "x", "k", 0)

    def test_fraction_clamped(self):
        plan = ChaosPlan(seed=3, rules=(
            ChaosRule("x", "torn-write"),))
        for i in range(50):
            fraction = plan.fraction(0, "x", f"k{i}", 0)
            assert 0.05 <= fraction <= 0.95

    def test_matching_rules_glob(self):
        plan = ChaosPlan(rules=(
            ChaosRule("campaign.worker.*", "crash"),
            ChaosRule("serve.*", "conn-reset"),
            ChaosRule("*", "stall")))
        assert plan.matching_rules("campaign.worker.task") == [0, 2]
        assert plan.matching_rules("serve.cache.put") == [1, 2]


class TestWireFormat:
    def test_round_trip(self):
        plan = soak_plan(seed=42)
        assert ChaosPlan.from_json(plan.to_json()) == plan

    def test_save_load(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = soak_plan(seed=7, crash_p=0.25)
        plan.save(path)
        assert ChaosPlan.load(path) == plan

    def test_bad_json(self):
        with pytest.raises(ChaosPlanError, match="not valid JSON"):
            ChaosPlan.from_json("{nope")

    def test_bad_format_version(self):
        with pytest.raises(ChaosPlanError, match="format_version"):
            ChaosPlan.from_dict({"format_version": 99, "rules": []})

    @pytest.mark.parametrize("rule,match", [
        ({"site": "", "fault": "crash"}, "site"),
        ({"site": "x", "fault": "meteor"}, "unknown fault"),
        ({"site": "x", "fault": "crash", "p": 1.5}, "p must be"),
        ({"site": "x", "fault": "crash", "key_pattern": "("},
         "key_pattern"),
        ({"site": "x", "fault": "crash", "max_attempt": -1},
         "max_attempt"),
        ({"site": "x", "fault": "crash", "limit": 0}, "limit"),
        ({"site": "x", "fault": "crash", "bogus": 1}, "unknown field"),
    ])
    def test_rule_validation(self, rule, match):
        with pytest.raises(ChaosPlanError, match=match):
            ChaosRule.from_dict(rule)


class TestPresets:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_validate(self, name):
        plan = PRESETS[name](seed=1)
        assert plan.validate() is plan
        assert plan.rules

    def test_soak_plan_serve_toggle(self):
        with_serve = soak_plan(seed=0, include_serve=True)
        without = soak_plan(seed=0, include_serve=False)
        assert any(r.site.startswith("serve.") for r in with_serve.rules)
        assert not any(r.site.startswith("serve.")
                       for r in without.rules)


class TestControllerGating:
    def test_unarmed_is_noop(self):
        assert controller() is None
        assert chaos_point("campaign.worker.task", key="t0") is None

    def test_max_attempt_gate(self):
        ctl = ChaosController(ChaosPlan(rules=(
            ChaosRule("x", "io-error", max_attempt=0),)))
        with pytest.raises(OSError):
            ctl.fire("x", "k", attempt=0)
        assert ctl.fire("x", "k", attempt=1) is None  # retries clean

    def test_key_pattern_gate(self):
        ctl = ChaosController(ChaosPlan(rules=(
            ChaosRule("x", "io-error", key_pattern=r"^victim$"),)))
        assert ctl.fire("x", "bystander", 0) is None
        assert ctl.fire("x", None, 0) is None
        with pytest.raises(OSError):
            ctl.fire("x", "victim", 0)

    def test_limit_gate(self):
        ctl = ChaosController(ChaosPlan(rules=(
            ChaosRule("x", "io-error", limit=2),)))
        for key in ("a", "b"):
            with pytest.raises(OSError):
                ctl.fire("x", key, 0)
        assert ctl.fire("x", "c", 0) is None  # budget spent

    def test_errno_mapping(self):
        ctl = ChaosController(ChaosPlan(rules=(
            ChaosRule("full", "disk-full"),
            ChaosRule("eio", "io-error"),
            ChaosRule("net", "conn-reset"))))
        with pytest.raises(OSError) as err:
            ctl.fire("full", "k", 0)
        assert err.value.errno == errno.ENOSPC
        with pytest.raises(OSError) as err:
            ctl.fire("eio", "k", 0)
        assert err.value.errno == errno.EIO
        with pytest.raises(ConnectionResetError):
            ctl.fire("net", "k", 0)

    def test_torn_write_returned_not_raised(self):
        ctl = ChaosController(ChaosPlan(rules=(
            ChaosRule("x", "torn-write"),)))
        event = ctl.fire("x", "k", 0)
        assert event is not None and event.fault == "torn-write"
        assert 1 <= event.tear(100) <= 99
        assert event.tear(1) == 1  # degenerate buffers not torn to 0

    def test_armed_context_fires_and_disarms(self):
        plan = ChaosPlan(rules=(ChaosRule("site.a", "io-error"),))
        with armed(plan) as ctl:
            with pytest.raises(OSError):
                chaos_point("site.a", key="k")
            assert ctl.summary()["by_fault"] == {"io-error": 1}
        assert controller() is None
        assert chaos_point("site.a", key="k") is None

    def test_identical_fault_log_across_arms(self):
        """Same plan, same crossings → byte-identical event log."""
        plan = ChaosPlan(seed=9, rules=(
            ChaosRule("x", "torn-write", p=0.4),))
        logs = []
        for _ in range(2):
            with armed(plan) as ctl:
                for site, key, attempt in crossings():
                    chaos_point("x", key=key, attempt=attempt)
                logs.append([(e.site, e.key, e.attempt, e.fault,
                              e.fraction) for e in ctl.log])
        assert logs[0] == logs[1]
        assert logs[0]  # and something actually fired


def test_fault_kinds_cover_controller():
    assert set(FAULT_KINDS) == {"crash", "stall", "disk-full",
                                "io-error", "conn-reset", "torn-write"}
