"""Aggregation: Wilson intervals, coverage tables, latency histograms."""

import math

from repro.campaign.report import (aggregate, coverage_table,
                                   latency_histograms, latency_table,
                                   render_report, wilson_interval)


def record(kind="srt", workload="gcc", outcome="detected", latency=None,
           timed_out=False):
    return {"kind": kind, "workload": workload, "outcome": outcome,
            "latency": latency, "timed_out": timed_out}


class TestWilsonInterval:
    def test_empty_sample_is_uninformative(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_interval_contains_point_estimate(self):
        for k, n in [(0, 10), (5, 10), (10, 10), (1, 3), (99, 100)]:
            low, high = wilson_interval(k, n)
            assert 0.0 <= low <= k / n <= high <= 1.0

    def test_known_value(self):
        # 8/10 at 95%: classic Wilson ≈ (0.490, 0.943).
        low, high = wilson_interval(8, 10)
        assert math.isclose(low, 0.4902, abs_tol=5e-4)
        assert math.isclose(high, 0.9433, abs_tol=5e-4)

    def test_narrows_with_sample_size(self):
        low_small, high_small = wilson_interval(8, 10)
        low_big, high_big = wilson_interval(800, 1000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_never_degenerate_at_extremes(self):
        low, high = wilson_interval(10, 10)
        assert high == 1.0 and low > 0.5
        low, high = wilson_interval(0, 10)
        assert low == 0.0 and high < 0.5


class TestAggregation:
    def test_strata_grouped_by_kind_and_workload(self):
        records = [record(), record(workload="swim"),
                   record(kind="base", outcome="masked")]
        strata = aggregate(records)
        assert set(strata) == {("srt", "gcc"), ("srt", "swim"),
                               ("base", "gcc")}

    def test_coverage_excludes_masked_from_denominator(self):
        records = ([record(outcome="detected")] * 3
                   + [record(outcome="silent-data-corruption")]
                   + [record(outcome="masked")] * 6)
        stats = aggregate(records)[("srt", "gcc")]
        assert stats.total == 10
        assert stats.unmasked == 4
        point, low, high = stats.coverage()
        assert math.isclose(point, 0.75)
        assert low < point < high

    def test_all_masked_stratum_reports_unknown_coverage(self):
        stats = aggregate([record(outcome="masked")] * 5)[("srt", "gcc")]
        assert stats.coverage() == (0.0, 0.0, 1.0)

    def test_timeout_counted(self):
        stats = aggregate([record(outcome="hung", timed_out=True)])[
            ("srt", "gcc")]
        assert stats.timed_out == 1


class TestTables:
    def test_coverage_table_has_row_per_stratum(self):
        records = [record(), record(kind="base", outcome="masked")]
        table = coverage_table(aggregate(records))
        assert set(table.rows) == {"srt/gcc", "base/gcc"}
        assert table.rows["srt/gcc"]["coverage"] == 1.0
        assert "ci_low" in table.series and "ci_high" in table.series

    def test_latency_table_percentiles(self):
        records = [record(latency=lat) for lat in range(100)]
        table = latency_table(aggregate(records))
        row = table.rows["srt"]
        assert row["detected"] == 100
        assert row["p50"] == 50
        assert row["p90"] == 90
        assert row["max"] == 99

    def test_latency_histogram_counts(self):
        records = [record(latency=lat) for lat in (10, 20, 200)]
        histograms = latency_histograms(aggregate(records), bucket_width=64)
        assert histograms["srt"].total == 3

    def test_render_report_end_to_end(self):
        records = ([record(outcome="detected", latency=40)] * 4
                   + [record(outcome="masked")] * 2
                   + [record(kind="base", outcome="silent-data-corruption")])
        text = render_report(records)
        assert "coverage" in text
        assert "srt/gcc" in text and "base/gcc" in text
        assert "detection latency" in text

    def test_render_report_empty(self):
        assert "no records" in render_report([])
