"""Unit tests for the coalescing merge buffer."""

from repro.memory.cache import SetAssociativeCache
from repro.memory.merge_buffer import CoalescingMergeBuffer


class TestCoalescing:
    def test_same_block_coalesces(self):
        buf = CoalescingMergeBuffer(capacity=4)
        assert buf.try_insert(0x100, 0)
        assert buf.try_insert(0x108, 1)  # same 64-byte block
        assert len(buf) == 1
        assert buf.stats.coalesced == 1

    def test_distinct_blocks_take_entries(self):
        buf = CoalescingMergeBuffer(capacity=4)
        buf.try_insert(0x100, 0)
        buf.try_insert(0x140, 0)
        assert len(buf) == 2


class TestBackPressure:
    def test_full_rejects(self):
        buf = CoalescingMergeBuffer(capacity=2)
        assert buf.try_insert(0x000, 0)
        assert buf.try_insert(0x040, 0)
        assert not buf.try_insert(0x080, 0)
        assert buf.stats.full_stalls == 1

    def test_full_still_coalesces(self):
        buf = CoalescingMergeBuffer(capacity=1)
        buf.try_insert(0x100, 0)
        assert buf.try_insert(0x110, 0)  # coalesces into existing entry


class TestDrain:
    def test_drains_oldest_first(self):
        dcache = SetAssociativeCache("d", 1024, 2, 64, 0)
        buf = CoalescingMergeBuffer(capacity=4, dcache=dcache,
                                    drain_interval=1)
        buf.try_insert(0x100, 0)
        buf.try_insert(0x140, 1)
        buf.tick(2)
        assert len(buf) == 1
        assert 0x140 in buf._entries  # 0x100 (older) drained first

    def test_drain_rate_limited(self):
        buf = CoalescingMergeBuffer(capacity=8, drain_interval=2)
        for i in range(4):
            buf.try_insert(i * 64, 0)
        buf.tick(2)
        buf.tick(3)  # too soon after the previous drain
        assert buf.stats.drains == 1
        buf.tick(4)
        assert buf.stats.drains == 2

    def test_drain_writes_to_dcache(self):
        dcache = SetAssociativeCache("d", 1024, 2, 64, 0)
        buf = CoalescingMergeBuffer(capacity=4, dcache=dcache,
                                    drain_interval=1)
        buf.try_insert(0x100, 0)
        buf.tick(5)
        assert dcache.stats.accesses == 1

    def test_empty_tick_is_noop(self):
        buf = CoalescingMergeBuffer(capacity=4)
        buf.tick(0)
        assert buf.stats.drains == 0
