"""The `repro verify` CLI: exit codes, JSON envelope shape, mutation
negative tests, and the acceptance run on the shipped tree."""

import json

from repro.analysis.report import SCHEMA_VERSION
from repro.verify.cli import cmd_verify
from tests.test_verify_protocol import GOLDEN_SCHEDULES


class TestAcceptance:
    def test_verify_all_strict_is_clean(self, capsys):
        """`python -m repro verify all --strict` exits 0 (ISSUE 8)."""
        assert cmd_verify(["all", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "configuration(s) verified" in out
        assert "clean" in out

    def test_protocol_only(self, capsys):
        assert cmd_verify(["protocol"]) == 0
        out = capsys.readouterr().out
        assert "protocol/srt-default" in out
        assert "simlint" not in out

    def test_lockset_only(self, capsys):
        assert cmd_verify(["lockset"]) == 0
        out = capsys.readouterr().out
        assert "protocol/" not in out

    def test_no_por_agrees(self, capsys):
        assert cmd_verify(["protocol", "--no-por"]) == 0


class TestMutations:
    def test_every_mutation_fails_nonzero(self, capsys):
        for mutation in sorted(GOLDEN_SCHEDULES):
            assert cmd_verify(["protocol", "--mutation", mutation]) == 1
            out = capsys.readouterr().out
            assert "VIOLATION" in out

    def test_mutation_json_carries_golden_schedule(self, capsys):
        assert cmd_verify(["protocol", "--mutation", "lvq-unchecked",
                           "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        [result] = payload["protocol"]
        ce = result["counterexample"]
        assert ce["minimal"] is True
        assert tuple(ce["schedule"]) == GOLDEN_SCHEDULES["lvq-unchecked"]

    def test_mutation_with_lockset_engine_is_usage_error(self, capsys):
        assert cmd_verify(["lockset", "--mutation", "boq-zero"]) == 2


class TestJsonEnvelope:
    def test_envelope_shape(self, capsys):
        assert cmd_verify(["all", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == SCHEMA_VERSION
        assert payload["tool"] == "verify"
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["protocol_violations"] == 0
        assert len(payload["protocol"]) >= 30
        for result in payload["protocol"]:
            assert result["ok"] is True
            assert result["states"] > 0

    def test_single_config_selection(self, capsys):
        assert cmd_verify(["protocol", "--config", "srt-default",
                           "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["protocol"]) == 1
        assert payload["protocol"][0]["system"] == "protocol/srt-default"

    def test_unknown_config_is_usage_error(self, capsys):
        assert cmd_verify(["protocol", "--config", "nope"]) == 2

    def test_max_states_budget_is_usage_error_when_exceeded(self, capsys):
        assert cmd_verify(["protocol", "--config", "srt-default",
                           "--max-states", "10"]) == 2


class TestRules:
    def test_rules_catalogue_lists_s5(self, capsys):
        assert cmd_verify(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("S501", "S502", "S503"):
            assert rule in out
        assert "disable-file" in out


class TestMainDispatch:
    def test_module_entry_point(self, capsys):
        from repro.__main__ import main
        assert main(["verify", "protocol", "--config",
                     "srt-default"]) == 0
        assert main(["verify", "protocol", "--mutation",
                     "commit-before-verify"]) == 1
        capsys.readouterr()

    def test_listed_in_cmd_list(self, capsys):
        from repro.__main__ import main
        assert main(["list"]) == 0
        assert "verify" in capsys.readouterr().out
