"""Integration tests for the full memory hierarchy."""

from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.router import MeshRouter


class TestHierarchy:
    def test_default_geometry_matches_table1(self):
        config = HierarchyConfig()
        assert config.l1i_size == 64 * 1024 and config.l1i_assoc == 2
        assert config.l1d_size == 64 * 1024 and config.l1d_assoc == 2
        assert config.block_bytes == 64
        assert config.l2_size == 3 * 1024 * 1024 and config.l2_assoc == 8
        assert config.memory_channels == 10
        assert config.merge_buffer_entries == 16

    def test_per_core_l1_shared_l2(self):
        hierarchy = MemoryHierarchy(HierarchyConfig(), num_cores=2)
        assert len(hierarchy.l1i) == 2 and len(hierarchy.l1d) == 2
        hierarchy.load(0, 0x1000, 0)
        # Core 1 misses its own L1 but hits the shared, now-warm L2.
        t = hierarchy.load(1, 0x1000, 100)
        assert hierarchy.l1d[1].stats.misses == 1
        assert hierarchy.l2.stats.hits == 1
        assert t - 100 <= HierarchyConfig().l2_hit_latency + 1

    def test_miss_goes_through_l2_to_memory(self):
        config = HierarchyConfig()
        hierarchy = MemoryHierarchy(config, num_cores=1)
        t = hierarchy.load(0, 0x5000, 0)
        assert t >= config.memory_latency
        assert hierarchy.memory.requests == 1

    def test_fetch_and_load_use_separate_l1s(self):
        hierarchy = MemoryHierarchy(HierarchyConfig(), num_cores=1)
        hierarchy.fetch(0, 0x1000, 0)
        hierarchy.load(0, 0x1000, 0)
        assert hierarchy.l1i[0].stats.misses == 1
        assert hierarchy.l1d[0].stats.misses == 1

    def test_core_id_modulo_for_private_hierarchies(self):
        """Lockstep hands core 1 a single-core hierarchy."""
        hierarchy = MemoryHierarchy(HierarchyConfig(), num_cores=1)
        hierarchy.load(1, 0x1000, 0)  # must not raise
        assert hierarchy.l1d[0].stats.misses == 1

    def test_store_drain_backpressure(self):
        config = HierarchyConfig(merge_buffer_entries=1)
        hierarchy = MemoryHierarchy(config, num_cores=1)
        assert hierarchy.store_drain(0, 0x000, 0)
        assert not hierarchy.store_drain(0, 0x040, 0)
        # After a drain tick, room again.
        hierarchy.tick(10)
        assert hierarchy.store_drain(0, 0x040, 11)

    def test_checker_latency_propagates(self):
        plain = MemoryHierarchy(HierarchyConfig(), num_cores=1)
        checked = MemoryHierarchy(HierarchyConfig(checker_latency=8),
                                  num_cores=1)
        t_plain = plain.load(0, 0x9000, 0)
        t_checked = checked.load(0, 0x9000, 0)
        assert t_checked == t_plain + 8

    def test_stats_summary_keys(self):
        hierarchy = MemoryHierarchy(HierarchyConfig(), num_cores=2)
        summary = hierarchy.stats_summary()
        assert "l2_miss_rate" in summary
        assert "l1d0_miss_rate" in summary and "l1d1_miss_rate" in summary


class TestMeshRouter:
    def test_same_agent_free(self):
        assert MeshRouter().latency(0, 0) == 0

    def test_hop_scaling(self):
        router = MeshRouter(hop_latency=2, router_overhead=2)
        assert router.latency(0, 1) == 4
        assert router.latency(0, 3) == 8
