"""Integration tests for the lockstepped dual-core machine (Section 5)."""

from repro.core.config import MachineConfig
from repro.core.machine import make_machine
from repro.isa.generator import generate_benchmark


def run_lockstep(names, checker_latency=8, instructions=500, warmup=2000):
    programs = [generate_benchmark(n) for n in names]
    machine = make_machine("lockstep", MachineConfig(), programs,
                           checker_latency=checker_latency)
    result = machine.run(max_instructions=instructions, warmup=warmup)
    return machine, result


class TestLockstepExecution:
    def test_cores_stay_in_lockstep(self):
        """Identical deterministic cores: retirement counts match."""
        machine, result = run_lockstep(["gcc"])
        core0, core1 = machine.cores
        assert core0.stats.retired_total == core1.stats.retired_total
        assert core0.stats.cycles == core1.stats.cycles

    def test_checker_compares_all_outputs(self):
        machine, result = run_lockstep(["vortex"])
        assert machine.checker.comparisons > 0
        assert machine.checker.mismatches == 0
        assert result.faults_detected == 0

    def test_store_streams_fully_consumed(self):
        """Neither core's output stream runs ahead unmatched forever."""
        machine, _ = run_lockstep(["swim"])
        for key, stream in machine.checker._streams.items():
            assert len(stream) < 50

    def test_private_memory_images_identical(self):
        machine, _ = run_lockstep(["m88ksim"])
        assert machine.memories[0] == machine.memories[1]


class TestCheckerLatency:
    def test_lock8_slower_than_lock0(self):
        _, lock0 = run_lockstep(["swim"], checker_latency=0)
        _, lock8 = run_lockstep(["swim"], checker_latency=8)
        assert lock8.threads[0].ipc < lock0.threads[0].ipc

    def test_lock0_matches_base(self):
        """An ideal zero-latency checker costs nothing vs the base."""
        program = generate_benchmark("gcc")
        base = make_machine("base", MachineConfig(), [program]).run(
            max_instructions=500, warmup=2000)
        _, lock0 = run_lockstep(["gcc"], checker_latency=0)
        assert abs(lock0.threads[0].ipc - base.threads[0].ipc) < 0.02

    def test_checker_latency_in_stats(self):
        machine, result = run_lockstep(["gcc"], checker_latency=8)
        assert result.stats["checker.latency"] == 8

    def test_default_latency_from_config(self):
        program = generate_benchmark("gcc")
        config = MachineConfig(checker_latency=16)
        machine = make_machine("lockstep", config, [program])
        assert machine.checker_latency == 16


class TestMultiprogrammed:
    def test_two_programs_both_duplicated(self):
        machine, result = run_lockstep(["gcc", "swim"], instructions=300)
        assert len(machine.cores[0].threads) == 2
        assert len(machine.cores[1].threads) == 2
        assert all(t.retired == 300 for t in result.threads)
        assert machine.checker.mismatches == 0

    def test_partitioning_matches_thread_count(self):
        machine, _ = run_lockstep(["gcc", "swim"], instructions=50)
        for core in machine.cores:
            for thread in core.threads:
                assert thread.sq_capacity == 32
                assert thread.lq_capacity == 32
