"""Validation of the benchmark profile definitions."""

import pytest

from repro.isa.profiles import (FOUR_THREAD_POOL, SPEC95_NAMES,
                                SPEC95_PROFILES, TWO_THREAD_POOL,
                                WorkloadProfile, get_profile)


class TestSuiteDefinition:
    def test_eighteen_benchmarks(self):
        """The paper evaluates all 18 SPEC CPU95 programs."""
        assert len(SPEC95_NAMES) == 18

    def test_paper_names_present(self):
        expected = {"applu", "apsi", "compress", "fpppp", "gcc", "go",
                    "hydro2d", "ijpeg", "li", "m88ksim", "mgrid", "perl",
                    "su2cor", "swim", "tomcatv", "turb3d", "vortex", "wave5"}
        assert set(SPEC95_NAMES) == expected

    def test_multiprogram_pools_match_paper(self):
        """Section 6.2's multiprogrammed subsets."""
        assert set(TWO_THREAD_POOL) == {"gcc", "go", "fpppp", "swim"}
        assert set(FOUR_THREAD_POOL) == {"gcc", "go", "ijpeg", "fpppp",
                                         "swim"}

    def test_profiles_internally_consistent(self):
        for profile in SPEC95_PROFILES.values():
            assert profile.block_size[0] <= profile.block_size[1]
            assert profile.loop_trip[0] <= profile.loop_trip[1]
            assert 0 <= profile.load_frac + profile.store_frac + \
                profile.fp_frac + profile.mul_frac <= 1.0


class TestCharacterisation:
    """The profiles must encode each benchmark's documented character."""

    def test_fpppp_has_huge_blocks(self):
        fpppp = get_profile("fpppp")
        others = [p for p in SPEC95_PROFILES.values() if p.name != "fpppp"]
        assert fpppp.block_size[1] > max(p.block_size[1] for p in others)

    def test_gcc_and_vortex_have_large_code(self):
        sizes = {name: SPEC95_PROFILES[name].blocks for name in SPEC95_NAMES}
        big = sorted(sizes, key=sizes.get, reverse=True)[:3]
        assert "gcc" in big and "vortex" in big

    def test_go_is_least_predictable(self):
        go = get_profile("go")
        assert go.random_branch_frac >= max(
            p.random_branch_frac for p in SPEC95_PROFILES.values()
            if p.fp_frac == 0 and p.name != "go") - 1e-9

    def test_streaming_fp_has_huge_working_sets(self):
        for name in ("swim", "tomcatv"):
            profile = get_profile(name)
            # Far larger than the 64KB (8K-word) L1 data cache.
            assert profile.working_set_words >= 64 * 1024

    def test_li_is_call_heavy(self):
        li = get_profile("li")
        assert li.call_frac >= max(p.call_frac
                                   for p in SPEC95_PROFILES.values()) - 1e-9

    def test_fp_profiles_marked(self):
        for name in ("applu", "swim", "mgrid", "hydro2d", "tomcatv"):
            assert get_profile(name).fp_frac > 0.2
        for name in ("gcc", "go", "compress", "li"):
            assert get_profile(name).fp_frac == 0.0


class TestValidation:
    def test_terminator_fractions_bounded(self):
        with pytest.raises(ValueError, match="terminator"):
            WorkloadProfile(
                name="bad", description="", blocks=10, block_size=(2, 4),
                subroutines=0, sub_block_size=(2, 4), load_frac=0.2,
                store_frac=0.1, fp_frac=0.0, mul_frac=0.0,
                loop_frac=0.5, random_branch_frac=0.4,
                biased_branch_frac=0.3)

    def test_working_set_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            WorkloadProfile(
                name="bad", description="", blocks=10, block_size=(2, 4),
                subroutines=0, sub_block_size=(2, 4), load_frac=0.2,
                store_frac=0.1, fp_frac=0.0, mul_frac=0.0,
                working_set_words=1000)

    def test_bad_access_pattern(self):
        with pytest.raises(ValueError, match="access pattern"):
            WorkloadProfile(
                name="bad", description="", blocks=10, block_size=(2, 4),
                subroutines=0, sub_block_size=(2, 4), load_frac=0.2,
                store_frac=0.1, fp_frac=0.0, mul_frac=0.0,
                access_pattern="diagonal")
