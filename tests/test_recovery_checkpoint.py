"""SRTR checkpoint/rollback recovery: round-trip, recovery, escalation."""

from repro.core.config import MachineConfig
from repro.core.faults import (FaultInjector, StuckFunctionalUnit,
                               TransientResultFault)
from repro.core.machine import make_machine
from repro.core.metrics import Termination
from repro.isa.assembler import assemble
from repro.isa.generator import generate_benchmark
from repro.isa.instructions import FuClass

GCC = generate_benchmark("gcc")

#: A terminating workload: 200 stores to distinct words, then HALT.  A
#: halting program fully drains its store queues, so the final memory
#: image is a complete architectural artifact we can compare bit-for-bit.
STORE_LOOP = assemble("""
        ldi r1, 0x2000
        ldi r2, 7
        ldi r3, 200
    top:
        st r1, 0, r2
        addi r1, r1, 8
        addi r2, r2, 3
        ldi r4, 30
    spin:
        addi r4, r4, -1
        bnez r4, spin
        addi r3, r3, -1
        bnez r3, top
        halt
""", name="storeloop")


def recovery_config(**overrides):
    base = dict(recovery_enabled=True, checkpoint_interval=400,
                recovery_max_attempts=3)
    base.update(overrides)
    return MachineConfig(**base)


class TestCheckpointRoundTrip:
    def test_rollback_restores_bit_identical_committed_state(self):
        """Force a rollback with no fault: every architectural field of
        the leading thread must come back exactly as checkpointed."""
        machine = make_machine(
            "srt", recovery_config(checkpoint_interval=100), [STORE_LOOP])
        machine._arm(max_instructions=20_000)
        while machine.now < 600:
            machine.step()
        manager = machine.recovery
        assert manager.stats.checkpoints > 1
        saved = manager.checkpoints[-1].pairs[STORE_LOOP.name]
        regs, pc = list(saved.regs), saved.pc
        retired, li, si = saved.retired, saved.load_index, saved.store_index

        manager.on_fault(None)      # schedule a (spurious) rollback
        machine.step()              # rollback happens in recovery.tick

        leading = machine.controller.pairs[0].leading
        assert leading.arch_regs == regs
        assert leading.committed_pc == pc
        assert leading.fetch_pc == pc
        assert leading.stats.retired == retired
        assert leading.committed_load_index == li
        assert leading.committed_store_index == si
        assert not leading.store_queue and not leading.rob
        assert manager.stats.rollbacks == 1

    def test_forced_rollback_leaves_final_memory_correct(self):
        """After a fault-free forced rollback, the replayed halting run
        must produce the exact memory image of an undisturbed run."""
        reference = make_machine("srt", MachineConfig(), [STORE_LOOP])
        reference.run(max_instructions=20_000)

        machine = make_machine(
            "srt", recovery_config(checkpoint_interval=100), [STORE_LOOP])
        machine._arm(max_instructions=20_000)
        while machine.now < 600:
            machine.step()
        machine.recovery.on_fault(None)
        result = machine.run(max_instructions=20_000)

        assert machine.recovery.stats.rollbacks == 1
        assert result.termination is Termination.RECOVERED
        assert machine.memory == reference.memory

    def test_journal_unwinds_overwritten_and_fresh_keys(self):
        """The undo journal distinguishes overwritten words (restore old
        value) from fresh words (delete the key)."""
        machine = make_machine(
            "srt", recovery_config(checkpoint_interval=100), [STORE_LOOP])
        machine._arm(max_instructions=20_000)
        while machine.now < 600:
            machine.step()
        snapshot = dict(machine.memory)
        # Remember which checkpoint-time image we are rolling to: the
        # journal of the newest checkpoint holds exactly the post-
        # checkpoint deltas.
        target = machine.recovery.checkpoints[-1]
        expected = dict(snapshot)
        for key, old in reversed(target.journal):
            if old is None:
                expected.pop(key, None)
            else:
                expected[key] = old
        machine.recovery.on_fault(None)
        machine.step()
        assert machine.memory == expected


class TestTransientRecovery:
    def test_transient_fault_recovers(self):
        """SRT + transient result fault: detect, roll back, replay, and
        finish RECOVERED with nonzero latency and depth."""
        machine = make_machine("srt", recovery_config(), [GCC])
        FaultInjector(machine, [TransientResultFault(cycle=400,
                                                     core_index=0, bit=3)])
        result = machine.run(max_instructions=800, warmup=2000)
        assert machine.fault_events, "fault must be detected"
        assert result.termination is Termination.RECOVERED
        assert result.completed
        summary = result.recovery
        assert summary["rollbacks"] >= 1
        assert summary["recoveries"] >= 1
        assert summary["recovery_latency_last"] > 0
        assert summary["rollback_depth_max"] > 0
        assert not summary["unrecoverable"]

    def test_recovered_drained_stream_matches_fault_free_prefix(self):
        """The decisive output is the drained-store stream that left the
        sphere of replication: the recovered run's stream must be a
        prefix-exact match of a fault-free run's."""
        def traced(machine):
            hw = machine._measured[GCC.name]
            hw.core.drain_log[hw.tid] = []
            return machine, hw

        reference, ref_hw = traced(
            make_machine("srt", recovery_config(), [GCC]))
        reference.run(max_instructions=800, warmup=2000)
        golden = ref_hw.core.drain_log[ref_hw.tid]

        machine, hw = traced(make_machine("srt", recovery_config(), [GCC]))
        FaultInjector(machine, [TransientResultFault(cycle=400,
                                                     core_index=0, bit=3)])
        result = machine.run(max_instructions=800, warmup=2000)
        assert result.termination is Termination.RECOVERED
        mine = hw.core.drain_log[hw.tid]
        assert mine, "recovered run must have drained stores"
        assert mine == golden[:len(mine)]

    def test_crt_recovers_too(self):
        machine = make_machine("crt", recovery_config(), [GCC])
        FaultInjector(machine, [TransientResultFault(cycle=400,
                                                     core_index=0, bit=3)])
        result = machine.run(max_instructions=800, warmup=2000)
        if machine.fault_events:  # site detected on CRT as well
            assert result.termination in (Termination.RECOVERED,
                                          Termination.DONE)
            assert result.recovery["rollbacks"] >= 1

    def test_fault_free_run_is_undisturbed_by_checkpointing(self):
        """Checkpointing must be timing-invisible: a recovery-enabled
        fault-free run is cycle-identical to a recovery-off run."""
        plain = make_machine("srt", MachineConfig(), [GCC]).run(
            max_instructions=600, warmup=1000)
        checked = make_machine("srt", recovery_config(), [GCC])
        result = checked.run(max_instructions=600, warmup=1000)
        assert result.cycles == plain.cycles
        assert result.termination is Termination.DONE
        assert checked.recovery.stats.checkpoints > 0
        assert checked.recovery.stats.rollbacks == 0


class TestPermanentFault:
    def test_stuck_unit_exhausts_the_ring(self):
        """A permanent fault re-detects after every replay: escalation
        runs out of checkpoints and the run ends UNRECOVERABLE."""
        machine = make_machine("srt", recovery_config(), [GCC])
        FaultInjector(machine, [StuckFunctionalUnit(
            core_index=0, fu_class=FuClass.INT, unit_index=0, bit=3)])
        result = machine.run(max_instructions=800, warmup=2000)
        assert result.termination is Termination.UNRECOVERABLE
        assert not result.completed
        assert result.recovery["unrecoverable"]
        assert result.recovery["rollbacks"] >= 1
        # No replay was ever *confirmed* as a recovery.
        assert result.recovery["recoveries"] == 0

    def test_unrecoverable_aborts_promptly(self):
        """The escalation ladder is bounded: the machine gives up within
        a few checkpoint intervals instead of looping rollback forever."""
        machine = make_machine("srt", recovery_config(), [GCC])
        FaultInjector(machine, [StuckFunctionalUnit(
            core_index=0, fu_class=FuClass.INT, unit_index=0, bit=3)])
        result = machine.run(max_instructions=800, warmup=2000)
        assert machine.abort_reason is Termination.UNRECOVERABLE
        assert result.cycles < 5_000


class TestRecoveryDisabled:
    def test_no_manager_without_config_flag(self):
        machine = make_machine("srt", MachineConfig(), [GCC])
        assert machine.recovery is None

    def test_base_machine_never_gets_a_manager(self):
        machine = make_machine("base", recovery_config(), [GCC])
        assert machine.recovery is None
