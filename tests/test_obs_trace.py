"""Span tracing: deterministic identity, torn-tail reads, normalization,
and cross-process propagation through a spawn-context pool (the trace id
survives pickling; worker spans nest under the submitting root)."""

import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.campaign.sampler import enumerate_tasks
from repro.campaign.spec import CampaignSpec
from repro.campaign.worker import execute_chunk
from repro.obs import trace


@pytest.fixture(autouse=True)
def _always_disarmed():
    """Every test starts and ends with tracing disarmed (module state
    and the REPRO_TRACE environment export both cleared)."""
    trace.disarm_tracing()
    yield
    trace.disarm_tracing()


def span_file(tmp_path):
    return tmp_path / "spans.jsonl"


class TestArming:
    def test_disarmed_span_is_shared_noop(self):
        assert trace.tracer() is None
        assert trace.span("a") is trace.span("b")
        with trace.span("a"):
            assert trace.current_span() is None
        assert trace.carry() is None

    def test_arm_exports_env_disarm_clears_it(self, tmp_path):
        trace.arm_tracing(span_file(tmp_path), trace_id="t9")
        exported = json.loads(os.environ[trace.ENV_TRACE])
        assert exported == {"path": str(span_file(tmp_path)),
                            "trace_id": "t9"}
        assert trace.tracer().trace_id == "t9"
        trace.disarm_tracing()
        assert trace.ENV_TRACE not in os.environ
        assert trace.tracer() is None

    def test_traced_scope_always_disarms(self, tmp_path):
        with pytest.raises(RuntimeError):
            with trace.traced(span_file(tmp_path)):
                raise RuntimeError("boom")
        assert trace.tracer() is None


class TestSpanRecords:
    def test_deterministic_ids_across_runs(self, tmp_path):
        def emit(path):
            with trace.traced(path, trace_id="fixed"):
                with trace.span("outer", key="k"):
                    with trace.span("inner"):
                        pass
                    with trace.span("inner"):
                        pass

        emit(tmp_path / "a.jsonl")
        emit(tmp_path / "b.jsonl")
        ids_a = [(r["name"], r["span"], r["parent"])
                 for r in trace.read_spans(tmp_path / "a.jsonl")]
        ids_b = [(r["name"], r["span"], r["parent"])
                 for r in trace.read_spans(tmp_path / "b.jsonl")]
        assert ids_a == ids_b
        # Keyless siblings get distinct ordinal-derived ids.
        inner = [s for n, s, _ in ids_a if n == "inner"]
        assert len(set(inner)) == 2

    def test_error_spans_marked_not_ok(self, tmp_path):
        with trace.traced(span_file(tmp_path)):
            with pytest.raises(ValueError):
                with trace.span("work", key="w"):
                    raise ValueError("nope")
        [record] = trace.read_spans(span_file(tmp_path))
        assert record["ok"] is False

    def test_nesting_restores_ambient(self, tmp_path):
        with trace.traced(span_file(tmp_path)):
            with trace.span("outer") as outer:
                with trace.span("inner") as inner:
                    assert trace.current_span() is inner
                assert trace.current_span() is outer
            assert trace.current_span() is None

    def test_forced_root_ignores_ambient(self, tmp_path):
        """The serve executor bridge roots each job's trace explicitly."""
        with trace.traced(span_file(tmp_path)):
            with trace.span("ambient"):
                with trace.span("job", key="j", trace_id="job-trace"):
                    pass
        records = {r["name"]: r for r in trace.read_spans(
            span_file(tmp_path))}
        assert records["job"]["parent"] is None
        assert records["job"]["trace"] == "job-trace"


class TestReading:
    def test_missing_file_reads_empty(self, tmp_path):
        assert trace.read_spans(tmp_path / "absent.jsonl") == []
        assert trace.normalize_span_log(tmp_path / "absent.jsonl") == ""

    def test_torn_tail_tolerated(self, tmp_path):
        path = span_file(tmp_path)
        good = {"trace": "t", "span": "s1", "parent": None,
                "name": "a", "key": None, "ok": True,
                "ts": 1.0, "dur_s": 0.1, "pid": 1}
        with open(path, "w", encoding="utf-8") as sink:
            sink.write(json.dumps(good) + "\n")
            sink.write('{"trace": "t", "span": "s2", "nam')  # torn tail
        records = trace.read_spans(path)
        assert [r["span"] for r in records] == ["s1"]

    def test_normalize_strips_timing_drops_infra_dedupes(self):
        base = {"trace": "t", "span": "s", "parent": None, "name": "a",
                "key": "k", "ok": True}
        records = [
            dict(base, ts=1.0, dur_s=0.5, pid=10, attempt=0),
            dict(base, ts=9.9, dur_s=0.1, pid=77, attempt=2),  # retry
            dict(base, span="i", name="chunk", infra=True, ts=2.0),
        ]
        lines = trace.normalize_spans(records)
        assert len(lines) == 1
        normalized = json.loads(lines[0])
        assert normalized == {"trace": "t", "span": "s", "parent": None,
                              "name": "a", "key": "k", "ok": True}

    def test_trace_summary_rollup(self, tmp_path):
        with trace.traced(span_file(tmp_path), trace_id="t1"):
            for _ in range(3):
                with trace.span("step", key="s"):
                    pass
        summary = trace.trace_summary(span_file(tmp_path))
        assert summary["total_spans"] == 3
        entry = summary["traces"]["t1"]
        assert entry["spans"] == 3
        assert entry["errors"] == 0
        assert entry["by_name"]["step"]["count"] == 3

    def test_trace_summary_limit(self, tmp_path):
        with trace.traced(span_file(tmp_path)):
            for index in range(5):
                with trace.span("job", key=str(index),
                                trace_id=f"trace-{index}"):
                    pass
        summary = trace.trace_summary(span_file(tmp_path), limit=2)
        assert summary["trace_count"] == 5
        assert len(summary["traces"]) == 2


def small_chunk_payload(carry):
    spec = CampaignSpec(kinds=("srt",), workloads=("compress",),
                        models=("transient-result",), injections=2,
                        seed=0, instructions=60, warmup=5)
    tasks = [task.to_dict() for task in enumerate_tasks(spec)]
    payload = {"tasks": tasks, "config": None, "timeout": 0}
    if carry is not None:
        payload["trace"] = carry
    return payload


class TestCrossProcessPropagation:
    def test_trace_id_survives_spawn_pool(self, tmp_path):
        """The REPRO_TRACE env carry re-arms a spawn-context worker
        (which shares no module state with the parent), and the pickled
        payload carry nests its spans under the submitting root."""
        path = span_file(tmp_path)
        trace.arm_tracing(path, trace_id="spawned")
        with trace.span("root", key="r") as root:
            root_id = root.span_id
            payload = small_chunk_payload(trace.carry())
            context = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(max_workers=1,
                                     mp_context=context) as pool:
                records = pool.submit(execute_chunk, payload).result()
        assert len(records) == 2

        spans = trace.read_spans(path)
        by_name = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(record)
        [chunk] = by_name["campaign.chunk"]
        tasks = by_name["campaign.task"]
        assert chunk["trace"] == "spawned"      # trace id survived pickling
        assert chunk["parent"] == root_id       # nests under the root span
        assert chunk["infra"] is True
        assert chunk["pid"] != os.getpid()      # really ran in the child
        assert len(tasks) == 2
        assert all(t["parent"] == chunk["span"] for t in tasks)
        assert all(t["trace"] == "spawned" for t in tasks)

    def test_worker_without_carry_still_roots_locally(self, tmp_path):
        """A chunk with no carry (tracing armed worker-side only) still
        produces a well-formed local span tree."""
        path = span_file(tmp_path)
        trace.arm_tracing(path, trace_id="local")
        execute_chunk(small_chunk_payload(None))
        spans = trace.read_spans(path)
        chunk = [r for r in spans if r["name"] == "campaign.chunk"]
        assert len(chunk) == 1 and chunk[0]["parent"] is None


@pytest.mark.slow
class TestCampaignSpanDeterminism:
    def test_normalized_log_identical_at_any_jobs_level(self, tmp_path):
        from repro.campaign.engine import run_campaign

        spec = CampaignSpec(kinds=("srt",), workloads=("compress",),
                            models=("transient-result",), injections=6,
                            seed=0, instructions=100, warmup=10)
        with trace.traced(tmp_path / "seq.jsonl", trace_id="t"):
            run_campaign(spec, tmp_path / "seq", jobs=1)
        with trace.traced(tmp_path / "par.jsonl", trace_id="t"):
            run_campaign(spec, tmp_path / "par", jobs=2)
        sequential = trace.normalize_span_log(tmp_path / "seq.jsonl")
        parallel = trace.normalize_span_log(tmp_path / "par.jsonl")
        assert sequential
        assert sequential == parallel
