"""Tests for the machine run loop: warmup, drain, targets, stats."""

from repro.core.config import MachineConfig
from repro.core.machine import BaseMachine, make_machine
from repro.isa.assembler import assemble
from repro.isa.generator import generate_benchmark


class TestWarmup:
    def test_warmup_improves_performance(self):
        program = generate_benchmark("m88ksim")
        cold = BaseMachine(MachineConfig(), [program]).run(
            max_instructions=1000)
        warm = BaseMachine(MachineConfig(), [program]).run(
            max_instructions=1000, warmup=15_000)
        assert warm.threads[0].ipc > cold.threads[0].ipc

    def test_warmup_touches_caches(self):
        program = generate_benchmark("swim")
        machine = BaseMachine(MachineConfig(), [program])
        machine.warm(5000)
        hierarchy = machine.hierarchies[0]
        assert hierarchy.l1i[0].contains(
            machine.cores[0].threads[0].code_addr(program.entry))

    def test_warmup_counts_no_stats(self):
        program = generate_benchmark("gcc")
        machine = BaseMachine(MachineConfig(), [program])
        machine.warm(5000)
        assert machine.cores[0].stats.retired_total == 0
        assert machine.hierarchies[0].l1i[0].stats.accesses == 0

    def test_lockstep_warms_both_hierarchies(self):
        program = generate_benchmark("gcc")
        machine = make_machine("lockstep", MachineConfig(), [program])
        machine.warm(3000)
        addr = machine.cores[0].threads[0].code_addr(program.entry)
        assert machine.hierarchies[0].l1i[0].contains(addr)
        assert machine.hierarchies[1].l1i[0].contains(addr)


class TestDrain:
    def test_stores_drain_after_halt(self):
        program = assemble("""
            ldi r1, 0x2000
            ldi r2, 123
            st r1, 0, r2
            halt
        """)
        machine = BaseMachine(MachineConfig(), [program])
        machine.run(max_instructions=100)
        thread = machine.cores[0].threads[0]
        assert machine.memory[thread.phys_addr(0x2000)] == 123
        assert not thread.store_queue

    def test_srt_drains_verified_stores_after_halt(self):
        program = assemble("""
            ldi r1, 0x2000
            ldi r2, 55
            st r1, 0, r2
            st r1, 8, r2
            halt
        """)
        machine = make_machine("srt", MachineConfig(), [program])
        machine.run(max_instructions=100)
        leading = machine.cores[0].threads[0]
        assert machine.memory[leading.phys_addr(0x2000)] == 55
        assert not leading.store_queue
        pair = machine.controller.pairs[0]
        assert pair.comparator.stats.comparisons == 2


class TestTargets:
    def test_per_thread_done_cycles_frozen(self):
        programs = [generate_benchmark("swim"), generate_benchmark("gcc")]
        machine = BaseMachine(MachineConfig(), programs)
        result = machine.run(max_instructions=500, warmup=3000)
        cycles = [t.cycles for t in result.threads]
        # The two programs finish at different cycles; each IPC is frozen
        # at its own completion point (Section 6.4 methodology).
        assert cycles[0] != cycles[1]
        assert all(t.retired == 500 for t in result.threads)

    def test_max_cycles_bounds_runaway(self):
        program = assemble("spin: br spin")  # infinite, retires plenty
        machine = BaseMachine(MachineConfig(), [program])
        result = machine.run(max_instructions=10**9, max_cycles=500)
        assert result.cycles <= 520  # bounded (+ drain grace is store-free)

    def test_machine_stats_include_threads(self):
        program = generate_benchmark("gcc")
        machine = BaseMachine(MachineConfig(), [program])
        result = machine.run(max_instructions=300, warmup=1000)
        assert "core0.t0.retired" in result.stats
        assert result.stats["core0.t0.retired"] >= 300
        assert "core0.line_mispredict_rate" in result.stats

    def test_fault_events_surface_in_result(self):
        program = generate_benchmark("gcc")
        machine = BaseMachine(MachineConfig(), [program])
        machine.report_fault(5, "test-kind", 0, detail="synthetic")
        result = machine.run(max_instructions=100, warmup=500)
        assert result.faults_detected == 1
        assert result.fault_events[0].kind == "test-kind"
