"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instructions import Op


class TestAssemble:
    def test_simple_program(self):
        program = assemble("""
            ldi r1, 42
            add r2, r1, r1
            halt
        """)
        assert len(program) == 3
        assert program.instructions[0].op is Op.LDI
        assert program.instructions[0].imm == 42
        assert program.instructions[1].source_regs == (1, 1)
        assert program.instructions[2].is_halt

    def test_labels_forward_and_backward(self):
        program = assemble("""
        top:
            addi r1, r1, -1
            bnez r1, top
            br end
            nop
        end:
            halt
        """)
        assert program.instructions[1].target == 0
        assert program.instructions[2].target == 4

    def test_label_on_same_line(self):
        program = assemble("loop: bnez r1, loop\nhalt")
        assert program.instructions[0].target == 0

    def test_memory_ops(self):
        program = assemble("""
            ld r4, r2, 16
            st r2, 8, r4
            membar
            halt
        """)
        ld, st, membar, _ = program.instructions
        assert ld.op is Op.LD and ld.imm == 16 and ld.ra == 2
        assert st.op is Op.ST and st.ra == 2 and st.rb == 4
        assert membar.is_membar

    def test_data_directive(self):
        program = assemble("""
            .data 0x1000 99
            ld r1, r0, 0x1000
            halt
        """)
        assert program.initial_memory[0x1000] == 99

    def test_call_ret(self):
        program = assemble("""
            call r62, sub
            halt
        sub:
            ret r62
        """)
        assert program.instructions[0].op is Op.CALL
        assert program.instructions[0].target == 2
        assert program.instructions[2].op is Op.RET

    def test_comments_ignored(self):
        program = assemble("nop ; this is a comment\n; full line\nhalt")
        assert len(program) == 2

    def test_negative_and_hex_immediates(self):
        program = assemble("addi r1, r1, -5\nldi r2, 0xFF\nhalt")
        assert program.instructions[0].imm == -5
        assert program.instructions[1].imm == 255

    def test_segment_directives_attach_metadata(self):
        program = assemble("""
            .segment 0x1000 0x1100
            .segment 0x2000 0x2100
            .shared 0x2000 0x2100
            halt
        """)
        assert program.metadata["data_segments"] == [
            (0x1000, 0x1100), (0x2000, 0x2100)]
        assert program.metadata["shared_segments"] == [(0x2000, 0x2100)]

    def test_no_segment_directive_no_metadata(self):
        program = assemble("halt")
        assert "data_segments" not in program.metadata
        assert "shared_segments" not in program.metadata


class TestAssembleErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="register"):
            assemble("add r1, r99, r2")

    def test_undefined_label_is_immediate_error(self):
        with pytest.raises(AssemblyError,
                           match=r"line 1: branch to undefined label "
                                 r"'nowhere'"):
            assemble("br nowhere")

    def test_undefined_label_lists_known_labels(self):
        with pytest.raises(AssemblyError, match="known labels: here"):
            assemble("here: nop\nbeqz r1, there\nhalt")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError,
                           match=r"line 2: duplicate label 'x' \(first "
                                 r"defined on line 1\)"):
            assemble("x: nop\nx: halt")

    def test_numeric_target_out_of_range(self):
        with pytest.raises(AssemblyError, match=r"line 1: branch target "
                                                r"9 is outside"):
            assemble("br 9\nhalt")

    def test_bad_segment_directive(self):
        with pytest.raises(AssemblyError, match=r"\.segment needs lo"):
            assemble(".segment 0x1000\nhalt")
        with pytest.raises(AssemblyError, match="empty or negative"):
            assemble(".shared 0x1100 0x1000\nhalt")

    def test_overlapping_segments_rejected(self):
        with pytest.raises(AssemblyError,
                           match=r"line 2: \.segment range \[0x10c0, "
                                 r"0x1200\) overlaps the \.segment "
                                 r"\[0x1000, 0x1100\) declared on line 1"):
            assemble(".segment 0x1000 0x1100\n"
                     ".segment 0x10C0 0x1200\nhalt")

    def test_overlapping_shared_rejected_regardless_of_order(self):
        # The later *address* is reported against the earlier one even
        # when declared first.
        with pytest.raises(AssemblyError,
                           match=r"line 3: \.shared range .* overlaps "
                                 r"the \.shared .* declared on line 2"):
            assemble(".segment 0x1000 0x3000\n"
                     ".shared 0x2000 0x2100\n"
                     ".shared 0x1000 0x2010\nhalt")

    def test_shared_outside_any_segment_rejected(self):
        with pytest.raises(AssemblyError,
                           match=r"line 1: \.shared range \[0x2000, "
                                 r"0x2100\) is not contained in any "
                                 r"declared \.segment"):
            assemble(".shared 0x2000 0x2100\nhalt")

    def test_shared_straddling_segment_boundary_rejected(self):
        with pytest.raises(AssemblyError, match="not contained"):
            assemble(".segment 0x1000 0x1100\n"
                     ".segment 0x2000 0x2100\n"
                     ".shared 0x10F0 0x2010\nhalt")

    def test_shared_coinciding_with_segment_is_legal(self):
        # Cross-kind overlap is the normal idiom (missing_membar.asm).
        program = assemble(".segment 0x2000 0x2100\n"
                           ".shared 0x2000 0x2100\nhalt")
        assert program.metadata["shared_segments"] == [(0x2000, 0x2100)]

    def test_adjacent_segments_are_legal(self):
        # Half-open ranges: [lo, hi) touching at hi is not an overlap.
        program = assemble(".segment 0x1000 0x1100\n"
                           ".segment 0x1100 0x1200\nhalt")
        assert program.metadata["data_segments"] == [
            (0x1000, 0x1100), (0x1100, 0x1200)]

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("add r1, r2")

    def test_empty_program(self):
        with pytest.raises(AssemblyError, match="no instructions"):
            assemble("; nothing here")
