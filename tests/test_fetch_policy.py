"""Tests for the thread-chooser fetch policies."""

from repro.core.config import MachineConfig
from repro.core.machine import BaseMachine
from repro.isa.generator import generate_benchmark


def run_two_threads(policy, instructions=500):
    config = MachineConfig()
    config.core.fetch_policy = policy
    programs = [generate_benchmark("gcc"), generate_benchmark("swim")]
    machine = BaseMachine(config, programs)
    result = machine.run(max_instructions=instructions, warmup=3000)
    return machine, result


class TestFetchPolicies:
    def test_rmb_policy_default(self):
        assert MachineConfig().core.fetch_policy == "rmb"

    def test_both_policies_complete(self):
        for policy in ("rmb", "icount"):
            _, result = run_two_threads(policy)
            assert all(t.retired == 500 for t in result.threads)

    def test_icount_balances_front_end(self):
        """True ICOUNT must keep both threads progressing — neither
        starves even when one is much slower."""
        _, result = run_two_threads("icount")
        ipcs = sorted(t.ipc for t in result.threads)
        assert ipcs[0] > 0.2 * ipcs[1]

    def test_chooser_metrics_actually_differ(self):
        """ICOUNT sees queue residents that the RMB metric ignores."""
        machine, _ = run_two_threads("icount", instructions=50)
        core = machine.cores[0]
        thread = core.threads[0]
        thread.iq_occupancy = 40  # pre-issue instructions in the queue
        icount_value = core.ibox._chooser_load(thread)
        core.config.fetch_policy = "rmb"
        rmb_value = core.ibox._chooser_load(thread)
        assert icount_value >= rmb_value + 40
