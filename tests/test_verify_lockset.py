"""Engine B: synthetic modules per rule, contract parsing, pragma
suppression, and the acceptance check that the shipped tree is clean."""

import textwrap

from repro.verify.lockset import (LOCKSET_TARGETS, Contract,
                                  analyze_lockset, analyze_modules,
                                  analyze_source)


def analyze(source, rel="serve/example.py"):
    return analyze_source(textwrap.dedent(source), rel)


def rules_of(findings):
    return sorted({f.rule for f in findings})


GUARDED = '''
import threading

class Counter:
    """A counter.

    Concurrency:
        guarded-by _lock: value
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def bump(self):
        with self._lock:
            self.value += 1
'''


class TestContractParsing:
    def test_guarded_by(self):
        contract = Contract.from_docstring(
            "X.\n\nConcurrency:\n    guarded-by _lock: a, b\n")
        assert contract.declared
        assert contract.guards == {"a": "_lock", "b": "_lock"}

    def test_all_entry_kinds_and_merging(self):
        contract = Contract.from_docstring(textwrap.dedent("""\
            X.

            Concurrency:
                guarded-by _lock: a
                guarded-by _other: b
                loop-confined: c, d
                loop-confined: e
                unguarded-ok: f
            """))
        assert contract.guards == {"a": "_lock", "b": "_other"}
        assert contract.loop_confined == {"c", "d", "e"}
        assert contract.unguarded_ok == {"f"}

    def test_block_ends_at_prose(self):
        contract = Contract.from_docstring(
            "Concurrency:\n    guarded-by _l: a\nOther prose.\n"
            "    guarded-by _l: b\n")
        assert contract.guards == {"a": "_l"}

    def test_no_block(self):
        assert not Contract.from_docstring("Just a docstring.").declared
        assert not Contract.from_docstring(None).declared


class TestS501:
    def test_clean_class(self):
        assert analyze(GUARDED) == []

    def test_unguarded_access_flagged(self):
        bad = '''
import threading

class Counter:
    """C.

    Concurrency:
        guarded-by _lock: value
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def peek(self):
        return self.value
'''
        findings = analyze(bad)
        assert rules_of(findings) == ["S501"]
        assert "guarded-by _lock" in findings[0].message

    def test_init_is_exempt(self):
        # __init__ writes the guarded field without the lock — fine.
        assert analyze(GUARDED) == []

    def test_caller_must_hold_precondition(self):
        src = '''
import threading

class C:
    """C.

    Concurrency:
        guarded-by _lock: value
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def _bump_locked(self):
        """Caller must hold _lock."""
        self.value += 1

    def bump(self):
        with self._lock:
            self._bump_locked()
'''
        assert analyze(src) == []

    def test_injected_lock_recognized(self):
        """A lock handed in through an annotated ``__init__`` parameter
        (the metrics registry's shared-lock idiom) counts as the
        class's lock: guarded accesses under it are clean, and the
        same class without the ``with`` is flagged."""
        clean = '''
import threading

class Metric:
    """M.

    Concurrency:
        guarded-by _lock: value
    """

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0

    def bump(self):
        with self._lock:
            self.value += 1

    def _peek_locked(self):
        """Caller must hold `_lock`."""
        return self.value
'''
        assert analyze(clean) == []
        bad = clean.replace("        with self._lock:\n"
                            "            self.value += 1",
                            "        self.value += 1")
        assert rules_of(analyze(bad)) == ["S501"]

    def test_undeclared_write_flagged(self):
        src = '''
import threading

class C:
    """C.

    Concurrency:
        guarded-by _lock: value
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def grow(self):
        self.extra = 1
'''
        findings = analyze(src)
        assert rules_of(findings) == ["S501"]
        assert "missing from the class" in findings[0].message

    def test_inference_mode(self):
        src = '''
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0

    def locked(self):
        with self._lock:
            self.n += 1

    def racy(self):
        self.n = 5
'''
        findings = analyze(src)
        assert rules_of(findings) == ["S501"]

    def test_loop_confined_field_in_off_loop_method(self):
        src = '''
import asyncio

class S:
    """S.

    Concurrency:
        loop-confined: jobs
    """

    def __init__(self):
        self.jobs = {}

    def _work(self):
        self.jobs["x"] = 1  # runs on an executor thread

    async def go(self, loop):
        await loop.run_in_executor(None, self._work)
'''
        findings = analyze(src)
        assert rules_of(findings) == ["S501"]
        assert "off-loop" in findings[0].message

    def test_module_level_globals(self):
        src = '''
"""M.

Concurrency:
    guarded-by _LOCK: _REGISTRY
"""

import threading

_REGISTRY = {}
_LOCK = threading.Lock()


def good(key):
    with _LOCK:
        _REGISTRY[key] = 1


def bad(key):
    return _REGISTRY.get(key)
'''
        findings = analyze(src)
        assert rules_of(findings) == ["S501"]
        assert findings[0].message.startswith("global _REGISTRY")


class TestS502:
    def test_in_class_cycle(self):
        src = '''
import threading

class C:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def one(self):
        with self._a:
            with self._b:
                pass

    def two(self):
        with self._b:
            with self._a:
                pass
'''
        findings = analyze(src)
        assert rules_of(findings) == ["S502"]
        assert "C._a" in findings[0].message
        assert "C._b" in findings[0].message

    def test_consistent_order_is_clean(self):
        src = '''
import threading

class C:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def one(self):
        with self._a:
            with self._b:
                pass

    def two(self):
        with self._a:
            with self._b:
                pass
'''
        assert analyze(src) == []

    def test_cross_module_cycle_through_members(self):
        store = '''
import threading

class Store:
    def __init__(self, engine: "Engine"):
        self._slock = threading.Lock()
        self.engine = engine

    def sync(self):
        with self._slock:
            self.engine.kick()
'''
        engine = '''
import threading

class Engine:
    def __init__(self):
        self._elock = threading.Lock()
        self.store = Store(self)

    def flush(self):
        with self._elock:
            self.store.sync()

    def kick(self):
        with self._elock:
            pass
'''
        findings = analyze_modules([
            ("campaign/store.py", textwrap.dedent(store)),
            ("campaign/engine.py", textwrap.dedent(engine))])
        assert rules_of(findings) == ["S502"]

    def test_self_call_one_level(self):
        src = '''
import threading

class C:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def outer(self):
        with self._a:
            self.inner()

    def inner(self):
        with self._b:
            self.outer2()

    def outer2(self):
        with self._b:
            self.locked_a()

    def locked_a(self):
        with self._a:
            pass
'''
        # a->b (outer holding a calls inner) and b->a (outer2 holding b
        # calls locked_a): cycle through one-level call edges.
        findings = analyze(src)
        assert rules_of(findings) == ["S502"]


class TestS503:
    def test_blocking_calls_under_lock(self):
        src = '''
import threading
import time

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.evt = threading.Event()

    def bad(self, worker):
        with self._lock:
            self.evt.wait()
            time.sleep(0.1)
            worker.join()
'''
        findings = analyze(src)
        assert [f.rule for f in findings] == ["S503", "S503", "S503"]

    def test_condition_wait_on_held_condition_is_clean(self):
        src = '''
import threading

class C:
    def __init__(self):
        self._cond = threading.Condition()

    def waiter(self):
        with self._cond:
            self._cond.wait()
'''
        assert analyze(src) == []

    def test_str_join_not_flagged(self):
        src = '''
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()

    def render(self, parts):
        with self._lock:
            return ", ".join(parts)
'''
        assert analyze(src) == []

    def test_queue_get_under_lock(self):
        src = '''
import threading
from queue import Queue

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.inbox = Queue()

    def bad(self):
        with self._lock:
            return self.inbox.get()
'''
        findings = analyze(src)
        assert rules_of(findings) == ["S503"]

    def test_dict_get_not_flagged(self):
        src = '''
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.table = {}

    def fine(self):
        with self._lock:
            return self.table.get("k")
'''
        assert analyze(src) == []


class TestSuppression:
    def test_line_pragma(self):
        src = '''
import threading

class C:
    """C.

    Concurrency:
        guarded-by _lock: value
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def peek(self):
        return self.value  # simlint: disable=S501
'''
        assert analyze(src) == []

    def test_file_pragma(self):
        src = '''
# simlint: disable-file=S501
import threading

class C:
    """C.

    Concurrency:
        guarded-by _lock: value
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def peek(self):
        return self.value

    def poke(self):
        self.value = 9
'''
        assert analyze(src) == []


class TestShippedTree:
    def test_targets_exist(self):
        from repro.analysis.simlint import package_root
        base = package_root()
        for rel in LOCKSET_TARGETS:
            assert (base / rel).exists(), rel

    def test_shipped_tree_is_clean(self):
        """Acceptance: `repro verify lockset --strict` exits 0."""
        findings = analyze_lockset()
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_shipped_tree_declares_contracts(self):
        # The serve stack must actually declare its discipline — an
        # empty analysis must come from checked contracts, not from
        # nothing to check.
        from repro.analysis.simlint import package_root
        base = package_root()
        for rel in ("serve/scheduler.py", "serve/cache.py",
                    "serve/client.py"):
            assert "Concurrency:" in (base / rel).read_text(
                encoding="utf-8"), rel
