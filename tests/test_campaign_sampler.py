"""Stratified site sampling: determinism, coverage of strata, validity."""

from collections import Counter

from repro.campaign.sampler import cores_for, enumerate_tasks
from repro.campaign.spec import CampaignSpec
from repro.core.faults import fault_from_dict
from repro.pipeline.ebox import POOL_SIZES


def spec(**overrides) -> CampaignSpec:
    base = dict(kinds=("base", "lockstep"), workloads=("gcc", "swim"),
                models=("transient-result", "transient-register",
                        "stuck-unit"),
                injections=4, instructions=300, warmup=500)
    base.update(overrides)
    return CampaignSpec(**base)


class TestEnumeration:
    def test_every_stratum_gets_exactly_n_draws(self):
        tasks = enumerate_tasks(spec())
        per_stratum = Counter((t.kind, t.workload, t.model) for t in tasks)
        assert len(per_stratum) == 12
        assert set(per_stratum.values()) == {4}

    def test_indices_are_dense_and_ordered(self):
        tasks = enumerate_tasks(spec())
        assert [t.index for t in tasks] == list(range(len(tasks)))

    def test_task_ids_unique(self):
        tasks = enumerate_tasks(spec())
        assert len({t.task_id for t in tasks}) == len(tasks)


class TestDeterminism:
    def test_same_spec_same_tasks(self):
        assert enumerate_tasks(spec()) == enumerate_tasks(spec())

    def test_seed_changes_sites_but_not_shape(self):
        a = enumerate_tasks(spec(seed=0))
        b = enumerate_tasks(spec(seed=1))
        assert len(a) == len(b)
        assert [t.fault for t in a] != [t.fault for t in b]

    def test_draws_within_stratum_differ(self):
        tasks = [t for t in enumerate_tasks(spec())
                 if (t.kind, t.workload, t.model)
                 == ("base", "gcc", "transient-result")]
        assert len({t.fault for t in tasks}) > 1


class TestSiteValidity:
    def test_every_site_rebuilds_into_a_fault(self):
        for task in enumerate_tasks(spec()):
            fault = fault_from_dict(task.fault_dict())
            assert fault is not None

    def test_transient_sites_within_strike_window(self):
        s = spec(strike_window=(25, 75))
        for task in enumerate_tasks(s):
            site = task.fault_dict()
            if "cycle" in site:
                assert 25 <= site["cycle"] <= 75

    def test_bits_are_word_sized(self):
        for task in enumerate_tasks(spec()):
            assert 0 <= task.fault_dict()["bit"] <= 63

    def test_cores_respect_machine_kind(self):
        assert cores_for("base") == (0,)
        assert cores_for("srt") == (0,)
        assert set(cores_for("lockstep")) == {0, 1}
        seen = {task.fault_dict()["core_index"]
                for task in enumerate_tasks(
                    spec(kinds=("lockstep",), injections=32,
                         models=("transient-result",)))}
        assert seen == {0, 1}

    def test_stuck_unit_indices_fit_pools(self):
        for task in enumerate_tasks(spec(models=("stuck-unit",),
                                         injections=32)):
            fault = fault_from_dict(task.fault_dict())
            assert 0 <= fault.unit_index < POOL_SIZES[fault.fu_class]

    def test_register_sites_fit_physical_file(self):
        for task in enumerate_tasks(spec(models=("transient-register",),
                                         injections=32)):
            reg = task.fault_dict()["reg"]
            assert 32 <= reg < 512
