"""Unit tests for the line prediction queue and chunk aggregator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lpq import ChunkAggregator, LinePredictionQueue, LpqChunk


def chunk(start, length=4, avail=0):
    pcs = list(range(start, start + length))
    return LpqChunk(start_pc=start, pcs=pcs, next_pc=start + length,
                    half_hints=[None] * length, available_cycle=avail)


class TestTwoHeadProtocol:
    """The Figure 4 active-head / recovery-head protocol."""

    def test_peek_ack_commit(self):
        lpq = LinePredictionQueue(capacity=4)
        lpq.push(chunk(0))
        lpq.push(chunk(4))
        first = lpq.peek_active(now=0)
        assert first.start_pc == 0
        lpq.ack()
        assert lpq.peek_active(now=0).start_pc == 4
        lpq.commit()
        assert lpq.stats.chunks_fetched == 1

    def test_rollback_resends_prediction(self):
        """Icache miss: the same prediction must be re-sent."""
        lpq = LinePredictionQueue(capacity=4)
        lpq.push(chunk(0))
        lpq.ack()                       # address driver accepted
        lpq.rollback()                  # cache miss
        assert lpq.stats.rollbacks == 1
        assert lpq.peek_active(now=0).start_pc == 0

    def test_rollback_to_recovery_head_after_partial_progress(self):
        lpq = LinePredictionQueue(capacity=4)
        lpq.push(chunk(0))
        lpq.push(chunk(4))
        lpq.ack()
        lpq.commit()                    # chunk 0 safely fetched
        lpq.ack()                       # chunk 4 accepted...
        lpq.rollback()                  # ...but missed
        assert lpq.peek_active(now=0).start_pc == 4

    def test_availability_delay_respected(self):
        lpq = LinePredictionQueue(capacity=4)
        lpq.push(chunk(0, avail=10))
        assert lpq.peek_active(now=9) is None
        assert lpq.peek_active(now=10) is not None

    def test_ack_without_prediction_raises(self):
        with pytest.raises(RuntimeError):
            LinePredictionQueue().ack()

    def test_commit_past_active_raises(self):
        lpq = LinePredictionQueue()
        lpq.push(chunk(0))
        with pytest.raises(RuntimeError):
            lpq.commit()

    def test_capacity_overflow_raises(self):
        lpq = LinePredictionQueue(capacity=1)
        lpq.push(chunk(0))
        assert lpq.full
        with pytest.raises(RuntimeError):
            lpq.push(chunk(4))


class TestChunkAggregator:
    def make(self, capacity=8, chunk_size=8, timeout=24, wrap=1000):
        lpq = LinePredictionQueue(capacity=capacity)
        agg = ChunkAggregator(lpq, chunk_size=chunk_size, forward_latency=0,
                              wrap=wrap, flush_timeout=timeout)
        return lpq, agg

    def test_contiguous_run_fills_one_chunk(self):
        lpq, agg = self.make()
        for pc in range(8):
            agg.add(pc, pc + 1, queue_half=pc % 2, now=pc)
        assert lpq.stats.chunks_pushed == 1
        pushed = lpq.peek_active(now=100)
        assert pushed.pcs == list(range(8))
        assert pushed.next_pc == 8
        assert pushed.half_hints == [0, 1] * 4

    def test_taken_branch_terminates_chunk(self):
        lpq, agg = self.make()
        agg.add(10, 11, None, now=0)
        agg.add(11, 50, None, now=1)   # control transfer to 50
        assert lpq.stats.chunks_pushed == 1
        pushed = lpq.peek_active(now=100)
        assert pushed.pcs == [10, 11]
        assert pushed.next_pc == 50

    def test_mispredicted_fallthrough_keeps_chunk_growing(self):
        """Section 4.4.2: a branch that actually fell through extends the
        trailing chunk."""
        lpq, agg = self.make()
        agg.add(10, 11, None, now=0)   # branch, fell through
        agg.add(11, 12, None, now=1)
        agg.add(12, 13, None, now=2)
        assert lpq.stats.chunks_pushed == 0
        assert len(agg) == 3

    def test_membar_flush(self):
        lpq, agg = self.make()
        agg.add(10, 11, None, now=0)
        agg.flush(now=1, reason="membar")
        assert lpq.stats.chunks_pushed == 1
        assert lpq.stats.flush_membar == 1

    def test_timeout_flush(self):
        lpq, agg = self.make(timeout=5)
        agg.add(10, 11, None, now=0)
        agg.tick(now=4)
        assert lpq.stats.chunks_pushed == 0
        agg.tick(now=5)
        assert lpq.stats.chunks_pushed == 1
        assert lpq.stats.flush_timeout == 1

    def test_flush_blocked_when_lpq_full(self):
        lpq, agg = self.make(capacity=1)
        for pc in range(8):
            agg.add(pc, pc + 1, None, now=0)    # fills the only LPQ slot
        agg.add(8, 9, None, now=1)
        agg.flush(now=2)
        assert lpq.stats.full_stalls >= 1
        assert len(agg) == 1                    # still pending

    def test_wrap_around_is_contiguous(self):
        """The PC space wraps modulo the program length, so 99 -> 0 with
        wrap=100 continues the chunk rather than terminating it."""
        lpq, agg = self.make(wrap=100)
        agg.add(99, 0, None, now=0)
        assert lpq.stats.chunks_pushed == 0
        agg.add(0, 1, None, now=1)
        assert len(agg) == 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=12), min_size=1,
                    max_size=12))
    def test_stream_reconstruction_property(self, run_lengths):
        """Concatenating all pushed chunks reproduces the retired path
        exactly, with every chunk at most 8 instructions."""
        lpq = LinePredictionQueue(capacity=256)
        agg = ChunkAggregator(lpq, chunk_size=8, forward_latency=0,
                              wrap=1 << 30)
        path = []
        pc = 0
        for run in run_lengths:
            for offset in range(run):
                path.append(pc)
                next_pc = pc + 1 if offset < run - 1 else pc + 100
                agg.add(pc, next_pc, None, now=len(path))
                pc = next_pc
        agg.flush(now=10_000)
        collected = []
        while lpq.peek_active(now=1 << 30) is not None:
            chunk_out = lpq.peek_active(now=1 << 30)
            assert len(chunk_out) <= 8
            collected.extend(chunk_out.pcs)
            lpq.ack()
            lpq.commit()
        assert collected == path
