"""Flow-rule acceptance: every seeded defect in the fixture package is
detected with the right rule id and line, every negative and suppressed
case stays silent, and the JSON envelope matches the checked-in golden.
Also pins the shipped tree: the flow engines find nothing to report."""

import json
from pathlib import Path

import pytest

from repro.analysis import report as rpt
from repro.analysis.cli import cmd_lint
from repro.analysis.flow.rules import analyze_source
from repro.analysis.simlint import lint_package

FIXTURES = Path(__file__).parent / "fixtures" / "flow"
FIXPKG = FIXTURES / "flowpkg"

EXPECTED = [
    ("S601", "s601.py", 10),
    ("S601", "s601.py", 14),
    ("S602", "s602.py", 12),
    ("S603", "s603.py", 8),
    ("S603", "s603.py", 9),
    ("S701", "s701.py", 9),
    ("S702", "s702.py", 13),
    ("U001", "u001.py", 11),
    ("U001", "u001.py", 18),
]


@pytest.fixture(scope="module")
def findings():
    return lint_package(root=FIXPKG, engines=["flow", "usage"])


class TestFixturePackage:
    def test_exact_findings(self, findings):
        got = [(f.rule, f.path, f.line) for f in findings]
        assert got == EXPECTED

    def test_chain_message_names_the_path(self, findings):
        chained = next(f for f in findings
                       if f.rule == "S601" and f.line == 14)
        assert "load_indirect -> read_config" in chained.message
        assert "helpers.py:9" in chained.message

    def test_off_loop_origin_cited(self, findings):
        s603 = next(f for f in findings if f.rule == "S603")
        assert "s603.py:24" in s603.message

    def test_suppressed_and_negative_lines_silent(self, findings):
        lines = {(f.path, f.line) for f in findings}
        # waived positives (pragma'd) and true negatives
        for silent in [("s601.py", 20), ("s601.py", 25), ("s601.py", 29),
                       ("s602.py", 16), ("s602.py", 20), ("s602.py", 24),
                       ("s603.py", 15), ("s603.py", 18),
                       ("s701.py", 17), ("s701.py", 23), ("s701.py", 32),
                       ("s701.py", 38), ("s701.py", 44),
                       ("s702.py", 23),
                       ("u001.py", 8), ("u001.py", 15)]:
            assert silent not in lines, silent

    def test_unjudged_engine_pragma_not_flagged(self, findings):
        # The S501 pragma belongs to the lockset engine; a flow-only
        # run must not declare it stale.
        assert not any(f.rule == "U001" and f.line == 15
                       for f in findings)

    def test_golden_envelope(self, findings):
        detail = rpt.lint_to_dict(findings)
        payload = rpt.envelope("lint", False, detail.pop("findings"),
                               strict=True, **detail)
        golden = json.loads((FIXTURES / "expected.json").read_text())
        assert json.loads(rpt.to_json(payload)) == golden


class TestAnalyzeSource:
    def run(self, source):
        return analyze_source(source, "mod.py")

    def test_await_is_not_blocking(self):
        findings = self.run(
            "import asyncio\n"
            "async def f(lock):\n"
            "    async with lock:\n"
            "        await asyncio.sleep(0)\n")
        assert findings == []

    def test_mkstemp_fd_consumed_path_leaks(self):
        findings = self.run(
            "import tempfile, os\n"
            "def f(data):\n"
            "    fd, tmp = tempfile.mkstemp()\n"
            "    os.fdopen(fd, 'wb').write(data)\n")
        assert [f.rule for f in findings] == ["S701"]
        assert findings[0].line == 3

    def test_executor_hop_clears_s601(self):
        findings = self.run(
            "import asyncio, time\n"
            "async def f():\n"
            "    loop = asyncio.get_running_loop()\n"
            "    await loop.run_in_executor(None, time.sleep, 1)\n")
        assert findings == []


class TestShippedTree:
    def test_flow_engines_clean_on_repro(self):
        findings = lint_package(engines=["flow", "usage"])
        assert [(f.path, f.line, f.rule) for f in findings] == []


class TestOnlyFlag:
    def test_only_s6_s7_json(self, capsys):
        rc = cmd_lint(["--only", "S6,S7", "--format", "json",
                       str(FIXPKG)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["tool"] == "lint"
        assert payload["version"] == rpt.SCHEMA_VERSION
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"S601", "S602", "S603", "S701", "S702"}

    def test_only_unknown_family_exits_2(self, capsys):
        rc = cmd_lint(["--only", "S9", str(FIXPKG)])
        assert rc == 2
        assert "no known rule family" in capsys.readouterr().err
