"""Store resilience under chaos: the torn-tail property (a kill at
*every* byte offset leaves a recoverable canonical prefix), disk-full
deferral, and torn-write retry without duplicate rows."""

import pytest

from repro.campaign.store import (APPEND_ATTEMPTS, CampaignStore,
                                  canonical_record)
from repro.chaos import ChaosPlan, ChaosRule, armed


def make_records(n):
    return [{"task_id": f"t{i:03d}", "outcome": "detected", "cycle": i}
            for i in range(n)]


RECORDS = make_records(4)
LINES = [canonical_record(r) + "\n" for r in RECORDS]
FULL = "".join(LINES).encode("utf-8")


def store_at(tmp_path, name="camp"):
    out = tmp_path / name
    out.mkdir(parents=True, exist_ok=True)
    return CampaignStore(out)


class TestTornTailProperty:
    def test_kill_at_every_byte_offset_recovers_canonical_prefix(
            self, tmp_path):
        """Satellite acceptance: for every prefix length of the results
        file — i.e. a writer killed at every possible byte — the store
        recovers exactly the longest whole-record prefix, and appending
        the missing records converges on the canonical full file."""
        for cut in range(len(FULL) + 1):
            out = tmp_path / f"cut{cut:04d}"
            out.mkdir()
            store = CampaignStore(out)
            store.results_path.write_bytes(FULL[:cut])

            recovered = store.records()
            # Never a torn or reordered row: always records[:n].
            whole = FULL[:cut].rfind(b"\n") + 1
            expected = FULL[:whole].decode().count("\n")
            assert recovered == RECORDS[:expected], f"cut at {cut}"

            # Resume: append only the missing records (what the engine
            # does after completed_ids()), and the bytes converge.
            missing = RECORDS[len(recovered):]
            store.append(missing)
            assert store.results_path.read_bytes() == FULL, \
                f"cut at {cut} did not converge"

    def test_repair_is_idempotent(self, tmp_path):
        store = store_at(tmp_path)
        store.results_path.write_bytes(FULL + b'{"torn": ')
        assert store.records() == RECORDS
        assert store.records() == RECORDS
        assert store.results_path.read_bytes() == FULL


class TestDiskFaults:
    def test_disk_full_defers_batch_then_flushes(self, tmp_path):
        store = store_at(tmp_path)
        store.append(RECORDS[:2])
        plan = ChaosPlan(rules=(
            ChaosRule("campaign.store.append", "disk-full",
                      max_attempt=APPEND_ATTEMPTS),))
        with armed(plan):
            store.append(RECORDS[2:])  # every attempt fails: defer
        assert store.pending_batches == 1
        assert store.write_errors == APPEND_ATTEMPTS
        assert store.records() == RECORDS[:2]  # no partial rows
        # Disk recovers: the deferred batch lands, in canonical order.
        assert store.flush() is True
        assert store.pending_batches == 0
        assert store.results_path.read_bytes() == FULL

    def test_torn_write_retries_without_duplicates(self, tmp_path):
        store = store_at(tmp_path)
        plan = ChaosPlan(seed=2, rules=(
            ChaosRule("campaign.store.append", "torn-write",
                      max_attempt=0),))  # first attempt only
        with armed(plan):
            store.append(RECORDS)  # tears, rolls back, retry lands
        assert store.write_errors == 1
        assert store.pending_batches == 0
        assert store.results_path.read_bytes() == FULL

    def test_deferred_batches_preserve_arrival_order(self, tmp_path):
        store = store_at(tmp_path)
        plan = ChaosPlan(rules=(
            ChaosRule("campaign.store.append", "disk-full",
                      max_attempt=APPEND_ATTEMPTS),))
        with armed(plan):
            store.append(RECORDS[:1])
            store.append(RECORDS[1:3])
        assert store.pending_batches == 2
        store.append(RECORDS[3:])  # disk is back; drains everything
        assert store.results_path.read_bytes() == FULL

    def test_progress_write_degrades_to_warning(self, tmp_path):
        store = store_at(tmp_path)
        plan = ChaosPlan(rules=(
            ChaosRule("campaign.store.progress", "disk-full",
                      max_attempt=99),))
        with armed(plan):
            store.write_progress({"done": 1})  # must not raise
            store.write_progress({"done": 2})
        assert store.progress_errors == 2
        assert store.load_progress() is None
        store.write_progress({"done": 3})
        assert store.load_progress() == {"done": 3}

    def test_no_tmp_files_leak_on_progress_fault(self, tmp_path):
        store = store_at(tmp_path)
        plan = ChaosPlan(rules=(
            ChaosRule("campaign.store.progress", "io-error",
                      max_attempt=99),))
        with armed(plan):
            store.write_progress({"done": 1})
        assert list(store.dir.glob("*.tmp")) == []
