"""Metrics registry: histogram accuracy, snapshot consistency, and the
ServiceCounters tear-freedom regression test (8 writer threads hammer
invariant-preserving atomic updates while readers assert the lifecycle
invariant never appears torn)."""

import pickle
import random
import threading

import pytest

from repro.obs.metrics import (SERVICE_COUNTER_FIELDS, MetricsRegistry,
                               ServiceCounters, bucket_edges, bucket_index,
                               quantile_oracle, registry)


class TestCounterGauge:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 5

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("g")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == pytest.approx(11.5)

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")

    def test_default_registry_is_process_wide(self):
        assert registry() is registry()


class TestHistogram:
    def test_bucket_edges_cover_value(self):
        for value in (1e-6, 0.004, 0.7, 1.0, 3.0, 1234.5):
            low, high = bucket_edges(bucket_index(value))
            assert low < value <= high * (1 + 1e-12)

    def test_quantiles_within_relative_error_bound(self):
        """Log-bucket estimates stay within ~4.5% of the exact
        nearest-rank quantile (the documented half-bucket bound)."""
        rng = random.Random(7)
        values = [10 ** rng.uniform(-4, 1) for _ in range(5000)]
        reg = MetricsRegistry()
        hist = reg.histogram("latency")
        for value in values:
            hist.observe(value)
        for q in (0.5, 0.9, 0.99):
            exact = quantile_oracle(values, q)
            estimate = hist.quantile(q)
            assert abs(estimate - exact) / exact < 0.045, (
                f"p{q * 100:.0f}: estimate {estimate} vs exact {exact}")

    def test_zeros_land_in_dedicated_bucket(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        for _ in range(9):
            hist.observe(0.0)
        hist.observe(5.0)
        assert hist.count == 10
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(1.0) == pytest.approx(5.0, rel=0.045)

    def test_quantiles_clamped_to_observed_range(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        hist.observe(3.0)
        for q in (0.5, 0.9, 0.99):
            assert hist.quantile(q) == pytest.approx(3.0)

    def test_empty_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        full = reg.snapshot()["histograms"]["h"]
        assert full["count"] == 0
        assert full["p50"] == 0.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(1.5)
        hist = reg.histogram("c")
        hist.observe(0.25)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 1.5}
        entry = snap["histograms"]["c"]
        assert entry["count"] == 1
        assert entry["min"] == entry["max"] == 0.25
        assert set(entry) == {"count", "sum", "min", "max",
                              "p50", "p90", "p99"}


class TestServiceCounters:
    def test_zero_arg_construction_and_fields(self):
        counters = ServiceCounters()
        assert counters.to_dict() == {name: 0
                                      for name in SERVICE_COUNTER_FIELDS}
        assert counters.accepted == 0
        assert counters.consistent()

    def test_atomic_add_and_accessors(self):
        counters = ServiceCounters()
        counters.add(accepted=1, cache_hits=1, completed=1)
        assert counters.accepted == 1
        assert counters.cache_hits == 1
        assert counters.consistent()

    def test_unknown_and_negative_rejected(self):
        counters = ServiceCounters()
        with pytest.raises(TypeError):
            counters.add(bogus=1)
        with pytest.raises(TypeError):
            ServiceCounters(bogus=1)
        with pytest.raises(ValueError):
            counters.add(accepted=-1)

    def test_fields_are_read_only(self):
        """A stray `counters.accepted += 1` must fail loudly, not race."""
        counters = ServiceCounters()
        with pytest.raises(AttributeError):
            counters.accepted = 5

    def test_pickle_round_trip(self):
        counters = ServiceCounters(accepted=3, completed=2, failed=1)
        clone = pickle.loads(pickle.dumps(counters))
        assert clone == counters
        assert clone.to_dict() == counters.to_dict()
        clone.add(accepted=1)  # the re-created lock works
        assert clone.accepted == 4

    def test_repr_and_eq(self):
        counters = ServiceCounters(accepted=1)
        assert "accepted=1" in repr(counters)
        assert counters == ServiceCounters(accepted=1)
        assert counters != ServiceCounters()

    def test_compat_import_path(self):
        """The historical import path still serves the same class."""
        from repro.core.metrics import ServiceCounters as Legacy
        assert Legacy is ServiceCounters

    def test_invariant_never_tears_under_hammer(self):
        """Regression test for the torn-read race in `/metrics`.

        8 writer threads apply invariant-preserving atomic groups
        (accepted goes up in the same add() as its settlement field);
        2 reader threads snapshot via to_dict() the whole time and
        assert accepted == completed + failed + cancelled in every
        snapshot.  Per-field reads (the old dataclass shape) tear
        within milliseconds under this load.
        """
        counters = ServiceCounters()
        stop = threading.Event()
        torn = []

        settlements = (dict(accepted=1, completed=1),
                       dict(accepted=1, failed=1),
                       dict(accepted=1, cancelled=1),
                       dict(accepted=1, completed=1, cache_hits=1))

        def writer(index):
            deltas = settlements[index % len(settlements)]
            for _ in range(3000):
                counters.add(**deltas)

        def reader():
            while not stop.is_set():
                snap = counters.to_dict()
                if snap["accepted"] != (snap["completed"] + snap["failed"]
                                        + snap["cancelled"]):
                    torn.append(snap)
                    return

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer, args=(i,))
                   for i in range(8)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()

        assert not torn, f"torn snapshot observed: {torn[0]}"
        final = counters.to_dict()
        assert final["accepted"] == 8 * 3000
        assert counters.consistent()


class TestQuantileOracle:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert quantile_oracle(values, 0.5) == 2.0
        assert quantile_oracle(values, 0.99) == 4.0
        assert quantile_oracle([], 0.5) == 0.0
