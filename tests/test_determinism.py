"""Determinism guarantees: identical inputs produce identical runs."""

from repro.core.config import MachineConfig
from repro.core.machine import make_machine
from repro.isa.generator import generate_benchmark


def run_once(kind, name="gcc", instructions=400, **kwargs):
    machine = make_machine(kind, MachineConfig(), [generate_benchmark(name)],
                           **kwargs)
    result = machine.run(max_instructions=instructions, warmup=2000)
    stats = machine.cores[0].threads[0].stats
    return (result.cycles,
            tuple(t.cycles for t in result.threads),
            tuple(t.ipc for t in result.threads),
            stats.branch_mispredicts, stats.squashed_uops)


class TestDeterminism:
    def test_base_machine_bit_identical(self):
        assert run_once("base") == run_once("base")

    def test_srt_machine_bit_identical(self):
        assert run_once("srt") == run_once("srt")

    def test_crt_machine_bit_identical(self):
        assert run_once("crt") == run_once("crt")

    def test_lockstep_machine_bit_identical(self):
        assert run_once("lockstep") == run_once("lockstep")

    def test_different_seeds_differ(self):
        a = make_machine("base", MachineConfig(),
                         [generate_benchmark("gcc", seed=0)])
        b = make_machine("base", MachineConfig(),
                         [generate_benchmark("gcc", seed=1)])
        ra = a.run(max_instructions=400, warmup=2000)
        rb = b.run(max_instructions=400, warmup=2000)
        assert ra.threads[0].cycles != rb.threads[0].cycles

    def test_config_does_not_mutate_across_runs(self):
        config = MachineConfig()
        snapshot = config.to_json()
        make_machine("srt", config, [generate_benchmark("gcc")]).run(
            max_instructions=200, warmup=500)
        assert config.to_json() == snapshot

    def test_memory_image_identical_across_runs(self):
        machines = []
        for _ in range(2):
            machine = make_machine("srt", MachineConfig(),
                                   [generate_benchmark("vortex")])
            machine.run(max_instructions=400, warmup=1500)
            machines.append(machine)
        assert machines[0].memory == machines[1].memory
