"""SMT behaviour of the base core: sharing, partitioning, isolation."""

from repro.core.config import MachineConfig
from repro.core.machine import BaseMachine
from repro.isa.assembler import assemble
from repro.isa.generator import generate_benchmark


def counting_program(step):
    return assemble(f"""
        ldi r1, 0
        ldi r2, 0x2000
    loop:
        addi r1, r1, {step}
        st r2, 0, r1
        br loop
    """, name=f"count{step}")


class TestMultithreading:
    def test_two_threads_progress_concurrently(self):
        machine = BaseMachine(MachineConfig(), [counting_program(1),
                                                counting_program(3)])
        result = machine.run(max_instructions=300, max_cycles=50_000)
        assert all(t.retired == 300 for t in result.threads)

    def test_address_spaces_isolated(self):
        """Both programs store to 0x2000; the images must not collide."""
        machine = BaseMachine(MachineConfig(), [counting_program(1),
                                                counting_program(3)])
        machine.run(max_instructions=300, max_cycles=50_000)
        t0, t1 = machine.cores[0].threads
        v0 = machine.memory.get(t0.phys_addr(0x2000))
        v1 = machine.memory.get(t1.phys_addr(0x2000))
        assert v0 is not None and v1 is not None
        assert v0 % 1 == 0 and v1 % 3 == 0
        assert t0.phys_addr(0x2000) != t1.phys_addr(0x2000)

    def test_queue_partitioning(self):
        machine = BaseMachine(MachineConfig(), [counting_program(1),
                                                counting_program(3)])
        for thread in machine.cores[0].threads:
            assert thread.lq_capacity == 32
            assert thread.sq_capacity == 32

    def test_four_thread_partitioning(self):
        programs = [generate_benchmark(n) for n in
                    ("gcc", "go", "ijpeg", "swim")]
        machine = BaseMachine(MachineConfig(), programs)
        for thread in machine.cores[0].threads:
            assert thread.lq_capacity == 16
            assert thread.sq_capacity == 16

    def test_single_thread_gets_everything(self):
        machine = BaseMachine(MachineConfig(), [counting_program(1)])
        thread = machine.cores[0].threads[0]
        assert thread.lq_capacity == 64
        assert thread.sq_capacity == 64

    def test_context_limit_enforced(self):
        programs = [counting_program(i) for i in range(1, 6)]
        try:
            BaseMachine(MachineConfig(), programs)
            assert False, "expected failure with five threads"
        except ValueError:
            pass

    def test_base2_duplicates_with_separate_spaces(self):
        program = generate_benchmark("gcc")
        machine = BaseMachine(MachineConfig(), [program], duplicate=True)
        threads = machine.cores[0].threads
        assert len(threads) == 2
        assert threads[0].asid != threads[1].asid

    def test_smt_throughput_exceeds_single_thread(self):
        """Two independent programs on SMT must beat either alone in
        combined IPC (the SMT premise)."""
        pa, pb = generate_benchmark("gcc"), generate_benchmark("swim")
        single = BaseMachine(MachineConfig(), [pa]).run(
            max_instructions=800, warmup=4000)
        both = BaseMachine(MachineConfig(), [pa, pb]).run(
            max_instructions=800, warmup=4000)
        assert both.total_ipc > single.total_ipc
