"""End-to-end ``python -m repro campaign ...`` CLI tests."""

import pytest

from repro.__main__ import main

RUN_ARGS = ["--kinds", "srt", "--workloads", "m88ksim",
            "--models", "transient-result", "--injections", "2",
            "--instructions", "120", "--warmup", "300"]


def run_campaign(out, extra=None):
    return main(["campaign", "run", "--out", str(out)] + RUN_ARGS
                + (extra or []))


class TestCampaignCli:
    def test_run_then_status_then_report(self, tmp_path, capsys):
        out = tmp_path / "c"
        assert run_campaign(out) == 0
        assert "2/2 injections complete" in capsys.readouterr().out

        assert main(["campaign", "status", "--out", str(out)]) == 0
        status = capsys.readouterr().out
        assert "2/2" in status and "complete" in status

        assert main(["campaign", "report", "--out", str(out)]) == 0
        report = capsys.readouterr().out
        assert "coverage" in report and "srt/m88ksim" in report

    def test_resume_reads_spec_from_manifest(self, tmp_path, capsys):
        out = tmp_path / "c"
        assert run_campaign(out) == 0
        capsys.readouterr()
        assert main(["campaign", "resume", "--out", str(out)]) == 0
        resumed = capsys.readouterr().out
        assert "0 executed (+2 resumed)" in resumed

    def test_run_with_jobs_two(self, tmp_path, capsys):
        assert run_campaign(tmp_path / "par", ["--jobs", "2"]) == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_config_change_is_refused(self, tmp_path, capsys):
        out = tmp_path / "c"
        assert run_campaign(out) == 0
        capsys.readouterr()
        changed = RUN_ARGS[:-1] + ["999"]  # different warmup
        code = main(["campaign", "run", "--out", str(out)] + changed)
        assert code == 2
        assert "config changed" in capsys.readouterr().err

    def test_config_change_with_fresh_restarts(self, tmp_path, capsys):
        out = tmp_path / "c"
        assert run_campaign(out) == 0
        capsys.readouterr()
        changed = RUN_ARGS[:-1] + ["999"]
        code = main(["campaign", "run", "--out", str(out)]
                    + changed + ["--fresh"])
        assert code == 0
        assert "2 executed (+0 resumed)" in capsys.readouterr().out

    def test_bad_model_is_an_error(self, tmp_path, capsys):
        code = main(["campaign", "run", "--out", str(tmp_path / "x"),
                     "--models", "gamma-burst", "--injections", "1"])
        assert code == 2
        assert "fault model" in capsys.readouterr().err

    def test_status_on_missing_campaign_errors(self, tmp_path, capsys):
        code = main(["campaign", "status", "--out", str(tmp_path / "nope")])
        assert code == 2
        assert "manifest" in capsys.readouterr().err

    def test_campaign_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign"])

    def test_status_tolerates_missing_sidecar(self, tmp_path, capsys):
        out = tmp_path / "c"
        assert run_campaign(out) == 0
        capsys.readouterr()
        (out / "progress.json").unlink()
        assert main(["campaign", "status", "--out", str(out)]) == 0
        status = capsys.readouterr().out
        assert "2/2" in status  # truth comes from results.jsonl
        assert "none yet" in status

    def test_status_tolerates_corrupt_sidecar(self, tmp_path, capsys):
        out = tmp_path / "c"
        assert run_campaign(out) == 0
        capsys.readouterr()
        (out / "progress.json").write_text('{"torn')
        assert main(["campaign", "status", "--out", str(out)]) == 0
        assert "2/2" in capsys.readouterr().out
