"""Golden-report tests: each dataflow check against its bad-asm fixture."""

from pathlib import Path

import pytest

from repro.analysis.checks import (Severity, gate_program,
                                   ProgramVerificationError, verify_program)
from repro.isa.assembler import assemble

FIXTURES = Path(__file__).parent / "fixtures" / "asm"


def load(name):
    path = FIXTURES / f"{name}.asm"
    return assemble(path.read_text(encoding="utf-8"), name=name)


def report_for(name, **kwargs):
    return verify_program(load(name), **kwargs)


class TestFixtureGoldens:
    def test_clean_fixture_is_strict_clean(self):
        report = report_for("clean")
        assert report.findings == []
        assert report.ok(strict=True)

    def test_uninit_read(self):
        report = report_for("uninit_read")
        assert report.by_rule() == {"A1-uninit-read": 1}
        (finding,) = report.findings
        assert finding.severity is Severity.ERROR
        assert finding.pc == 0
        assert "r1" in finding.message
        assert not report.ok()

    def test_maybe_uninit_read(self):
        report = report_for("maybe_uninit")
        assert report.by_rule() == {"A2-maybe-uninit-read": 1}
        (finding,) = report.findings
        assert finding.severity is Severity.WARNING
        assert "r2" in finding.message
        assert report.ok() and not report.ok(strict=True)

    def test_dead_store(self):
        report = report_for("dead_store")
        assert report.by_rule() == {"A3-dead-store": 1}
        (finding,) = report.findings
        assert finding.pc == 0  # the first ldi, not the second

    def test_unreachable_block(self):
        report = report_for("unreachable")
        assert report.by_rule() == {"A4-unreachable-block": 1}
        (finding,) = report.findings
        assert finding.pc == 1
        assert "[1, 3)" in finding.message

    def test_oob_store(self):
        report = report_for("oob_store")
        assert report.by_rule() == {"A5-oob-store": 1}
        (finding,) = report.findings
        assert finding.severity is Severity.ERROR
        assert finding.pc == 2
        assert "0x2000" in finding.message

    def test_missing_membar(self):
        report = report_for("missing_membar")
        assert report.by_rule() == {"A6-missing-membar": 1}
        (finding,) = report.findings
        # The unfenced publish, not the one behind the membar.
        assert finding.pc == 4

    def test_unbounded_loop(self):
        report = report_for("unbounded_loop")
        assert report.by_rule() == {"A7-unbounded-loop": 1}
        (finding,) = report.findings
        assert "monotone induction" in finding.message

    def test_falls_off_end(self):
        report = report_for("falls_off")
        assert "A8-falls-off-end" in report.by_rule()
        assert any(f.severity is Severity.ERROR for f in report.findings)


class TestCheckSelection:
    def test_select_filters_rules(self):
        report = report_for("falls_off", checks=["A8"])
        assert set(report.by_rule()) == {"A8-falls-off-end"}

    def test_entry_initialized_suppresses_uninit(self):
        all_regs = (1 << 64) - 1
        report = report_for("uninit_read", entry_initialized=all_regs)
        assert report.by_rule() == {}


class TestBoundedInduction:
    def test_counted_loop_is_clean(self):
        program = assemble("""
            ldi r1, 10
        top:
            addi r1, r1, -1
            bnez r1, top
            halt
        """)
        assert verify_program(program).findings == []

    def test_cmplt_guard_counts_as_induction(self):
        # The generator's guarded loop-tail shape: addi + cmplt + bnez.
        program = assemble("""
            ldi r1, 10
            ldi r2, 0
        top:
            add r2, r2, r1
            addi r1, r1, -1
            cmplt r3, r0, r1
            bnez r3, top
            bnez r2, end
            nop
        end:
            halt
        """)
        assert "A7-unbounded-loop" not in verify_program(program).by_rule()

    def test_runs_forever_metadata_disables_loop_check(self):
        program = assemble("""
            ldi r1, 1
        top:
            add r1, r1, r1
            bnez r1, top
            halt
        """)
        assert "A7-unbounded-loop" in verify_program(program).by_rule()
        program.metadata["runs_forever"] = True
        assert "A7-unbounded-loop" not in verify_program(program).by_rule()


class TestGate:
    def test_gate_raises_on_errors(self):
        program = load("uninit_read")
        with pytest.raises(ProgramVerificationError) as excinfo:
            gate_program(program)
        assert "A1-uninit-read" in str(excinfo.value)
        assert excinfo.value.report.errors

    def test_gate_passes_warnings(self):
        program = load("maybe_uninit")
        assert gate_program(program) is program
