"""FaultOutcome classification edge cases and the fault wire format.

The classifier boundaries matter for campaign statistics: LATENT vs SDC
decides whether corruption *left the sphere of replication*, and HUNG
vs MASKED decides whether a short trace means a wedged machine or just
a fault that never fired.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.faults import (FAULT_MODELS, FaultOutcome, FaultReport,
                               StuckFunctionalUnit, TransientRegisterFault,
                               TransientResultFault, classify_outcome,
                               fault_from_dict, fault_model_name,
                               fault_to_dict, golden_store_stream,
                               run_fault_experiment_detailed)
from repro.core.machine import make_machine
from repro.isa.executor import FunctionalExecutor
from repro.isa.generator import generate_benchmark
from repro.isa.instructions import FuClass

PROGRAM = generate_benchmark("m88ksim")


class StubMachine:
    """classify_outcome only consults ``fault_events``."""

    def __init__(self, fault_events=()):
        self.fault_events = list(fault_events)


def faithful_trace(length):
    """A retired-stream stand-in that matches the functional executor."""
    class TraceEntry:
        def __init__(self, pc, result):
            self.pc = pc
            self.result = result

    trace = []
    for step in FunctionalExecutor(PROGRAM).run(length):
        result = step.load[1] if step.load is not None else None
        trace.append(TraceEntry(step.pc, result))
    return trace


def golden_drain(instructions):
    return golden_store_stream(PROGRAM, instructions)


class TestClassificationBoundaries:
    # Long enough to retire past the store-free prologue of the
    # generated benchmarks (first stores land around instruction ~100).
    TARGET = 200

    def test_faithful_run_is_masked(self):
        trace = faithful_trace(self.TARGET)
        drained = golden_drain(self.TARGET)
        assert classify_outcome(StubMachine(), PROGRAM, trace, drained,
                                self.TARGET) is FaultOutcome.MASKED

    def test_detection_beats_everything(self):
        """A raised fault event wins even over a corrupted drain."""
        trace = faithful_trace(self.TARGET - 10)  # would be HUNG
        drained = [("ST", 0xDEAD, 0xBEEF)]        # would be SDC
        machine = StubMachine(fault_events=[object()])
        assert classify_outcome(machine, PROGRAM, trace, drained,
                                self.TARGET) is FaultOutcome.DETECTED

    def test_short_trace_is_hung_even_with_clean_drain(self):
        trace = faithful_trace(self.TARGET - 1)  # one short of target
        drained = golden_drain(self.TARGET - 1)
        assert classify_outcome(StubMachine(), PROGRAM, trace, drained,
                                self.TARGET) is FaultOutcome.HUNG

    def test_exact_target_is_not_hung(self):
        trace = faithful_trace(self.TARGET)
        outcome = classify_outcome(StubMachine(), PROGRAM, trace,
                                   golden_drain(self.TARGET), self.TARGET)
        assert outcome is not FaultOutcome.HUNG

    def test_wrong_drained_store_is_sdc(self):
        trace = faithful_trace(self.TARGET)
        drained = golden_drain(self.TARGET)
        assert drained, "need at least one store in the window"
        op, addr, value = drained[0]
        drained[0] = (op, addr, value ^ 1)
        assert classify_outcome(StubMachine(), PROGRAM, trace, drained,
                                self.TARGET) is FaultOutcome.SDC

    def test_pc_divergence_with_clean_drain_is_latent(self):
        trace = faithful_trace(self.TARGET)
        trace[-1].pc += 1  # retired path diverged, nothing escaped
        assert classify_outcome(StubMachine(), PROGRAM, trace,
                                golden_drain(self.TARGET),
                                self.TARGET) is FaultOutcome.LATENT

    def test_wrong_load_value_with_clean_drain_is_latent(self):
        trace = faithful_trace(self.TARGET)
        loads = [entry for entry in trace if entry.result is not None]
        assert loads, "need at least one load in the window"
        loads[0].result ^= 0x10
        assert classify_outcome(StubMachine(), PROGRAM, trace,
                                golden_drain(self.TARGET),
                                self.TARGET) is FaultOutcome.LATENT

    def test_sdc_beats_latent(self):
        """The drained stream is decisive: escape trumps divergence."""
        trace = faithful_trace(self.TARGET)
        trace[0].pc += 1
        drained = golden_drain(self.TARGET)
        op, addr, value = drained[0]
        drained[0] = (op, addr, value ^ 1)
        assert classify_outcome(StubMachine(), PROGRAM, trace, drained,
                                self.TARGET) is FaultOutcome.SDC

    def test_zero_instruction_run_is_masked(self):
        """target=0: nothing ran, nothing diverged — not HUNG."""
        assert classify_outcome(StubMachine(), PROGRAM, [], [],
                                0) is FaultOutcome.MASKED


class TestLateFault:
    def test_fault_after_retirement_window_never_fires(self):
        """A strike scheduled beyond the run is a non-event: MASKED,
        no struck cycle, no latency."""
        machine = make_machine("srt", MachineConfig(), [PROGRAM])
        fault = TransientResultFault(cycle=10**9, core_index=0, bit=1)
        report = run_fault_experiment_detailed(
            machine, PROGRAM, fault, instructions=120, warmup=300)
        assert report.outcome is FaultOutcome.MASKED
        assert not fault.fired
        assert report.struck_cycle is None
        assert report.detection_latency is None


class TestFaultWireFormat:
    FAULTS = [
        TransientRegisterFault(cycle=120, core_index=0, reg=77, bit=5),
        TransientResultFault(cycle=90, core_index=1, bit=12, thread=2,
                             target_loads=True),
        StuckFunctionalUnit(core_index=0, fu_class=FuClass.LOGIC,
                            unit_index=3, bit=9),
    ]

    @pytest.mark.parametrize("fault", FAULTS,
                             ids=lambda f: type(f).__name__)
    def test_round_trip(self, fault):
        clone = fault_from_dict(fault_to_dict(fault))
        assert clone == fault

    def test_runtime_state_never_survives(self):
        fault = TransientResultFault(cycle=1, core_index=0, bit=0)
        fault.fired = True
        fault.struck_cycle = 42
        clone = fault_from_dict(fault_to_dict(fault))
        assert not clone.fired
        assert clone.struck_cycle is None

    def test_enum_serialized_by_value(self):
        data = fault_to_dict(self.FAULTS[2])
        assert data["fu_class"] == "logic"
        assert data["model"] == "stuck-unit"

    # Minimal constructor payload per registered model (machine faults
    # address cycles/cores; architectural faults address golden steps).
    MINIMAL_PAYLOADS = {
        "transient-result": {"cycle": 1, "core_index": 0, "bit": 0},
        "transient-register": {"cycle": 1, "core_index": 0, "bit": 0,
                               "reg": 70},
        "stuck-unit": {"core_index": 0, "fu_class": "int",
                       "unit_index": 0},
        "arch-register": {"step": 1, "reg": 7, "bit": 0},
        "arch-memory": {"step": 1, "addr": 0x1000, "bit": 0},
        "arch-destfield": {"step": 1, "bit": 0},
    }

    def test_every_registered_model_has_a_name(self):
        assert set(self.MINIMAL_PAYLOADS) == set(FAULT_MODELS), \
            "new fault model: add a minimal payload above"
        for name, cls in FAULT_MODELS.items():
            instance = fault_from_dict(
                {"model": name, **self.MINIMAL_PAYLOADS[name]})
            assert isinstance(instance, cls)
            assert fault_model_name(instance) == name

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            fault_from_dict({"model": "bitrot"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown transient-result"):
            fault_from_dict({"model": "transient-result", "cycle": 1,
                             "core_index": 0, "bit": 0, "wobble": True})


class TestFaultReportSerialization:
    def test_round_trip_with_latency(self):
        report = FaultReport(outcome=FaultOutcome.DETECTED,
                             struck_cycle=100, detected_cycle=180)
        data = report.to_dict()
        assert data["latency"] == 80
        clone = FaultReport.from_dict(data)
        assert clone == report
        assert clone.detection_latency == 80

    def test_undetected_has_null_latency(self):
        report = FaultReport(outcome=FaultOutcome.MASKED)
        assert report.to_dict()["latency"] is None
