"""Campaign-side AVF integration: arch fault models in the spec,
class-aware sampling, worker execution, and the --vs-avf report."""

import pytest

from repro.avf.analyzer import ACE_CLASS, ALL_CLASSES, MASKED_CLASSES
from repro.avf.sites import clear_universe_cache, get_universe
from repro.campaign.cli import main as campaign_main
from repro.campaign.report import (adjusted_detection_table,
                                   confusion_table, false_masked_records,
                                   render_vs_avf)
from repro.campaign.sampler import enumerate_tasks
from repro.campaign.spec import CampaignConfigError, CampaignSpec
from repro.campaign.worker import execute_task
from repro.core.faults import ARCH_FAULT_MODELS


def arch_spec(**overrides):
    base = dict(kinds=("arch",), workloads=("compress",),
                models=("arch-register",), injections=20,
                instructions=300, warmup=0, sampling="stratified")
    base.update(overrides)
    return CampaignSpec(**base)


class TestSpecRules:
    def test_arch_models_require_arch_kind(self):
        with pytest.raises(CampaignConfigError, match="arch"):
            arch_spec(kinds=("srt",)).validate()

    def test_arch_kind_requires_arch_models(self):
        with pytest.raises(CampaignConfigError, match="architectural"):
            arch_spec(models=("transient-result",)).validate()

    def test_no_mixing_arch_and_machine_models(self):
        with pytest.raises(CampaignConfigError, match="mixed"):
            arch_spec(models=("arch-register",
                              "transient-result")).validate()

    def test_sampling_needs_arch_models(self):
        with pytest.raises(CampaignConfigError, match="sampling"):
            CampaignSpec(kinds=("srt",), workloads=("compress",),
                         models=("transient-result",),
                         sampling="guided").validate()

    def test_valid_arch_spec(self):
        spec = arch_spec().validate()
        assert spec.total_tasks() == 20


class TestArchSampling:
    def setup_method(self):
        clear_universe_cache()

    def test_tasks_carry_predictions(self):
        tasks = enumerate_tasks(arch_spec())
        assert len(tasks) == 20
        for task in tasks:
            assert task.predicted in ALL_CLASSES
            assert dict(task.fault)["model"] == "arch-register"

    def test_stratified_samples_both_sides(self):
        tasks = enumerate_tasks(arch_spec(injections=30))
        groups = {task.predicted in MASKED_CLASSES for task in tasks}
        assert groups == {True, False}

    def test_enumeration_is_deterministic(self):
        spec = arch_spec()
        assert enumerate_tasks(spec) == enumerate_tasks(spec)

    def test_uniform_arch_sampling_also_tags(self):
        tasks = enumerate_tasks(arch_spec(sampling="uniform",
                                          injections=5))
        assert all(task.predicted in ALL_CLASSES for task in tasks)

    def test_guided_skips_proven_masked_sites(self):
        """Acceptance: guided sampling skips >= 20% of the universe on
        at least one profile (every skipped site is proven masked)."""
        spec = arch_spec(sampling="guided", injections=30)
        universe = get_universe("compress", 300, seed=0)
        skipped = universe.masked_fraction("arch-register")
        assert skipped >= 0.20
        tasks = enumerate_tasks(spec)
        assert all(task.predicted == ACE_CLASS for task in tasks)

    def test_machine_models_have_no_prediction(self):
        spec = CampaignSpec(kinds=("srt",), workloads=("compress",),
                            models=("transient-result",), injections=4,
                            instructions=200, warmup=100)
        tasks = enumerate_tasks(spec)
        assert all(task.predicted is None for task in tasks)


class TestArchWorker:
    def setup_method(self):
        clear_universe_cache()

    def test_execute_arch_task(self):
        task = enumerate_tasks(arch_spec(injections=3))[0].to_dict()
        record = execute_task(task)
        assert record["kind"] == "arch"
        assert record["predicted"] in ALL_CLASSES
        assert record["outcome"] in ("detected", "masked", "latent",
                                     "silent-data-corruption")
        assert record["timed_out"] is False

    @pytest.mark.parametrize("model", ARCH_FAULT_MODELS)
    def test_all_arch_models_run(self, model):
        spec = arch_spec(models=(model,), injections=2)
        for task in enumerate_tasks(spec):
            record = execute_task(task.to_dict())
            assert record["model"] == model


def fake_record(predicted, outcome, workload="compress",
                model="arch-register"):
    return {"task_id": "x", "index": 0, "kind": "arch",
            "workload": workload, "model": model,
            "fault": {"model": model}, "predicted": predicted,
            "outcome": outcome, "timed_out": False}


class TestVsAvfReport:
    def test_false_masked_detection(self):
        records = [fake_record("dead", "detected"),
                   fake_record("dead", "latent"),
                   fake_record("ace", "detected")]
        violations = false_masked_records(records)
        assert len(violations) == 1
        assert violations[0]["predicted"] == "dead"

    def test_sdc_also_falsifies_masked(self):
        records = [fake_record("overwritten", "silent-data-corruption")]
        assert len(false_masked_records(records)) == 1

    def test_confusion_table_counts(self):
        records = [fake_record("dead", "masked"),
                   fake_record("dead", "latent"),
                   fake_record("ace", "detected"),
                   fake_record("ace", "masked")]
        table = confusion_table(records)
        row = table.rows["compress/arch-register"]
        assert row["msk>msk"] == 1 and row["msk>lat"] == 1
        assert row["ace>det"] == 1 and row["ace>msk"] == 1
        assert row["false-masked"] == 0
        assert row["n"] == 4

    def test_adjusted_estimate_uses_soundness_bound(self):
        # The masked class is unsampled; its contribution must be the
        # soundness bound 0, not a (0, 1) ignorance interval.
        records = [fake_record("ace", "detected"),
                   fake_record("ace", "detected"),
                   fake_record("ace", "masked"),
                   fake_record("ace", "masked")]
        fractions = {("compress", "arch-register"):
                     {"dead": 0.6, ACE_CLASS: 0.4}}
        table = adjusted_detection_table(records, fractions)
        row = table.rows["compress/arch-register"]
        assert row["point"] == pytest.approx(0.4 * 0.5)
        assert row["ci_high"] <= 0.4  # dead mass contributes nothing

    def test_render_mentions_soundness(self):
        text = render_vs_avf([fake_record("dead", "latent")])
        assert "soundness: 0 false-masked" in text
        text = render_vs_avf([fake_record("dead", "detected")])
        assert "SOUNDNESS VIOLATION" in text

    def test_untagged_records_explain_themselves(self):
        record = fake_record(None, "masked")
        record.pop("predicted")
        assert "no AVF-tagged records" in render_vs_avf([record])


class TestValidateAvfCli:
    def test_end_to_end_tiny_run(self, tmp_path, capsys):
        clear_universe_cache()
        out = tmp_path / "vavf"
        code = campaign_main([
            "validate-avf", "--out", str(out),
            "--workloads", "compress", "--models", "arch-register",
            "--injections", "10", "--instructions", "300"])
        captured = capsys.readouterr()
        assert code == 0, captured.out + captured.err
        assert "campaign_vs_avf" in captured.out
        assert "soundness: 0 false-masked" in captured.out
        # The stored campaign supports the report --vs-avf view too.
        code = campaign_main(["report", "--out", str(out), "--vs-avf"])
        assert code == 0
        assert "campaign_avf_adjusted" in capsys.readouterr().out

    def test_guided_coverage_matches_stratified(self, tmp_path, capsys):
        """Acceptance: guided sampling changes which sites are drawn,
        not the reweighted coverage estimate — point estimates must lie
        inside each other's confidence intervals."""
        clear_universe_cache()
        rows = {}
        for flag, label in (((), "stratified"), (("--guided",), "guided")):
            out = tmp_path / label
            code = campaign_main([
                "validate-avf", "--out", str(out),
                "--workloads", "compress", "--models", "arch-register",
                "--injections", "40", "--instructions", "300", *flag])
            assert code == 0
            store_records = _records_of(out)
            fractions = _fractions_for()
            table = adjusted_detection_table(
                [r for r in store_records
                 if r.get("predicted") is not None], fractions)
            rows[label] = table.rows["compress/arch-register"]
        capsys.readouterr()
        strat, guided = rows["stratified"], rows["guided"]
        assert strat["ci_low"] <= guided["point"] <= strat["ci_high"]
        assert guided["ci_low"] <= strat["point"] <= guided["ci_high"]


def _records_of(out):
    from repro.campaign.store import CampaignStore
    return CampaignStore(str(out)).records()


def _fractions_for():
    universe = get_universe("compress", 300, seed=0)
    return {("compress", "arch-register"):
            universe.class_fractions("arch-register")}
