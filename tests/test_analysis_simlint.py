"""simlint: synthetic-violation modules, suppressions, and the
self-test that the shipped tree is clean."""

import textwrap

import pytest

from repro.analysis.simlint import (LINT_RULES, lint_package, lint_source)


def lint(source, rel="core/example.py"):
    return lint_source(textwrap.dedent(source), rel)


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestS1Determinism:
    def test_s101_random_import(self):
        findings = lint("import random\n")
        assert rules_of(findings) == ["S101"]

    def test_s101_from_random(self):
        findings = lint("from random import choice\n")
        assert rules_of(findings) == ["S101"]

    def test_s101_allowed_in_rng_home(self):
        assert lint("import random\n", rel="util/rng.py") == []

    def test_s102_time_import_in_cycle_layer(self):
        findings = lint("from time import perf_counter\n",
                        rel="pipeline/core.py")
        assert rules_of(findings) == ["S102"]

    def test_s102_time_attribute_in_cycle_layer(self):
        findings = lint("import time\nstamp = time.time()\n",
                        rel="core/machine.py")
        assert "S102" in rules_of(findings)

    def test_s102_allowed_in_harness(self):
        # The harness may measure wall time for reporting.
        assert lint("import time\nt = time.perf_counter()\n",
                    rel="harness/runner.py") == []

    def test_s103_set_difference_binding(self):
        findings = lint("unknown = set(payload) - known\n")
        assert rules_of(findings) == ["S103"]

    def test_s103_sorted_binding_is_clean(self):
        assert lint("unknown = sorted(set(payload) - known)\n") == []

    def test_s103_iteration_over_set_literal(self):
        findings = lint("for item in {1, 2, 3}:\n    print(item)\n")
        assert rules_of(findings) == ["S103"]

    def test_s103_fstring_of_set(self):
        findings = lint("message = f'bad: {set(a) - set(b)}'\n")
        assert rules_of(findings) == ["S103"]

    def test_s103_membership_set_is_clean(self):
        assert lint("seen = set()\nknown = {x for x in items}\n") == []

    def test_s104_fstring_of_dict_keys(self):
        findings = lint("message = f'fields: {data.keys()}'\n")
        assert rules_of(findings) == ["S104"]

    def test_s104_join_of_dict_values(self):
        findings = lint("text = ', '.join(table.values())\n")
        assert rules_of(findings) == ["S104"]

    def test_s104_sorted_view_is_clean(self):
        assert lint("message = f'fields: {sorted(data.keys())}'\n") == []
        assert lint("text = ', '.join(sorted(table.values()))\n") == []

    def test_s104_non_view_attribute_call_is_clean(self):
        # Only bare .keys()/.values() calls are views; other calls and
        # plain iteration over a dict are insertion-order by intent.
        assert lint("text = ', '.join(table.names())\n") == []
        assert lint("for key in table:\n    print(key)\n") == []

    def test_s104_suppression(self):
        src = ("message = f'{data.keys()}'"
               "  # simlint: disable=S104\n")
        assert lint(src) == []


class TestS2Layering:
    @pytest.mark.parametrize("layer", ["pipeline", "predictors", "isa",
                                       "memory", "util"])
    def test_s2_inner_layers_cannot_import_core(self, layer):
        findings = lint("from repro.core.srt import SrtMachine\n",
                        rel=f"{layer}/mod.py")
        expected = "S202" if layer == "util" else "S201"
        assert expected in rules_of(findings)

    def test_s201_package_facade_also_flagged(self):
        findings = lint("from repro.core import SrtMachine\n",
                        rel="pipeline/thread.py")
        assert rules_of(findings) == ["S201"]

    def test_s201_core_may_import_pipeline(self):
        assert lint("from repro.pipeline.core import PipelineCore\n",
                    rel="core/machine.py") == []

    def test_s202_util_leaf(self):
        findings = lint("from repro.isa.program import Program\n",
                        rel="util/helpers.py")
        assert rules_of(findings) == ["S202"]

    def test_s202_util_may_import_util(self):
        assert lint("from repro.util.bits import MASK64\n",
                    rel="util/delayline.py") == []


class TestS3PickleSafety:
    def test_s301_lambda_to_pool(self):
        findings = lint("results = pool.map(lambda t: t + 1, tasks)\n",
                        rel="campaign/engine.py")
        assert rules_of(findings) == ["S301"]

    def test_s301_module_function_is_clean(self):
        assert lint("results = pool.map(execute_chunk, tasks)\n",
                    rel="campaign/engine.py") == []

    def test_s302_nested_dataclass(self):
        findings = lint("""
            from dataclasses import dataclass

            def make():
                @dataclass
                class Hidden:
                    x: int
                return Hidden
        """, rel="campaign/spec.py")
        assert rules_of(findings) == ["S302"]

    def test_s302_set_typed_field(self):
        findings = lint("""
            from dataclasses import dataclass
            from typing import Set

            @dataclass
            class Wire:
                names: Set[str]
        """, rel="campaign/spec.py")
        assert rules_of(findings) == ["S302"]

    def test_s302_default_factory_set(self):
        findings = lint("""
            from dataclasses import dataclass, field

            @dataclass
            class Wire:
                names: list = field(default_factory=set)
        """, rel="core/faults.py")
        assert rules_of(findings) == ["S302"]

    def test_s302_only_in_wire_modules(self):
        source = """
            from dataclasses import dataclass
            from typing import Set

            @dataclass
            class Local:
                names: Set[str]
        """
        assert lint(source, rel="pipeline/uop.py") == []
        assert lint(source, rel="campaign/store.py") != []


class TestS4RetryHygiene:
    def test_s401_sleep_and_spin(self):
        findings = lint("""
            import time
            while True:
                try:
                    step()
                except OSError:
                    time.sleep(1.0)
        """, rel="campaign/engine.py")
        assert rules_of(findings) == ["S401"]

    def test_s401_bare_pass_handler(self):
        findings = lint("""
            while True:
                try:
                    step()
                except Exception:
                    continue
        """, rel="serve/client.py")
        assert rules_of(findings) == ["S401"]

    def test_s401_attempt_bookkeeping_is_clean(self):
        assert lint("""
            attempt = 0
            while True:
                try:
                    step()
                    break
                except OSError:
                    attempt += 1
                    if attempt > 3:
                        raise
        """, rel="campaign/engine.py") == []

    def test_s401_reraise_is_clean(self):
        assert lint("""
            while True:
                try:
                    step()
                except OSError:
                    raise
        """, rel="serve/client.py") == []

    def test_s401_conditioned_loop_is_clean(self):
        assert lint("""
            while not done:
                try:
                    step()
                except OSError:
                    pass
        """, rel="serve/client.py") == []

    def test_s401_bounded_for_loop_is_clean(self):
        assert lint("""
            for attempt in range(3):
                try:
                    step()
                    break
                except OSError:
                    pass
        """, rel="campaign/store.py") == []

    def test_s401_nested_function_scope_skipped(self):
        assert lint("""
            while True:
                def helper():
                    try:
                        step()
                    except OSError:
                        pass
                helper()
                break
        """, rel="serve/scheduler.py") == []

    def test_s401_suppression(self):
        src = ("while True:\n"
               "    try:\n"
               "        step()\n"
               "    except OSError:  # simlint: disable=S401\n"
               "        pass\n")
        assert lint(src, rel="campaign/engine.py") == []


class TestSuppression:
    def test_line_suppression(self):
        src = "import random  # simlint: disable=S101\n"
        assert lint(src) == []

    def test_suppression_is_rule_specific(self):
        src = "import random  # simlint: disable=S103\n"
        assert rules_of(lint(src)) == ["S101"]

    def test_multi_rule_suppression(self):
        src = "import random  # simlint: disable=S103,S101\n"
        assert lint(src) == []

    def test_file_suppression(self):
        src = ("# simlint: disable-file=S101\n"
               "import random\n"
               "import random\n")
        assert lint(src) == []

    def test_file_suppression_is_rule_specific(self):
        src = ("# simlint: disable-file=S103\n"
               "import random\n")
        assert rules_of(lint(src)) == ["S101"]

    def test_file_suppression_multi_rule(self):
        src = ("# simlint: disable-file=S101, S103\n"
               "import random\n"
               "for x in {1, 2}:\n"
               "    pass\n")
        assert lint(src) == []

    def test_file_suppression_anywhere_in_module(self):
        # The pragma need not precede the violation it waives.
        src = ("import random\n"
               "# simlint: disable-file=S101\n")
        assert lint(src) == []

    def test_file_pragma_is_not_a_line_pragma(self):
        # disable-file on a violating line still waives file-wide, but
        # a plain disable= on another line must not go file-wide.
        src = ("import random  # simlint: disable=S101\n"
               "import random\n")
        assert rules_of(lint(src)) == ["S101"]


class TestRegistryAndSelfCheck:
    def test_registry_complete(self):
        assert sorted(LINT_RULES) == ["S101", "S102", "S103", "S104", "S201",
                                      "S202", "S301", "S302", "S401",
                                      "S501", "S502", "S503",
                                      "S601", "S602", "S603",
                                      "S701", "S702", "U001"]
        for rule in LINT_RULES.values():
            assert rule.severity in ("error", "warning")
            assert rule.engine in ("simlint", "lockset", "flow")
            assert rule.summary

    def test_shipped_tree_is_strict_clean(self):
        """Acceptance: `repro lint --strict` exits 0 on the repo."""
        findings = lint_package()
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_select_prefix_filter(self):
        findings = lint_package(select=["S9"])
        assert findings == []


class TestUsageAudit:
    """U001: pragmas must earn their keep."""

    def run(self, tmp_path, source, engines=("simlint", "usage")):
        root = tmp_path / "auditpkg"
        root.mkdir()
        (root / "mod.py").write_text(textwrap.dedent(source))
        return lint_package(root=root, engines=list(engines))

    def test_used_pragma_is_silent(self, tmp_path):
        findings = self.run(tmp_path,
                            "import random  # simlint: disable=S101\n")
        assert findings == []

    def test_stale_line_pragma_flagged(self, tmp_path):
        findings = self.run(tmp_path,
                            "x = 1\n"
                            "y = 2  # simlint: disable=S101\n")
        assert [(f.rule, f.line) for f in findings] == [("U001", 2)]
        assert "disable=S101" in findings[0].message

    def test_stale_file_pragma_flagged(self, tmp_path):
        findings = self.run(tmp_path,
                            "x = 1\n"
                            "# simlint: disable-file=S101\n")
        assert [(f.rule, f.line) for f in findings] == [("U001", 2)]
        assert "disable-file=S101" in findings[0].message

    def test_unknown_rule_id_always_stale(self, tmp_path):
        # S999 is in no catalogue; no engine selection can judge it
        # useful.
        findings = self.run(tmp_path,
                            "x = 1  # simlint: disable=S999\n",
                            engines=("usage",))
        assert [(f.rule, f.line) for f in findings] == [("U001", 1)]

    def test_unevaluated_family_not_judged(self, tmp_path):
        # An S5 pragma is the lockset engine's business; a run without
        # it must not call the pragma stale.
        findings = self.run(tmp_path,
                            "x = 1  # simlint: disable=S501\n")
        assert findings == []

    def test_u001_self_suppression(self, tmp_path):
        findings = self.run(
            tmp_path, "x = 1  # simlint: disable=S101,U001\n")
        assert findings == []

    def test_docstring_pragma_text_is_inert(self, tmp_path):
        # Documentation *about* pragmas is not a pragma: it neither
        # suppresses nor counts as stale.
        findings = self.run(tmp_path,
                            '"""Write `# simlint: disable=S101` to '
                            'waive a line."""\n'
                            "import random\n")
        assert [(f.rule, f.line) for f in findings] == [("S101", 2)]

    def test_usage_engine_off_means_no_audit(self, tmp_path):
        findings = self.run(tmp_path,
                            "x = 1  # simlint: disable=S101\n",
                            engines=("simlint",))
        assert findings == []
