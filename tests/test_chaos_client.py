"""ServeClient resilience: deterministic backoff, 429 Retry-After,
idempotent-only transport retries, and the per-host circuit breaker —
all against a stubbed ``_send`` (no sockets)."""

import time
import types

import pytest

from repro.serve import client as client_mod
from repro.serve.client import (BACKOFF_BASE_S, BACKOFF_CAP_S,
                                BREAKER_THRESHOLD, CircuitOpenError,
                                ServeClient, ServeError, breaker_for,
                                reset_breakers)


@pytest.fixture(autouse=True)
def clean_breakers():
    reset_breakers()
    yield
    reset_breakers()


@pytest.fixture
def sleeps(monkeypatch):
    """Replace the client module's clock: record sleeps, keep monotonic."""
    recorded = []
    fake = types.SimpleNamespace(sleep=recorded.append,
                                 monotonic=time.monotonic)
    monkeypatch.setattr(client_mod, "time", fake)
    return recorded


def scripted(client, outcomes):
    """Stub ``_send`` with a list of exceptions / return payloads."""
    calls = []

    def _send(method, path, body, timeout):
        calls.append((method, path))
        outcome = outcomes.pop(0) if outcomes else {"ok": True}
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    client._send = _send
    return calls


class TestBackoff:
    def test_schedule_is_deterministic_per_url(self):
        a = ServeClient("http://127.0.0.1:9999")
        b = ServeClient("http://127.0.0.1:9999")
        assert [a.backoff_delay(i) for i in range(6)] == \
            [b.backoff_delay(i) for i in range(6)]

    def test_full_jitter_bounds(self):
        client = ServeClient("http://127.0.0.1:9999")
        for attempt in range(8):
            cap = min(BACKOFF_CAP_S, BACKOFF_BASE_S * 2 ** attempt)
            for _ in range(5):
                assert 0.0 <= client.backoff_delay(attempt) <= cap


class Test429:
    def test_retry_after_honored_for_post(self, sleeps):
        client = ServeClient("http://x:1")
        refused = ServeError(429, {"error": "queue full",
                                   "retry_after": 3})
        calls = scripted(client, [refused, {"job": "accepted"}])
        assert client.request("POST", "/v1/jobs", body={}) == \
            {"job": "accepted"}
        assert len(calls) == 2
        assert sleeps == [3.0]  # exactly what the server asked

    def test_retry_after_capped(self, sleeps):
        client = ServeClient("http://x:1")
        refused = ServeError(429, {"error": "full",
                                   "retry_after": 86400})
        scripted(client, [refused, {"ok": True}])
        client.request("POST", "/v1/jobs", body={})
        assert sleeps == [client_mod.RETRY_AFTER_CAP_S]

    def test_429_budget_bounded(self, sleeps):
        client = ServeClient("http://x:1", retries=2)
        scripted(client, [ServeError(429, {"error": "full",
                                           "retry_after": 0})] * 10)
        with pytest.raises(ServeError) as err:
            client.request("POST", "/v1/jobs", body={})
        assert err.value.status == 429
        assert len(sleeps) == 2  # retries, not forever

    def test_429_does_not_trip_breaker(self, sleeps):
        client = ServeClient("http://x:1", retries=0)
        scripted(client, [ServeError(429, {"error": "full"})] * 10)
        for _ in range(BREAKER_THRESHOLD + 2):
            with pytest.raises(ServeError):
                client.request("POST", "/v1/jobs", body={})
        assert breaker_for(client.netloc).state == "closed"


class TestTransportRetries:
    def test_get_retried_after_reset(self, sleeps):
        client = ServeClient("http://x:1")
        calls = scripted(client, [ConnectionResetError("reset"),
                                  {"job": {"state": "done"}}])
        assert client.request("GET", "/v1/jobs/j1")["job"]["state"] == \
            "done"
        assert len(calls) == 2 and len(sleeps) == 1

    def test_post_not_retried_after_reset(self, sleeps):
        client = ServeClient("http://x:1")
        calls = scripted(client, [ConnectionResetError("reset"),
                                  {"never": "reached"}])
        with pytest.raises(ConnectionResetError):
            client.request("POST", "/v1/jobs", body={})
        assert len(calls) == 1  # ambiguous POST is never resubmitted

    def test_5xx_retried_idempotent_only(self, sleeps):
        boom = ServeError(503, {"error": "draining"})
        client = ServeClient("http://x:1")
        calls = scripted(client, [ServeError(503, {"error": "x"}),
                                  {"ok": True}])
        assert client.request("GET", "/metrics") == {"ok": True}
        assert len(calls) == 2

        client2 = ServeClient("http://x:1")
        calls2 = scripted(client2, [boom])
        with pytest.raises(ServeError):
            client2.request("POST", "/v1/jobs", body={})
        assert len(calls2) == 1

    def test_4xx_raises_immediately(self, sleeps):
        client = ServeClient("http://x:1")
        calls = scripted(client, [ServeError(404, {"error": "no job"})])
        with pytest.raises(ServeError) as err:
            client.request("GET", "/v1/jobs/nope")
        assert err.value.status == 404
        assert len(calls) == 1 and sleeps == []
        assert breaker_for(client.netloc).state == "closed"

    def test_retry_budget_exhausted_raises_transport_error(self, sleeps):
        client = ServeClient("http://x:1", retries=3)
        calls = scripted(client, [OSError("refused")] * 10)
        with pytest.raises(OSError):
            client.request("GET", "/metrics")
        assert len(calls) == 4  # 1 + retries


class TestCircuitBreaker:
    def test_opens_after_threshold_then_fast_fails(self, sleeps):
        client = ServeClient("http://dead:1", retries=0)
        calls = scripted(client, [OSError("down")] * 100)
        for _ in range(BREAKER_THRESHOLD):
            with pytest.raises(OSError):
                client.request("GET", "/metrics")
        assert breaker_for(client.netloc).state == "open"
        with pytest.raises(CircuitOpenError):
            client.request("GET", "/metrics")
        assert len(calls) == BREAKER_THRESHOLD  # no connect while open

    def test_half_open_probe_closes_on_success(self, sleeps):
        client = ServeClient("http://dead:1", retries=0)
        scripted(client, [OSError("down")] * BREAKER_THRESHOLD +
                 [{"ok": True}])
        for _ in range(BREAKER_THRESHOLD):
            with pytest.raises(OSError):
                client.request("GET", "/metrics")
        breaker = breaker_for(client.netloc)
        breaker.opened_at -= breaker.cooldown_s  # cooldown elapses
        assert client.request("GET", "/metrics") == {"ok": True}
        assert breaker.state == "closed"

    def test_half_open_probe_reopens_on_failure(self, sleeps):
        client = ServeClient("http://dead:1", retries=0)
        scripted(client, [OSError("down")] * 100)
        for _ in range(BREAKER_THRESHOLD):
            with pytest.raises(OSError):
                client.request("GET", "/metrics")
        breaker = breaker_for(client.netloc)
        breaker.opened_at -= breaker.cooldown_s
        with pytest.raises(OSError):
            client.request("GET", "/metrics")  # the one probe
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.request("GET", "/metrics")

    def test_breaker_shared_across_clients_per_netloc(self, sleeps):
        first = ServeClient("http://dead:1", retries=0)
        scripted(first, [OSError("down")] * 100)
        for _ in range(BREAKER_THRESHOLD):
            with pytest.raises(OSError):
                first.request("GET", "/metrics")
        second = ServeClient("http://dead:1")
        scripted(second, [{"never": "reached"}])
        with pytest.raises(CircuitOpenError):
            second.request("GET", "/metrics")
        # A different host is unaffected.
        other = ServeClient("http://alive:2")
        scripted(other, [{"ok": True}])
        assert other.request("GET", "/metrics") == {"ok": True}

    def test_reset_breakers_forgets_state(self, sleeps):
        client = ServeClient("http://dead:1", retries=0)
        scripted(client, [OSError("down")] * BREAKER_THRESHOLD +
                 [{"ok": True}])
        for _ in range(BREAKER_THRESHOLD):
            with pytest.raises(OSError):
                client.request("GET", "/metrics")
        reset_breakers()
        assert client.request("GET", "/metrics") == {"ok": True}
