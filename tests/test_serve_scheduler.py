"""Scheduler lifecycle: admission control, fair share, coalescing,
cancellation, drain.  Uses a fake pool so tests control exactly when
each "job" finishes; everything runs on one asyncio loop."""

import asyncio
import threading

import pytest

from repro.core.metrics import ServiceCounters
from repro.serve.cache import ResultCache
from repro.serve.jobs import JobSpec
from repro.serve.pool import JobCancelled
from repro.serve.scheduler import (CANCELLED, DONE, FAILED, QUEUED,
                                   RUNNING, Draining, QueueFull,
                                   Scheduler)


def spec(tag=0, **overrides):
    params = {"kind": "srt", "benchmarks": ["gcc"],
              "instructions": 300 + tag}
    params.update(overrides)
    return JobSpec.build("run", params)


class FakePool:
    """Blocks each job on a gate the test releases; honors cancel."""

    def __init__(self):
        self.gates = {}
        self.started = []
        self.executions = 0
        self.lock = threading.Lock()

    def gate(self, key):
        with self.lock:
            return self.gates.setdefault(key, threading.Event())

    def execute(self, job_spec, cancel):
        with self.lock:
            self.executions += 1
            self.started.append(job_spec.cache_key())
        gate = self.gate(job_spec.cache_key())
        while not gate.wait(timeout=0.02):
            if cancel.is_set():
                raise JobCancelled("stopped at chunk boundary")
        if cancel.is_set():
            raise JobCancelled("stopped at chunk boundary")
        return {"echo": job_spec.params["instructions"]}


def make_scheduler(tmp_path, **kwargs):
    pool = FakePool()
    kwargs.setdefault("max_queue", 3)
    kwargs.setdefault("max_running", 1)
    scheduler = Scheduler(pool, ResultCache(tmp_path / "cache"), **kwargs)
    return scheduler, pool


async def wait_for(predicate, timeout=5.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while not predicate():
        if asyncio.get_event_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.01)


def run(coro):
    asyncio.run(coro)


class TestAdmission:
    def test_queue_full_raises_with_retry_after(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            scheduler.start()
            first = scheduler.submit(spec(0))
            # Wait for dispatch so the queue slots are genuinely free.
            await wait_for(lambda: scheduler.queue_stats()["running"] == 1)
            jobs = [first] + [scheduler.submit(spec(i))
                              for i in range(1, 4)]
            # One running, three queued: the queue is now full.
            with pytest.raises(QueueFull) as exc:
                scheduler.submit(spec(99))
            assert exc.value.retry_after >= 1
            assert scheduler.counters.rejected == 1
            for i, job in enumerate(jobs):
                pool.gate(spec(i).cache_key()).set()
            await wait_for(lambda: all(j.finished for j in jobs))
            await scheduler.drain()

        run(scenario())

    def test_slot_freed_admits_again(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            scheduler.start()
            first = scheduler.submit(spec(0))
            await wait_for(lambda: scheduler.queue_stats()["running"] == 1)
            jobs = [first] + [scheduler.submit(spec(i))
                              for i in range(1, 4)]
            with pytest.raises(QueueFull):
                scheduler.submit(spec(99))
            pool.gate(spec(0).cache_key()).set()  # finish the runner
            await wait_for(lambda: jobs[0].finished)
            late = scheduler.submit(spec(99))  # queue slot freed
            assert late.state == QUEUED
            for i in range(1, 4):
                pool.gate(spec(i).cache_key()).set()
            pool.gate(spec(99).cache_key()).set()
            await wait_for(lambda: late.finished)
            await scheduler.drain()

        run(scenario())

    def test_draining_rejects_submissions(self, tmp_path):
        async def scenario():
            scheduler, _ = make_scheduler(tmp_path)
            scheduler.start()
            await scheduler.drain()
            with pytest.raises(Draining):
                scheduler.submit(spec())

        run(scenario())


class TestFairShare:
    def test_least_served_client_wins(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path, max_queue=8)
            scheduler.start()
            first = scheduler.submit(spec(0), client="hog")
            await wait_for(lambda: first.state == RUNNING)
            hog = scheduler.submit(spec(1), client="hog")
            meek = scheduler.submit(spec(2), client="meek")
            pool.gate(spec(0).cache_key()).set()
            # meek arrived later but has been served less than hog.
            await wait_for(lambda: meek.state == RUNNING)
            assert hog.state == QUEUED
            for tag in (1, 2):
                pool.gate(spec(tag).cache_key()).set()
            await wait_for(lambda: hog.finished and meek.finished)
            await scheduler.drain()

        run(scenario())

    def test_priority_trumps_history(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path, max_queue=8)
            scheduler.start()
            first = scheduler.submit(spec(0), client="hog")
            await wait_for(lambda: first.state == RUNNING)
            urgent = scheduler.submit(spec(1), client="hog", priority=5)
            meek = scheduler.submit(spec(2), client="meek")
            pool.gate(spec(0).cache_key()).set()
            await wait_for(lambda: urgent.state == RUNNING)
            assert meek.state == QUEUED
            for tag in (1, 2):
                pool.gate(spec(tag).cache_key()).set()
            await wait_for(lambda: urgent.finished and meek.finished)
            await scheduler.drain()

        run(scenario())


class TestCoalescing:
    def test_identical_in_flight_submissions_share_one_execution(
            self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            scheduler.start()
            primary = scheduler.submit(spec(), client="a")
            follower = scheduler.submit(spec(), client="b")
            assert follower.coalesced_with == primary.job_id
            assert scheduler.counters.coalesced == 1
            pool.gate(spec().cache_key()).set()
            await wait_for(lambda: primary.finished and follower.finished)
            assert pool.executions == 1
            assert primary.result == follower.result
            assert primary.state == follower.state == DONE
            await scheduler.drain()

        run(scenario())

    def test_cancelling_primary_promotes_follower(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            scheduler.start()
            primary = scheduler.submit(spec(), client="a")
            await wait_for(lambda: primary.state == RUNNING)
            follower = scheduler.submit(spec(), client="b")
            scheduler.cancel(primary.job_id)
            assert primary.state == CANCELLED
            # The computation survives under the promoted follower.
            assert follower.coalesced_with is None
            pool.gate(spec().cache_key()).set()
            await wait_for(lambda: follower.finished)
            assert follower.state == DONE
            assert pool.executions == 1
            await scheduler.drain()

        run(scenario())

    def test_cancelling_follower_leaves_primary_running(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            scheduler.start()
            primary = scheduler.submit(spec(), client="a")
            follower = scheduler.submit(spec(), client="b")
            scheduler.cancel(follower.job_id)
            assert follower.state == CANCELLED
            assert primary.followers == []
            pool.gate(spec().cache_key()).set()
            await wait_for(lambda: primary.finished)
            assert primary.state == DONE
            await scheduler.drain()

        run(scenario())


class TestCancellation:
    def test_cancel_running_frees_slot(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            scheduler.start()
            stuck = scheduler.submit(spec(0))
            queued = scheduler.submit(spec(1))
            await wait_for(lambda: stuck.state == RUNNING)
            scheduler.cancel(stuck.job_id)  # cooperative: gate never set
            await wait_for(lambda: stuck.state == CANCELLED)
            # The freed slot dispatches the queued job.
            await wait_for(lambda: queued.state == RUNNING)
            pool.gate(spec(1).cache_key()).set()
            await wait_for(lambda: queued.finished)
            assert queued.state == DONE
            assert scheduler.counters.cancelled == 1
            await scheduler.drain()

        run(scenario())

    def test_cancel_queued_is_immediate(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            scheduler.start()
            runner = scheduler.submit(spec(0))
            queued = scheduler.submit(spec(1))
            await wait_for(lambda: runner.state == RUNNING)
            scheduler.cancel(queued.job_id)
            assert queued.state == CANCELLED
            assert scheduler.queue_stats()["depth"] == 0
            pool.gate(spec(0).cache_key()).set()
            await wait_for(lambda: runner.finished)
            assert pool.executions == 1  # cancelled job never started
            await scheduler.drain()

        run(scenario())

    def test_resubmit_after_cancelling_running_primary_is_fresh(
            self, tmp_path):
        """Regression: an identical submission arriving while a
        follower-less cancelled primary was still winding down used to
        coalesce onto it and get spuriously CANCELLED."""
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            scheduler.start()
            doomed = scheduler.submit(spec(), client="a")
            await wait_for(lambda: doomed.state == RUNNING)
            scheduler.cancel(doomed.job_id)  # cooperative: winds down
            fresh = scheduler.submit(spec(), client="b")
            assert fresh.coalesced_with is None  # not glued to the dying job
            await wait_for(lambda: doomed.state == CANCELLED)
            await wait_for(lambda: fresh.state == RUNNING)
            pool.gate(spec().cache_key()).set()
            await wait_for(lambda: fresh.finished)
            assert fresh.state == DONE
            assert pool.executions == 2
            assert scheduler.counters.consistent()
            await scheduler.drain()

        run(scenario())

    def test_timeout_counts_and_cancels(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path, job_timeout=0.1)
            scheduler.start()
            job = scheduler.submit(spec())
            # Gate never set: the job can only end via timeout.
            await wait_for(lambda: job.finished)
            assert job.state == CANCELLED
            assert "timeout" in job.error
            assert scheduler.counters.timeouts == 1
            await scheduler.drain()

        run(scenario())


class TestCacheIntegration:
    def test_second_submit_after_done_is_cache_hit(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            scheduler.start()
            first = scheduler.submit(spec())
            pool.gate(spec().cache_key()).set()
            await wait_for(lambda: first.finished)
            second = scheduler.submit(spec())
            assert second.state == DONE  # instantly, from disk
            assert second.cache_hit
            assert second.result == first.result
            assert pool.executions == 1
            assert scheduler.counters.cache_hits == 1
            await scheduler.drain()

        run(scenario())

    def test_failed_jobs_are_not_cached(self, tmp_path):
        class ExplodingPool:
            executions = 0

            def execute(self, job_spec, cancel):
                ExplodingPool.executions += 1
                raise RuntimeError("boom")

        async def scenario():
            scheduler = Scheduler(ExplodingPool(),
                                  ResultCache(tmp_path / "cache"),
                                  max_queue=3, max_running=1)
            scheduler.start()
            first = scheduler.submit(spec())
            await wait_for(lambda: first.finished)
            assert first.state == FAILED
            assert "boom" in first.error
            second = scheduler.submit(spec())  # recomputes, no poison
            await wait_for(lambda: second.finished)
            assert ExplodingPool.executions == 2
            await scheduler.drain()

        run(scenario())


class TestDrain:
    def test_drain_cancels_queued_and_running(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            scheduler.start()
            runner = scheduler.submit(spec(0))
            queued = scheduler.submit(spec(1))
            await wait_for(lambda: runner.state == RUNNING)
            await scheduler.drain()  # returns only once all settled
            assert runner.state == CANCELLED
            assert queued.state == CANCELLED
            assert scheduler.counters.consistent()

        run(scenario())

    def test_drain_with_queued_follower_does_not_deadlock(self, tmp_path):
        """Regression: drain iterated a snapshot of the queue, so a
        queued primary's promoted follower landed back on the live
        queue and either deadlocked executor.shutdown or was left
        QUEUED forever."""
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            scheduler.start()
            runner = scheduler.submit(spec(0))
            await wait_for(lambda: runner.state == RUNNING)
            queued = scheduler.submit(spec(1), client="a")
            follower = scheduler.submit(spec(1), client="b")
            chained = scheduler.submit(spec(1), client="c")
            assert follower.coalesced_with == queued.job_id
            await asyncio.wait_for(scheduler.drain(), timeout=10)
            for job in (runner, queued, follower, chained):
                assert job.state == CANCELLED
            assert scheduler.queue_stats()["depth"] == 0
            assert scheduler.counters.consistent()

        run(scenario())


class TestCounters:
    def test_consistency_invariant(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path, max_queue=8)
            scheduler.start()
            done = scheduler.submit(spec(0))
            follower = scheduler.submit(spec(0))  # coalesces
            doomed = scheduler.submit(spec(1))
            scheduler.cancel(doomed.job_id)
            pool.gate(spec(0).cache_key()).set()
            await wait_for(lambda: done.finished and follower.finished)
            hit = scheduler.submit(spec(0))  # cache hit
            counters = scheduler.counters
            assert counters.accepted == 4
            assert counters.completed == 3  # primary + follower + hit
            assert counters.cancelled == 1
            assert counters.coalesced == 1
            assert counters.cache_hits == 1
            assert counters.consistent()
            await scheduler.drain()

        run(scenario())

    def test_counters_shape(self):
        counters = ServiceCounters()
        payload = counters.to_dict()
        assert set(payload) == {"accepted", "completed", "failed",
                                "cancelled", "rejected", "cache_hits",
                                "coalesced", "timeouts"}
        assert counters.consistent()
