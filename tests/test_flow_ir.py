"""CFG lowering semantics: exception edges, finally dual-lowering,
with-cleanup paths, abrupt-exit unwinding, and the reachability query
the S7 leak walk is built on."""

import ast
import textwrap

from repro.analysis.flow.ir import (build_cfg, call_args, dotted_name,
                                    iter_functions, parse_annotation)


def cfg_of(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    decls = list(iter_functions(tree))
    decl = decls[0] if name is None else next(
        d for d in decls if d.qualname == name)
    return build_cfg(decl.node, decl.qualname)


def blocks_at(cfg, lineno, kind=None):
    return [b for b in cfg.blocks
            if b.line == lineno and (kind is None or b.kind == kind)]


def block_at(cfg, lineno, kind=None):
    found = blocks_at(cfg, lineno, kind)
    assert len(found) == 1, (lineno, found)
    return found[0]


def reaches_raise(cfg, start, stop_lines=()):
    return cfg.can_reach(
        start.idx, cfg.raise_exit,
        stop=lambda b: b.line in stop_lines and b.kind != "join")


class TestExceptionEdges:
    def test_plain_stmt_raises_to_exit(self):
        cfg = cfg_of("""
            def f(path):
                fh = open(path)
                fh.read()
                fh.close()
            """)
        acquire = block_at(cfg, 3)
        assert cfg.blocks[acquire.exc].kind == "raise"
        # read() can raise before close() runs, so stopping at the
        # close line does not sever the path to the raise exit.
        assert reaches_raise(cfg, acquire, stop_lines=(5,))

    def test_start_exc_edge_excluded(self):
        # If the acquisition itself raises, the resource never
        # existed: a function whose only statement is the acquisition
        # must not reach the raise exit from it.
        cfg = cfg_of("""
            def f(path):
                fh = open(path)
            """)
        acquire = block_at(cfg, 3)
        assert not reaches_raise(cfg, acquire)

    def test_handler_catches_but_porous_dispatch_escapes(self):
        cfg = cfg_of("""
            def f(path):
                fh = open(path)
                try:
                    fh.read()
                except ValueError:
                    fh.close()
            """)
        acquire = block_at(cfg, 3)
        # A non-ValueError escapes the dispatch and bypasses close().
        assert reaches_raise(cfg, acquire, stop_lines=(7,))

    def test_exhaustive_handler_seals_the_dispatch(self):
        for clause in ("except BaseException:", "except Exception:",
                       "except:"):
            cfg = cfg_of(f"""
                def f(path):
                    fh = open(path)
                    try:
                        fh.read()
                    {clause}
                        fh.close()
                        raise
                """)
            acquire = block_at(cfg, 3)
            assert not reaches_raise(cfg, acquire, stop_lines=(7,)), clause


class TestFinally:
    def test_finally_lowered_on_both_paths(self):
        cfg = cfg_of("""
            def f(fh):
                try:
                    fh.read()
                finally:
                    fh.close()
            """)
        # One copy on the normal path, one on the exception path.
        assert len(blocks_at(cfg, 6, kind="stmt")) == 2

    def test_exception_path_runs_finally_then_reraises(self):
        cfg = cfg_of("""
            def f(fh):
                try:
                    fh.read()
                finally:
                    fh.close()
            """)
        body = block_at(cfg, 4)
        # Every raise path out of the body passes a close() block.
        assert not reaches_raise(cfg, body, stop_lines=(6,))

    def test_return_unwinds_through_finally(self):
        cfg = cfg_of("""
            def f(fh):
                try:
                    return fh.read()
                finally:
                    fh.close()
            """)
        ret = block_at(cfg, 4)
        # The return cannot reach the exit without executing a
        # finally copy.
        assert not cfg.can_reach(ret.idx, cfg.exit,
                                 stop=lambda b: b.line == 6)
        assert cfg.can_reach(ret.idx, cfg.exit, stop=lambda b: False)


class TestWith:
    def test_with_exception_path_passes_cleanup(self):
        cfg = cfg_of("""
            def f(path):
                with open(path) as fh:
                    fh.read()
            """)
        body = block_at(cfg, 4)
        assert not cfg.can_reach(
            body.idx, cfg.raise_exit,
            stop=lambda b: b.kind == "with-cleanup")

    def test_with_enter_exc_bypasses_cleanup(self):
        # If __enter__ itself raises, __exit__ never runs.
        cfg = cfg_of("""
            def f(path):
                with open(path) as fh:
                    fh.read()
            """)
        enter = block_at(cfg, 3, kind="with-enter")
        assert cfg.blocks[enter.exc].kind == "raise"

    def test_block_exprs_cover_items_and_targets(self):
        cfg = cfg_of("""
            def f(path):
                with open(path) as fh:
                    fh.read()
            """)
        enter = block_at(cfg, 3, kind="with-enter")
        exprs = cfg.block_exprs(enter)
        assert any(isinstance(e, ast.Call) for e in exprs)
        assert any(isinstance(e, ast.Name) and e.id == "fh"
                   for e in exprs)


class TestLoops:
    def test_break_exits_continue_loops(self):
        cfg = cfg_of("""
            def f(items):
                for item in items:
                    if item:
                        break
                    continue
                return items
            """)
        brk = block_at(cfg, 5)
        cont = block_at(cfg, 6)
        head = block_at(cfg, 3, kind="branch")
        ret = block_at(cfg, 7)
        assert cfg.can_reach(brk.idx, ret.idx, stop=lambda b: b is head)
        assert cfg.can_reach(cont.idx, head.idx, stop=lambda b: False)
        assert not cfg.can_reach(cont.idx, ret.idx,
                                 stop=lambda b: b is head)

    def test_break_unwinds_inner_with(self):
        cfg = cfg_of("""
            def f(items, path):
                for item in items:
                    with open(path) as fh:
                        break
                return items
            """)
        brk = block_at(cfg, 5)
        ret = block_at(cfg, 6)
        assert not cfg.can_reach(
            brk.idx, ret.idx, stop=lambda b: b.kind == "with-cleanup")


class TestHelpers:
    def test_dotted_name(self):
        assert dotted_name(ast.parse("a.b.c", mode="eval").body) == "a.b.c"
        assert dotted_name(ast.parse("x", mode="eval").body) == "x"
        assert dotted_name(ast.parse("f().g", mode="eval").body) is None

    def test_iter_functions_qualnames(self):
        tree = ast.parse(textwrap.dedent("""
            def top():
                def inner():
                    pass
            class C:
                async def method(self):
                    pass
            """))
        decls = {d.qualname: d for d in iter_functions(tree)}
        assert set(decls) == {"top", "top.inner", "C.method"}
        assert decls["top.inner"].parent == "top"
        assert decls["C.method"].cls == "C"
        assert decls["C.method"].is_async

    def test_parse_annotation(self):
        def ann(src):
            return ast.parse(src, mode="eval").body
        assert parse_annotation(ann("Foo")) == "Foo"
        assert parse_annotation(ann("mod.Foo")) == "Foo"
        assert parse_annotation(ann("Optional[Foo]")) == "Foo"
        assert parse_annotation(ann("'Foo'")) == "Foo"
        assert parse_annotation(ann("Dict[str, int]")) is None
        assert parse_annotation(None) is None

    def test_call_args_orders_positional_first(self):
        call = ast.parse("f(1, 2, key=3)", mode="eval").body
        pairs = call_args(call)
        assert [kw for kw, _ in pairs] == [None, None, "key"]
