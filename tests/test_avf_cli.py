"""Tests for ``python -m repro avf`` and the AVF report envelope."""

import json

import pytest

from repro.__main__ import main
from repro.avf.analyzer import ALL_CLASSES, analyze_program
from repro.avf.report import avf_payload, render_avf, render_avf_json
from repro.isa.assembler import assemble

DEMO_ASM = """
    .segment 0x1000 0x1100
    ldi  r1, 0xF5
    andi r2, r1, 0x0F
    st   r0, 0x1000, r2
    halt
"""


@pytest.fixture()
def asm_file(tmp_path):
    path = tmp_path / "demo.asm"
    path.write_text(DEMO_ASM, encoding="utf-8")
    return path


class TestAvfCli:
    def test_assembly_file_text(self, asm_file, capsys):
        assert main(["avf", str(asm_file)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "register" in out and "dest-field" in out
        assert "AVF" in out

    def test_generated_profile(self, capsys):
        assert main(["avf", "--generated", "compress",
                     "--steps", "300"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out

    def test_generated_with_seed_suffix(self, capsys):
        assert main(["avf", "--generated", "compress@2",
                     "--steps", "200"]) == 0
        assert "compress" in capsys.readouterr().out

    def test_json_envelope(self, asm_file, capsys):
        assert main(["avf", str(asm_file), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["tool"] == "avf"
        assert payload["ok"] is True
        assert isinstance(payload["findings"], list)
        (program,) = payload["programs"]
        names = [c["name"] for c in program["components"]]
        assert "register" in names and "memory" in names

    def test_no_input_is_usage_error(self, capsys):
        assert main(["avf"]) == 2
        assert "nothing to analyze" in capsys.readouterr().err

    def test_bad_profile_is_usage_error(self, capsys):
        assert main(["avf", "--generated", "nonesuch"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_steps_is_usage_error(self, capsys):
        assert main(["avf", "--generated", "compress",
                     "--steps", "0"]) == 2
        capsys.readouterr()

    def test_missing_file_is_usage_error(self, capsys, tmp_path):
        assert main(["avf", str(tmp_path / "absent.asm")]) == 2
        capsys.readouterr()

    def test_listed_in_command_list(self, capsys):
        assert main(["list"]) == 0
        assert "avf" in capsys.readouterr().out


class TestAvfReport:
    def _summary(self):
        return analyze_program(assemble(DEMO_ASM), steps=100).summary()

    def test_render_text_has_all_classes(self):
        text = render_avf(self._summary())
        for cls in ALL_CLASSES:
            assert cls in text

    def test_payload_shares_envelope_shape(self):
        payload = avf_payload([self._summary()])
        assert set(payload) >= {"version", "tool", "ok", "findings",
                                "programs"}

    def test_json_is_deterministic(self):
        a = render_avf_json([self._summary()])
        b = render_avf_json([self._summary()])
        assert a == b
