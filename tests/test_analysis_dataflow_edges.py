"""Dataflow edge cases: degenerate CFG shapes the solvers must survive.

Three families, each a known fixpoint-solver trap:

- a ``membar`` as the *first* instruction (an instruction with no
  register operands leading the entry block);
- a self-loop single-block CFG (``loop: br loop`` — the block is its
  own predecessor and successor, so a naive "process preds first"
  ordering never terminates or never starts);
- a join whose register is must-initialized on one predecessor and
  only may-initialized on the other (the must/may lattice split that
  drives A1 vs A2 findings).

Both the word-level solvers (:mod:`repro.analysis.dataflow`) and the
bit-level solvers behind the AVF analyzer
(:mod:`repro.analysis.valueflow`) are exercised on each shape.
"""

from repro.analysis.cfg import build_cfg
from repro.analysis.checks import verify_program
from repro.analysis.dataflow import (solve_initialized, solve_liveness)
from repro.analysis.valueflow import (solve_bit_liveness, solve_known_bits)
from repro.isa.assembler import assemble

ALL64 = (1 << 64) - 1


def findings_by_rule(report):
    table = {}
    for finding in report.findings:
        table.setdefault(finding.rule, []).append(finding)
    return table


class TestMembarFirst:
    SOURCE = """
        membar
        ldi  r1, 5
        halt
    """

    def test_cfg_and_word_solvers(self):
        program = assemble(self.SOURCE)
        cfg = build_cfg(program)
        must = solve_initialized(cfg, must=True)
        may = solve_initialized(cfg, must=False)
        # Entry facts are just the entry mask; membar defines nothing.
        assert must[cfg.entry] == 1  # r0 only
        assert may[cfg.entry] == 1
        live_in, _ = solve_liveness(cfg)
        assert live_in[cfg.entry] == 0  # membar neither uses nor defines

    def test_bit_solvers(self):
        program = assemble(self.SOURCE)
        cfg = build_cfg(program)
        known = solve_known_bits(cfg)
        assert known[cfg.entry] is not None
        liveness = solve_bit_liveness(cfg)
        # membar at pc 0: no register is live before it.
        assert liveness.live_before[0] == 0
        assert all(mask == 0 for mask in liveness.before[0])

    def test_no_spurious_findings(self):
        report = verify_program(assemble(self.SOURCE))
        assert "A1-uninit-read" not in findings_by_rule(report)


class TestSelfLoopSingleBlock:
    SOURCE = "loop: br loop\n"

    def test_cfg_shape(self):
        cfg = build_cfg(assemble(self.SOURCE))
        assert len(cfg.blocks) == 1
        block = cfg.blocks[cfg.entry]
        assert list(block.successors) == [cfg.entry]
        assert list(block.predecessors) == [cfg.entry]

    def test_word_solvers_terminate(self):
        cfg = build_cfg(assemble(self.SOURCE))
        must = solve_initialized(cfg, must=True)
        may = solve_initialized(cfg, must=False)
        # The back edge must not erode the entry facts: r0 stays
        # initialized, nothing else becomes initialized.
        assert must[cfg.entry] == 1
        assert may[cfg.entry] == 1
        live_in, live_out = solve_liveness(cfg)
        assert live_in[cfg.entry] == 0
        assert live_out[cfg.entry] == 0

    def test_bit_solvers_terminate(self):
        cfg = build_cfg(assemble(self.SOURCE))
        known = solve_known_bits(cfg)
        assert known[cfg.entry] is not None
        liveness = solve_bit_liveness(cfg)
        assert len(liveness.before) == 1

    def test_self_loop_with_induction_keeps_state(self):
        # A one-block counting loop: the block is its own predecessor,
        # and r1 is both defined and used across the back edge.
        source = """
            ldi r1, 10
        loop:
            addi r1, r1, -1
            bnez r1, loop
            halt
        """
        cfg = build_cfg(assemble(source))
        loop_blocks = [i for i, b in enumerate(cfg.blocks)
                       if i in b.successors or i in b.predecessors]
        assert loop_blocks  # the loop block self-links
        index = loop_blocks[0]
        must = solve_initialized(cfg, must=True)
        assert must[index] >> 1 & 1  # r1 initialized at loop entry
        live_in, _ = solve_liveness(cfg)
        assert live_in[index] >> 1 & 1  # r1 live around the back edge
        liveness = solve_bit_liveness(cfg)
        pc = cfg.blocks[index].start
        assert liveness.before[pc][1] != 0  # some r1 bits demanded


class TestMustMayJoinSplit:
    # r2 is written on the taken arm only: after the join it is
    # may-initialized (some path defines it) but not must-initialized
    # (the fall-through path does not).  The store makes r3 (and so the
    # add's operands) demanded by the backward bit-liveness pass.
    SOURCE = """
        ldi  r1, 1
        beqz r1, skip
        ldi  r2, 7
    skip:
        add  r3, r2, r1
        st   r0, 0x1000, r3
        halt
    """

    def _join_block(self, cfg):
        # The join block is the one starting at the 'add'.
        for index, block in enumerate(cfg.blocks):
            if len(block.predecessors) == 2:
                return index
        raise AssertionError("no two-predecessor join block found")

    def test_must_and_may_masks_diverge(self):
        cfg = build_cfg(assemble(self.SOURCE))
        join = self._join_block(cfg)
        must = solve_initialized(cfg, must=True)
        may = solve_initialized(cfg, must=False)
        assert not must[join] >> 2 & 1  # r2 NOT must-init at the join
        assert may[join] >> 2 & 1       # ...but may-init
        assert must[join] >> 1 & 1      # r1 is must-init on both arms

    def test_maybe_uninit_warning_not_error(self):
        report = verify_program(assemble(self.SOURCE))
        rules = findings_by_rule(report)
        assert "A2-maybe-uninit-read" in rules
        assert "A1-uninit-read" not in rules
        (finding,) = rules["A2-maybe-uninit-read"]
        assert "r2" in finding.message

    def test_never_written_is_error(self):
        # Contrast case: a register no path defines is A1, not A2.
        source = """
            ldi  r1, 1
            add  r3, r2, r1
            halt
        """
        report = verify_program(assemble(source))
        rules = findings_by_rule(report)
        assert "A1-uninit-read" in rules

    def test_bit_liveness_sees_both_arms(self):
        cfg = build_cfg(assemble(self.SOURCE))
        join = self._join_block(cfg)
        pc = cfg.blocks[join].start
        liveness = solve_bit_liveness(cfg)
        # The add at the join demands bits of both r1 and r2.
        assert liveness.before[pc][1] != 0
        assert liveness.before[pc][2] != 0
