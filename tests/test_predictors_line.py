"""Unit tests for the line predictor."""

from repro.predictors.line_predictor import LinePredictor


class TestLinePredictor:
    def test_cold_predicts_sequential(self):
        predictor = LinePredictor(entries=1024, chunk_size=8)
        assert predictor.predict(100) == 108
        assert predictor.stats.cold_misses == 1

    def test_trains_on_verify_mismatch(self):
        predictor = LinePredictor(entries=1024)
        predicted = predictor.predict(100)
        assert not predictor.verify(100, predicted, actual=300)
        assert predictor.stats.mispredictions == 1
        assert predictor.predict(100) == 300

    def test_correct_verify_counts_no_misprediction(self):
        predictor = LinePredictor(entries=1024)
        predictor.train(100, 300)
        predicted = predictor.predict(100)
        assert predictor.verify(100, predicted, actual=300)
        assert predictor.stats.mispredictions == 0

    def test_aliasing_between_pcs(self):
        """Distinct PCs sharing a table entry retrain each other —
        the effect that defeats sharing the line predictor between
        redundant threads (Section 4.4)."""
        predictor = LinePredictor(entries=16)
        pcs = range(0, 16 * 40, 16)
        aliased = False
        predictor.train(0, 999)
        for pc in pcs:
            predictor.train(pc, pc + 8)
        if predictor.predict(0) != 999:
            aliased = True
        assert aliased

    def test_misprediction_rate(self):
        predictor = LinePredictor(entries=1024)
        for _ in range(10):
            p = predictor.predict(0)
            predictor.verify(0, p, actual=0 + 8)
        assert predictor.stats.misprediction_rate == 0.0
