"""Unit tests for the load value queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lvq import LoadValueQueue


class TestLvq:
    def test_write_probe_roundtrip(self):
        lvq = LoadValueQueue(capacity=4, forward_latency=2)
        lvq.write(0, addr=0x100, value=42, now=10)
        assert lvq.probe(0, now=11) is None      # not yet forwarded
        assert lvq.probe(0, now=12) == (0x100, 42)

    def test_out_of_order_probe_by_tag(self):
        """The trailing thread issues loads out of order (Section 4.1)."""
        lvq = LoadValueQueue(capacity=8, forward_latency=0)
        lvq.write(0, 0x100, 1, now=0)
        lvq.write(1, 0x200, 2, now=0)
        lvq.write(2, 0x300, 3, now=0)
        assert lvq.probe(2, now=0) == (0x300, 3)
        assert lvq.probe(0, now=0) == (0x100, 1)

    def test_consume_deallocates(self):
        lvq = LoadValueQueue(capacity=2, forward_latency=0)
        lvq.write(0, 0x100, 1, now=0)
        lvq.consume(0)
        assert lvq.probe(0, now=5) is None
        assert len(lvq) == 0

    def test_capacity_gates_via_has_room(self):
        lvq = LoadValueQueue(capacity=2, forward_latency=0)
        lvq.write(0, 0, 0, now=0)
        lvq.write(1, 0, 0, now=0)
        assert not lvq.has_room()
        assert lvq.stats.full_stalls == 1
        with pytest.raises(RuntimeError):
            lvq.write(2, 0, 0, now=0)

    def test_missing_tag_is_none(self):
        lvq = LoadValueQueue()
        assert lvq.probe(99, now=100) is None

    def test_peak_occupancy(self):
        lvq = LoadValueQueue(capacity=8, forward_latency=0)
        for i in range(5):
            lvq.write(i, 0, 0, now=0)
        for i in range(5):
            lvq.consume(i)
        assert lvq.stats.peak_occupancy == 5

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1000),
                              st.integers(0, 1 << 40),
                              st.integers(0, 1 << 63)),
                    min_size=1, max_size=30, unique_by=lambda t: t[0]))
    def test_roundtrip_property(self, entries):
        lvq = LoadValueQueue(capacity=64, forward_latency=3)
        for tag, addr, value in entries[:60]:
            lvq.write(tag, addr, value, now=0)
        for tag, addr, value in entries[:60]:
            assert lvq.probe(tag, now=3) == (addr, value)
            lvq.consume(tag)
        assert len(lvq) == 0
