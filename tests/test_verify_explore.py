"""The generic explorer: BFS minimality, sleep-set POR soundness
(same states, same verdict), replay, and budget enforcement — on small
hand-built transition systems where the full state space is known."""

from typing import FrozenSet, List, Optional, Tuple

import pytest

from repro.verify.explore import (Counterexample, StateExplosion,
                                  TransitionSystem, explore, explore_bfs,
                                  explore_por, replay)


class TwoCounters(TransitionSystem):
    """Two independent counters 0..limit; truly commuting transitions.

    The full graph is the (limit+1)^2 grid; every interleaving of
    ``a``/``b`` steps commutes, so sleep sets should prune transitions
    while still visiting every grid point.
    """

    name = "two-counters"

    def __init__(self, limit: int = 3,
                 poison: Optional[Tuple[int, int]] = None) -> None:
        self.limit = limit
        self.poison = poison

    def initial(self):
        return (0, 0)

    def enabled(self, state):
        a, b = state
        out = []
        if a < self.limit:
            out.append(("a", (a + 1, b)))
        if b < self.limit:
            out.append(("b", (a, b + 1)))
        return out

    def is_final(self, state):
        return state == (self.limit, self.limit)

    def check(self, state):
        if self.poison is not None and state == self.poison:
            return f"poisoned state {state}"
        return None

    def footprint(self, label: str) -> FrozenSet[str]:
        return frozenset((label,))


class Wedge(TransitionSystem):
    """Deadlocks after the schedule x, y (and only there)."""

    name = "wedge"

    def initial(self):
        return 0

    def enabled(self, state):
        if state == 0:
            return [("x", 1), ("z", 3)]
        if state == 1:
            return [("y", 2)]
        if state == 3:
            return [("w", 4)]
        return []  # 2 deadlocks, 4 is final

    def is_final(self, state):
        return state == 4

    def footprint(self, label):
        return frozenset(("*",))


class TestBfs:
    def test_explores_full_grid(self):
        result = explore_bfs(TwoCounters(3))
        assert result.ok
        assert result.states == 16  # (3+1)^2
        assert result.transitions == 2 * 3 * 4  # edges of the grid
        assert result.final_states == 1

    def test_minimal_counterexample(self):
        result = explore_bfs(TwoCounters(3, poison=(2, 1)))
        assert not result.ok
        ce = result.counterexample
        assert ce.kind == "invariant"
        assert ce.minimal
        assert len(ce.schedule) == 3  # Manhattan distance to (2, 1)
        # BFS tie-breaks by enumeration order: 'a' steps first.
        assert ce.schedule == ("a", "a", "b")

    def test_deadlock_detection(self):
        result = explore_bfs(Wedge())
        assert not result.ok
        assert result.counterexample.kind == "deadlock"
        assert result.counterexample.schedule == ("x", "y")

    def test_state_budget(self):
        with pytest.raises(StateExplosion):
            explore_bfs(TwoCounters(100), max_states=50)


class TestPor:
    def test_same_states_same_verdict(self):
        full = explore_bfs(TwoCounters(4))
        por = explore_por(TwoCounters(4))
        assert por.ok and full.ok
        assert por.states == full.states  # sleep sets prune transitions,
        assert por.sleep_skips > 0        # never states

    def test_violation_still_found(self):
        por = explore_por(TwoCounters(4, poison=(3, 3)))
        assert not por.ok
        assert por.counterexample.kind == "invariant"

    def test_deadlock_still_found(self):
        por = explore_por(Wedge())
        assert not por.ok
        assert por.counterexample.kind == "deadlock"

    def test_por_schedule_is_valid_even_if_not_minimal(self):
        system = TwoCounters(4, poison=(2, 2))
        por = explore_por(system)
        _, violation = replay(system, por.counterexample.schedule)
        assert violation is not None


class TestExploreWrapper:
    def test_por_violation_gets_minimal_trace(self):
        system = TwoCounters(4, poison=(2, 2))
        result = explore(system, por=True)
        assert result.por
        assert not result.ok
        assert result.counterexample.minimal
        assert len(result.counterexample.schedule) == 4

    def test_no_por_passthrough(self):
        result = explore(TwoCounters(2), por=False)
        assert result.ok and not result.por


class TestReplay:
    def test_replays_to_violation(self):
        system = TwoCounters(3, poison=(1, 1))
        state, violation = replay(system, ("a", "b"))
        assert state == (1, 1)
        assert "poisoned" in violation

    def test_rejects_disabled_label(self):
        system = TwoCounters(1)
        with pytest.raises(ValueError, match="not enabled"):
            replay(system, ("a", "a"))  # second 'a' beyond the limit

    def test_to_dict_shape(self):
        result = explore(TwoCounters(2, poison=(1, 0)))
        payload = result.to_dict()
        assert payload["ok"] is False
        assert payload["counterexample"]["schedule"] == ["a"]
        assert payload["counterexample"]["minimal"] is True
