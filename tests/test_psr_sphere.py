"""Unit tests for PSR tracking and sphere-of-replication accounting."""

from repro.core.psr import FuCorrespondenceTracker
from repro.core.sphere import SphereOfReplication
from repro.isa.instructions import FuClass


class TestFuCorrespondenceTracker:
    def test_same_unit_counted(self):
        tracker = FuCorrespondenceTracker()
        tracker.leading_retired((FuClass.INT, 3), 0)
        tracker.trailing_retired((FuClass.INT, 3), 0)
        assert tracker.stats.pairs == 1
        assert tracker.stats.same_unit == 1
        assert tracker.stats.same_half == 1

    def test_different_unit_counted(self):
        tracker = FuCorrespondenceTracker()
        tracker.leading_retired((FuClass.INT, 3), 0)
        tracker.trailing_retired((FuClass.INT, 7), 1)
        assert tracker.stats.pairs == 1
        assert tracker.stats.same_unit == 0
        assert tracker.stats.same_half == 0

    def test_pairs_matched_by_retirement_index(self):
        tracker = FuCorrespondenceTracker()
        tracker.leading_retired((FuClass.INT, 0), 0)
        tracker.leading_retired((FuClass.FP, 1), 1)
        tracker.trailing_retired((FuClass.INT, 0), 0)   # pairs with first
        tracker.trailing_retired((FuClass.FP, 2), 0)    # pairs with second
        assert tracker.stats.pairs == 2
        assert tracker.stats.same_unit == 1

    def test_missing_fu_ignored(self):
        tracker = FuCorrespondenceTracker()
        tracker.leading_retired(None, 0)
        tracker.trailing_retired((FuClass.INT, 0), 0)
        assert tracker.stats.pairs == 0

    def test_fraction_properties(self):
        tracker = FuCorrespondenceTracker()
        assert tracker.stats.same_unit_fraction == 0.0
        for i in range(4):
            tracker.leading_retired((FuClass.INT, 0), 0)
        for i in range(4):
            tracker.trailing_retired((FuClass.INT, i % 2), 0)
        assert tracker.stats.same_unit_fraction == 0.5


class TestSphere:
    def test_counters(self):
        sphere = SphereOfReplication("test")
        sphere.record_input()
        sphere.record_input(3)
        sphere.record_comparison(matched=True)
        sphere.record_comparison(matched=False)
        sphere.record_forwarded()
        sphere.record_uncovered("lvq-ecc")
        summary = sphere.summary()
        assert summary["inputs_replicated"] == 4
        assert summary["outputs_compared"] == 2
        assert summary["mismatches"] == 1
        assert summary["outputs_forwarded"] == 1
        assert sphere.uncovered["lvq-ecc"] == 1
