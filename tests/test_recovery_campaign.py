"""Campaign-layer recovery integration: determinism, timeouts, report."""

from repro.campaign.engine import CampaignEngine
from repro.campaign.report import render_report
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.campaign.worker import _timed_out_record
from repro.core.config import MachineConfig
from repro.core.machine import make_machine
from repro.core.metrics import Termination
from repro.isa.generator import generate_benchmark

TERMINATION_VOCABULARY = {t.value for t in Termination}


def recovery_spec(**overrides):
    base = dict(kinds=("srt",), workloads=("gcc",),
                models=("transient-result", "stuck-unit"),
                injections=3, seed=7, instructions=500, warmup=1500,
                config={"recovery_enabled": True})
    base.update(overrides)
    return CampaignSpec(**base)


class TestRecoveryCampaign:
    def test_records_carry_termination(self, tmp_path):
        spec = recovery_spec()
        CampaignEngine(spec, tmp_path / "camp").run()
        records = CampaignStore(tmp_path / "camp").records()
        assert len(records) == spec.total_tasks()
        for record in records:
            assert record["termination"] in TERMINATION_VOCABULARY
        # A stuck INT unit on a recovery-enabled machine exhausts the
        # checkpoint ring on at least one site.
        stuck = [r for r in records if r["model"] == "stuck-unit"]
        assert any(r["termination"] == "unrecoverable" for r in stuck)
        assert any(r["outcome"] == "unrecoverable" for r in stuck)
        # Recovered rows expose their rollback metrics.
        for record in records:
            if record["termination"] == "recovered":
                assert record["recovery_latency"] > 0
                assert record["rollback_depth"] > 0

    def test_results_identical_across_jobs(self, tmp_path):
        """Recovery-enabled campaigns keep the byte-identity guarantee:
        the artifact is the same at any ``--jobs`` level."""
        spec = recovery_spec()
        CampaignEngine(spec, tmp_path / "serial", jobs=1).run()
        CampaignEngine(spec, tmp_path / "pool", jobs=2).run()
        serial = (tmp_path / "serial" / "results.jsonl").read_bytes()
        pool = (tmp_path / "pool" / "results.jsonl").read_bytes()
        assert serial == pool

    def test_resume_skips_completed_recovery_tasks(self, tmp_path):
        spec = recovery_spec(injections=2)
        out = tmp_path / "camp"
        first = CampaignEngine(spec, out).run()
        assert first["executed"] == spec.total_tasks()
        second = CampaignEngine(spec, out).run()
        assert second["executed"] == 0
        assert second["already_complete"] == spec.total_tasks()


class TestTimeoutForensics:
    TASK = {"task_id": "t0", "index": 0, "kind": "base",
            "workload": "gcc", "model": "transient-result",
            "fault": {"model": "transient-result", "cycle": 5,
                      "core_index": 0, "bit": 1}}

    def test_timed_out_record_without_machine(self):
        record = _timed_out_record(self.TASK)
        assert record["timed_out"] is True
        assert record["outcome"] == "hung"
        assert record["termination"] == "hung"
        assert "fingerprint" not in record

    def test_timed_out_record_salvages_watchdog_fingerprint(self):
        """A wedged machine interrupted by the wall-clock alarm still
        contributes its last progress fingerprint to the record."""
        program = generate_benchmark("gcc")
        machine = make_machine("base", MachineConfig(), [program])
        machine._arm(max_instructions=1000)
        for _ in range(200):
            machine.step()
        record = _timed_out_record(self.TASK, machine=machine)
        fingerprint = record["fingerprint"]
        assert fingerprint["cycle"] > 0
        assert fingerprint["queues"]
        assert fingerprint["blockers"]


class TestTerminationReport:
    RECORDS = [
        {"task_id": "a", "kind": "srt", "workload": "gcc",
         "model": "transient-result", "outcome": "recovered",
         "termination": "recovered", "recovery_latency": 40,
         "latency": 12, "timed_out": False},
        {"task_id": "b", "kind": "srt", "workload": "gcc",
         "model": "stuck-unit", "outcome": "unrecoverable",
         "termination": "unrecoverable", "latency": 30,
         "timed_out": False},
        {"task_id": "c", "kind": "srt", "workload": "gcc",
         "model": "transient-result", "outcome": "masked",
         "termination": "done", "latency": None, "timed_out": False},
        {"task_id": "d", "kind": "srt", "workload": "gcc",
         "model": "transient-result", "outcome": "hung",
         "termination": "hung", "latency": None, "timed_out": True},
    ]

    def test_by_termination_appends_tables(self):
        text = render_report(self.RECORDS, by_termination=True)
        assert "campaign_termination" in text
        assert "recovered" in text and "unrecoverable" in text
        assert "timed-out" in text
        assert "campaign_recovery" in text  # latency summary present

    def test_default_report_omits_termination_tables(self):
        text = render_report(self.RECORDS)
        assert "campaign_termination" not in text

    def test_recovered_and_unrecoverable_count_as_detected(self):
        """Coverage accounting: a corrected or ring-exhausted fault was
        still *detected* — neither is silent corruption."""
        text = render_report(self.RECORDS, by_termination=True)
        # 3 unmasked (recovered + unrecoverable + hung), 2 detected-like.
        assert "campaign:" in text
