"""Unit tests for the bit-level lattices behind the AVF analyzer:
known-bits transfer functions and the backward demand solver."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.valueflow import (KB_TOP, KB_ZERO, KnownBits, kb_add,
                                      kb_and, kb_const, kb_mul, kb_not,
                                      kb_or, kb_shl, kb_shr, kb_sub,
                                      kb_xor, solve_bit_liveness,
                                      solve_known_bits)
from repro.isa.assembler import assemble
from repro.util.bits import MASK64

ALL64 = MASK64


class TestKnownBitsLattice:
    def test_const_is_fully_known(self):
        kb = kb_const(0xDEAD)
        assert kb.is_constant
        assert kb.known_one == 0xDEAD
        assert kb.known_zero == MASK64 ^ 0xDEAD

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            KnownBits(mask=0x1, value=0x2)

    def test_join_keeps_agreeing_bits(self):
        joined = kb_const(0b1100).join(kb_const(0b1010))
        # Bits 0 (both 0) and 3 (both 1) agree; bits 1, 2 disagree.
        assert joined.known_one == 0b1000
        assert (joined.known_zero & 0b0111) == 0b0001

    def test_join_with_top_is_top(self):
        assert kb_const(7).join(KB_TOP).mask == 0


def exhaustive_check(op, kb_op, width=4):
    """Every abstract result must cover every concrete result pair."""
    values = range(1 << width)
    for av in values:
        for bv in values:
            abstract = kb_op(kb_const(av), kb_const(bv))
            concrete = op(av, bv) & MASK64
            # Constant inputs => constant (sound and precise) output.
            assert abstract.is_constant
            assert abstract.value == concrete


class TestTransferFunctions:
    def test_add_constants_exact(self):
        exhaustive_check(lambda a, b: a + b, kb_add)

    def test_sub_constants_exact(self):
        exhaustive_check(lambda a, b: a - b, kb_sub)

    def test_mul_constants_exact(self):
        exhaustive_check(lambda a, b: a * b, kb_mul, width=3)

    def test_bitwise_constants_exact(self):
        exhaustive_check(lambda a, b: a & b, kb_and)
        exhaustive_check(lambda a, b: a | b, kb_or)
        exhaustive_check(lambda a, b: a ^ b, kb_xor)

    def test_and_with_partial_knowledge(self):
        # unknown & known-zero = known-zero, regardless of the unknown.
        result = kb_and(KB_TOP, kb_const(0x0F))
        assert result.known_zero & ~0x0F == MASK64 & ~0x0F

    def test_or_with_partial_knowledge(self):
        result = kb_or(KB_TOP, kb_const(0xF0))
        assert result.known_one == 0xF0

    def test_not_flips_knowledge(self):
        kb = kb_not(kb_const(0))
        assert kb.is_constant and kb.value == MASK64

    def test_add_soundness_with_unknowns(self):
        # a = xxxx1000 (low 4 bits known), b = 1: the low three result
        # bits are knowable, bits above the unknown region are not.
        a = KnownBits(mask=0xF, value=0x8)
        result = kb_add(a, kb_const(1))
        assert result.mask & 0x7 == 0x7
        assert result.value & 0x7 == 0x1  # 8 + 1 = 9 -> low bits 001

    def test_shifts_with_known_amount(self):
        assert kb_shl(kb_const(1), kb_const(4)).value == 16
        assert kb_shr(kb_const(16), kb_const(4)).value == 1

    def test_shift_with_unknown_amount_is_top_or_sound(self):
        result = kb_shl(kb_const(1), KB_TOP)
        for amount in range(64):
            concrete = (1 << amount) & MASK64
            assert concrete & result.known_zero == 0
            assert result.known_one & ~concrete == 0

    def test_zero_identities(self):
        assert kb_add(KB_ZERO, KB_TOP).mask == 0
        assert kb_and(KB_ZERO, KB_TOP).value == 0
        # 0 * unknown: the abstraction may lose precision but must
        # never claim a one bit.
        assert kb_mul(KB_ZERO, KB_TOP).known_one == 0


class TestKnownBitsSolver:
    def test_constants_propagate_through_blocks(self):
        cfg = build_cfg(assemble("""
            ldi r1, 12
            addi r2, r1, 30
            st  r0, 0x1000, r2
            halt
        """))
        states = solve_known_bits(cfg)
        entry_state = states[cfg.entry]
        assert entry_state is not None

    def test_loop_reaches_fixpoint(self):
        cfg = build_cfg(assemble("""
            ldi r1, 8
        loop:
            addi r1, r1, -1
            bnez r1, loop
            halt
        """))
        states = solve_known_bits(cfg)
        assert all(states[i] is not None for i in cfg.reachable())


class TestDemandSolver:
    def test_andi_masks_demand(self):
        cfg = build_cfg(assemble("""
            ldi  r1, 0xFF
            andi r2, r1, 0x0F
            st   r0, 0x1000, r2
            halt
        """))
        liveness = solve_bit_liveness(cfg)
        # Before the andi (pc 1), only r1's low nibble is demanded.
        assert liveness.before[1][1] == 0x0F

    def test_store_demands_all_value_bits(self):
        cfg = build_cfg(assemble("""
            ldi r1, 1
            st  r0, 0x1000, r1
            halt
        """))
        liveness = solve_bit_liveness(cfg)
        assert liveness.before[1][1] == ALL64

    def test_address_registers_fully_demanded(self):
        cfg = build_cfg(assemble("""
            ldi r1, 0x1000
            st  r1, 0, r0
            halt
        """))
        liveness = solve_bit_liveness(cfg)
        assert liveness.before[1][1] == ALL64

    def test_branch_with_known_one_demands_anchor_bit(self):
        cfg = build_cfg(assemble("""
            ldi  r1, 4
            bnez r1, out
            ldi  r2, 1
        out:
            halt
        """))
        liveness = solve_bit_liveness(cfg)
        # r1 is the constant 4: bit 2 alone pins the branch outcome.
        assert liveness.before[1][1] == 0x4

    def test_branch_with_unknown_operand_demands_all(self):
        cfg = build_cfg(assemble("""
            .data 0x1000 3
            ldi  r1, 0x1000
            ld   r2, r1, 0
            bnez r2, out
            nop
        out:
            halt
        """))
        liveness = solve_bit_liveness(cfg)
        assert liveness.before[2][2] == ALL64

    def test_shift_translates_demand(self):
        cfg = build_cfg(assemble("""
            ldi r1, 0xFF
            ldi r2, 8
            shl r3, r1, r2
            st  r0, 0x1000, r3
            halt
        """))
        liveness = solve_bit_liveness(cfg)
        # r3 fully demanded; r1 contributes bits 0..55 (shifted left 8).
        assert liveness.before[2][1] == MASK64 >> 8

    def test_dead_value_has_no_demand(self):
        cfg = build_cfg(assemble("""
            ldi r1, 7
            halt
        """))
        liveness = solve_bit_liveness(cfg)
        assert liveness.before[1][1] == 0
        assert liveness.after[0][1] == 0
