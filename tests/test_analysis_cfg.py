"""CFG construction: leaders, edges, indirect flow, loops."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, Op
from repro.isa.program import Program


def blocks_of(cfg):
    return [(b.start, b.end, tuple(b.successors)) for b in cfg.blocks]


class TestBasicBlocks:
    def test_straight_line_is_one_block(self):
        cfg = build_cfg(assemble("ldi r1, 1\nadd r2, r1, r1\nhalt"))
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == []

    def test_conditional_branch_splits_three_ways(self):
        cfg = build_cfg(assemble("""
            ldi r1, 2
        top:
            addi r1, r1, -1
            bnez r1, top
            halt
        """))
        # [entry], [top..branch], [halt]
        assert len(cfg.blocks) == 3
        entry, loop, exit_block = cfg.blocks
        assert entry.successors == [loop.index]
        assert sorted(loop.successors) == sorted([loop.index,
                                                  exit_block.index])
        assert exit_block.successors == []
        assert loop.predecessors.count(entry.index) == 1

    def test_entry_block_first_reachable(self):
        cfg = build_cfg(assemble("br end\nnop\nend:\nhalt"))
        order = cfg.reachable()
        assert order[0] == cfg.entry
        # 'nop' block is not reachable.
        nop_block = cfg.block_of_pc[1]
        assert nop_block not in order

    def test_call_and_ret_edges(self):
        cfg = build_cfg(assemble("""
            call r30, sub
            halt
        sub:
            ret r30
        """))
        call_block = cfg.block_at(0)
        sub_block = cfg.block_at(2)
        halt_block = cfg.block_at(1)
        assert call_block.successors == [sub_block.index]
        # RET returns to the instruction after every CALL.
        assert sub_block.successors == [halt_block.index]


class TestIndirectFlow:
    def _jmp_program(self, metadata=None):
        program = Program(
            name="jmp",
            instructions=[
                Instruction(Op.LDI, rd=1, imm=3),
                Instruction(Op.JMP, ra=1),
                Instruction(Op.HALT),
                Instruction(Op.HALT),
            ])
        if metadata:
            program.metadata.update(metadata)
        return program

    def test_unknown_indirect_targets_all_leaders(self):
        cfg = build_cfg(self._jmp_program())
        jmp_block = cfg.block_at(1)
        assert jmp_block.imprecise_indirect
        assert cfg.conservative_indirect_targets
        # Every leader is a may-successor.
        assert set(jmp_block.successors) == set(
            cfg.block_of_pc[t] for t in cfg.conservative_indirect_targets)

    def test_metadata_jump_table_is_precise(self):
        cfg = build_cfg(self._jmp_program({"jump_table_targets": [3]}))
        jmp_block = cfg.block_at(1)
        assert not jmp_block.imprecise_indirect
        assert jmp_block.successors == [cfg.block_of_pc[3]]

    def test_explicit_targets_override(self):
        cfg = build_cfg(self._jmp_program(), indirect_targets=[2])
        jmp_block = cfg.block_at(1)
        assert jmp_block.successors == [cfg.block_of_pc[2]]


class TestLoops:
    def test_back_edge_found(self):
        cfg = build_cfg(assemble("""
            ldi r1, 4
        top:
            addi r1, r1, -1
            bnez r1, top
            halt
        """))
        edges = cfg.back_edges()
        assert len(edges) == 1
        tail, head = edges[0]
        assert cfg.blocks[head].start == 1

    def test_natural_loop_body(self):
        cfg = build_cfg(assemble("""
            ldi r1, 4
        top:
            addi r1, r1, -1
            beqz r1, out
            br top
        out:
            halt
        """))
        (tail, head), = cfg.back_edges()
        body = cfg.natural_loop(tail, head)
        starts = sorted(cfg.blocks[b].start for b in body)
        assert starts == [1, 3]  # the addi/beqz block and the br block

    def test_deep_cfg_no_recursion_error(self):
        # 3000 alternating conditional branches; iterative DFS must cope.
        lines = ["ldi r1, 1"]
        for _ in range(3000):
            lines.append("addi r1, r1, -1")
            # Target the instruction after this bnez (a forward skip).
            lines.append(f"bnez r1, {len(lines) + 1}")
        lines.append("halt")
        cfg = build_cfg(assemble("\n".join(lines)))
        assert cfg.back_edges() == []
        assert len(cfg.reachable()) == len(cfg.blocks)
