"""Termination taxonomy: every run ends with an explicit verdict."""

import logging

from repro.core.config import MachineConfig
from repro.core.machine import BaseMachine, make_machine
from repro.core.metrics import Termination
from repro.isa.generator import generate_benchmark

GCC = generate_benchmark("gcc")


class TestEnum:
    def test_wedged_predicate(self):
        assert Termination.HUNG.is_wedged
        assert Termination.LIVELOCK.is_wedged
        for term in (Termination.DONE, Termination.CYCLE_LIMIT,
                     Termination.RECOVERED, Termination.UNRECOVERABLE):
            assert not term.is_wedged

    def test_values_are_stable_record_strings(self):
        """The enum values are the on-disk campaign-record vocabulary."""
        assert {t.value for t in Termination} == {
            "done", "cycle-limit", "hung", "livelock",
            "recovered", "unrecoverable"}


class TestDone:
    def test_normal_run_is_done(self):
        result = BaseMachine(MachineConfig(), [GCC]).run(
            max_instructions=600)
        assert result.termination is Termination.DONE
        assert result.completed
        assert result.hang_report is None
        assert not result.drain_truncated

    def test_no_warning_logged_for_a_clean_run(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.run"):
            BaseMachine(MachineConfig(), [GCC]).run(max_instructions=600)
        assert not [r for r in caplog.records if r.name == "repro.run"]


class TestCycleLimit:
    def test_tight_budget_is_cycle_limit_not_silence(self, caplog):
        """The old behavior silently returned a truncated RunResult;
        now the truncation is explicit and warned about once."""
        machine = BaseMachine(MachineConfig(), [GCC])
        with caplog.at_level(logging.WARNING, logger="repro.run"):
            result = machine.run(max_instructions=5_000, max_cycles=300)
        assert result.termination is Termination.CYCLE_LIMIT
        assert not result.completed
        warnings = [r for r in caplog.records if r.name == "repro.run"]
        assert len(warnings) == 1
        message = warnings[0].getMessage()
        assert "cycle limit" in message
        assert GCC.name in message

    def test_cycle_limit_on_srt_names_the_lagging_thread(self, caplog):
        machine = make_machine("srt", MachineConfig(), [GCC])
        with caplog.at_level(logging.WARNING, logger="repro.run"):
            result = machine.run(max_instructions=5_000, max_cycles=300)
        assert result.termination is Termination.CYCLE_LIMIT
        warnings = [r for r in caplog.records if r.name == "repro.run"]
        assert GCC.name in warnings[0].getMessage()

    def test_completed_run_at_exact_budget_is_done(self):
        """Finishing under the wire is DONE, not CYCLE_LIMIT."""
        machine = BaseMachine(MachineConfig(), [GCC])
        probe = BaseMachine(MachineConfig(), [GCC]).run(
            max_instructions=400)
        result = machine.run(max_instructions=400,
                             max_cycles=probe.cycles + 50)
        assert result.termination is Termination.DONE


class TestCompletedProperty:
    def test_only_done_and_recovered_count_as_completed(self):
        from repro.core.metrics import RunResult

        for term in Termination:
            result = RunResult(kind="base", cycles=1, threads=[],
                               termination=term)
            assert result.completed == (term in (Termination.DONE,
                                                 Termination.RECOVERED))
