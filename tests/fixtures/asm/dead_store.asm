; A3-dead-store: the first write to r1 is overwritten before any read.
    ldi r1, 1
    ldi r1, 2
    bnez r1, end
    nop
end:
    halt
