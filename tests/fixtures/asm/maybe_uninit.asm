; A2-maybe-uninit-read: r2 is written only on the not-taken path, so the
; read at 'join' is uninitialized when the branch is taken.
    ldi r1, 1
    beqz r1, join
    ldi r2, 5
join:
    add r3, r2, r2
    bnez r3, end
    nop
end:
    halt
