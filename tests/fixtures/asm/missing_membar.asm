; A6-missing-membar: the store publishing to the shared segment at
; 0x2000 is not fenced from the preceding data store; the one at
; 0x2008 is correctly behind a membar.
    .segment 0x1000 0x1100
    .segment 0x2000 0x2100
    .shared 0x2000 0x2100
    ldi r1, 0x1000
    ldi r2, 0x2000
    ldi r3, 42
    st r1, 0, r3
    st r2, 0, r3
    membar
    st r2, 8, r3
    halt
