; A8-falls-off-end: the taken path ends on a non-terminator, so control
; can run past the last instruction.
    ldi r1, 1
    beqz r1, done
done:
    addi r2, r1, 1
    bnez r2, done
    addi r3, r1, 1
