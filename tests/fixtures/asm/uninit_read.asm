; A1-uninit-read: r1 is read but never written on any path.
    add r2, r1, r1
    bnez r2, end
    nop
end:
    halt
