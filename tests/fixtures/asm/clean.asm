; Passes every verifier rule, including strict mode: a counted store
; loop with monotone induction, all registers initialized, all stores
; inside the declared segment, and a proper halt.
    .segment 0x1000 0x1100
    ldi r1, 8
    ldi r2, 0x1000
loop:
    st r2, 0, r1
    addi r1, r1, -1
    bnez r1, loop
    halt
