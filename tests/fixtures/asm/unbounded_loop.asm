; A7-unbounded-loop: the exit compare reads r1, but nothing in the loop
; steps r1 toward the exit.
    ldi r1, 10
    ldi r2, 0
loop:
    add r2, r2, r1
    bnez r1, loop
    halt
