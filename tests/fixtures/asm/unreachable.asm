; A4-unreachable-block: the block after the unconditional branch has no
; predecessors.
    br end
    ldi r1, 7
    ldi r2, 9
end:
    halt
