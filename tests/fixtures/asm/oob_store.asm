; A5-oob-store: the declared data segment is [0x1000, 0x1100) but the
; second store statically resolves to 0x2000.
    .segment 0x1000 0x1100
    .data 0x1000 7
    ldi r1, 0x2000
    st r0, 0x1000, r0
    st r1, 0, r0
    halt
