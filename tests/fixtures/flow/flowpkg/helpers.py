"""Sync helpers the async fixtures call into (S601 chain targets)."""

import json
import time


def read_config(path):
    # Blocking chain tail: open() two hops below the async frontier.
    with open(path) as fh:
        return json.load(fh)


def load_indirect(path):
    return read_config(path)


def backoff():
    time.sleep(0.1)


def pure_math(x):
    return x * x + 1


def close_handle(fh):
    """Callee that closes its parameter (S701 ownership transfer)."""
    fh.close()
