"""S601 seeds: blocking work reachable from async defs."""

import asyncio
import time

from flowpkg.helpers import load_indirect, pure_math


async def direct_sleep():
    time.sleep(0.5)  # S601: direct blocking call on the loop


async def chained_read(path):
    return load_indirect(path)  # S601: open() two calls down


async def hopped_read(path):
    # negative: the executor hop is the sanctioned way off the loop
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, load_indirect, path)


async def pure_compute(x):
    # negative: nothing in this chain blocks
    return pure_math(x)


async def waived_sleep():
    time.sleep(0.5)  # simlint: disable=S601
