"""S702 seeds: chaos-instrumented temp writes without cleanup."""

import os
import tempfile


def chaos_point(site, key=None, attempt=0):
    """Stand-in for repro.chaos.chaos_point (name-matched by S702)."""
    return None


def torn_write_leaks(path, data):
    fd, tmp = tempfile.mkstemp(dir=".")  # S702: fault leaks the tmp
    chaos_point("fixture.put", key=str(path))
    with os.fdopen(fd, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)


def torn_write_sealed(path, data):
    # negative: the exception path unlinks the temp file (the shape
    # repro.serve.cache.ResultCache._put_sealed ships)
    fd, tmp = tempfile.mkstemp(dir=".")
    try:
        chaos_point("fixture.put", key=str(path))
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
