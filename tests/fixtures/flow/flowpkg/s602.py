"""S602 seeds: coroutines built and dropped."""

import asyncio


async def notify(message):
    await asyncio.sleep(0)
    return message


def fire_and_forget_wrong():
    notify("lost")  # S602: builds a coroutine, never runs it


async def fire_and_forget_right():
    asyncio.create_task(notify("scheduled"))  # negative: scheduled


async def awaited():
    await notify("done")  # negative: awaited


def waived():
    notify("audited")  # simlint: disable=S602
