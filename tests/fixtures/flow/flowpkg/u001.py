"""U001 seeds: suppression pragmas that earn their keep — or don't."""

import asyncio
import time


async def used_pragma():
    time.sleep(0.1)  # simlint: disable=S601

# U001: nothing on this line ever violated S601.
x = 1  # simlint: disable=S601

# Not judged here: S5 belongs to the lockset engine, which a
# flow-only run never executes.
y = 2  # simlint: disable=S501

# U001: a rule id outside the catalogue can never suppress anything.
z = 3  # simlint: disable=S999
