"""S603 seeds: asyncio state touched from worker threads."""

import asyncio
import threading


def touches_loop_off_thread():
    loop = asyncio.get_event_loop()  # S603: runs on a plain thread
    loop.create_task(asyncio.sleep(0))  # S603: loop API off-loop


def private_loop_runner():
    # negative: a private loop started *on* this thread is the
    # sanctioned background-server shape
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    try:
        loop.run_until_complete(asyncio.sleep(0))
    finally:
        loop.close()


def spawn_bad():
    return threading.Thread(target=touches_loop_off_thread)


def spawn_good():
    return threading.Thread(target=private_loop_runner)
