"""S701 seeds: resources that leak on exception paths."""

import json

from flowpkg.helpers import close_handle


def leaky_read(path):
    fh = open(path)  # S701: json.load can raise, fh never closed
    data = json.load(fh)
    fh.close()
    return data


def with_read(path):
    # negative: context manager releases on every path
    with open(path) as fh:
        return json.load(fh)


def finally_read(path):
    # negative: finally releases on every path
    fh = open(path)
    try:
        return json.load(fh)
    finally:
        fh.close()


def transferred(path):
    # negative: ownership moves to the caller
    fh = open(path)
    return fh


def delegated_close(path):
    # negative: the callee's summary says it closes its parameter
    fh = open(path)
    close_handle(fh)
    return None


def waived_leak(path):
    fh = open(path)  # simlint: disable=S701
    data = json.load(fh)
    fh.close()
    return data
