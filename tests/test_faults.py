"""Fault-injection and coverage-classification tests."""

import pytest

from repro.core.config import MachineConfig
from repro.core.faults import (FaultOutcome, StuckFunctionalUnit,
                               TransientRegisterFault, TransientResultFault,
                               run_fault_experiment)
from repro.core.machine import make_machine
from repro.isa.generator import generate_benchmark
from repro.isa.instructions import FuClass

PROGRAM = generate_benchmark("gcc")


def experiment(kind, fault, config=None, instructions=900):
    machine = make_machine(kind, config or MachineConfig(), [PROGRAM])
    return run_fault_experiment(machine, PROGRAM, fault,
                                instructions=instructions, warmup=2000)


class TestBaseMachineVulnerability:
    def test_base_never_detects(self):
        """The base machine has no comparison hardware at all."""
        for cycle in (100, 250, 400):
            outcome = experiment(
                "base", TransientResultFault(cycle=cycle, core_index=0, bit=2))
            assert outcome is not FaultOutcome.DETECTED

    def test_base_suffers_corruption_somewhere(self):
        outcomes = set()
        for bit in (1, 3, 40):
            for c in range(100, 800, 120):
                outcomes.add(experiment(
                    "base", TransientResultFault(cycle=c, core_index=0,
                                                 bit=bit)))
        # Some injection must corrupt state with nothing noticing.
        assert outcomes & {FaultOutcome.SDC, FaultOutcome.LATENT}
        assert FaultOutcome.DETECTED not in outcomes


class TestSrtCoverage:
    def test_srt_never_suffers_sdc(self):
        """SRT output comparison: no corrupted store escapes undetected."""
        for cycle in range(100, 800, 60):
            for bit in (1, 33):
                outcome = experiment(
                    "srt", TransientResultFault(cycle=cycle, core_index=0,
                                                bit=bit))
                assert outcome is not FaultOutcome.SDC, (cycle, bit)

    def test_srt_detects_store_corruptions(self):
        outcomes = [experiment(
            "srt", TransientResultFault(cycle=c, core_index=0, bit=1))
            for c in range(100, 900, 60)]
        assert FaultOutcome.DETECTED in outcomes

    def test_load_value_fault_is_the_ecc_hole(self):
        """A flip on the incoming load value strikes before replication:
        both threads consume it, so redundant execution cannot see it.
        That path is ECC territory (Section 2.1)."""
        outcomes = set()
        for cycle in range(100, 900, 40):
            outcomes.add(experiment(
                "srt", TransientResultFault(cycle=cycle, core_index=0, bit=1,
                                            target_loads=True, thread=0)))
        # Without ECC modelled, some of these escape detection entirely.
        assert outcomes - {FaultOutcome.DETECTED, FaultOutcome.MASKED} or \
            FaultOutcome.MASKED in outcomes


class TestCmpCoverage:
    def test_lockstep_detects_core1_faults(self):
        outcomes = [experiment(
            "lockstep", TransientResultFault(cycle=c, core_index=1, bit=4))
            for c in range(100, 700, 60)]
        assert FaultOutcome.DETECTED in outcomes
        assert FaultOutcome.SDC not in outcomes

    def test_crt_detects_faults_on_either_core(self):
        for core_index in (0, 1):
            outcomes = [experiment(
                "crt", TransientResultFault(cycle=c, core_index=core_index,
                                            bit=4))
                for c in range(100, 700, 80)]
            assert FaultOutcome.SDC not in outcomes


class TestPermanentFaults:
    def test_stuck_unit_detected_with_psr(self):
        for unit in range(4):
            outcome = experiment(
                "srt", StuckFunctionalUnit(core_index=0, fu_class=FuClass.INT,
                                           unit_index=unit, bit=0))
            assert outcome is FaultOutcome.DETECTED

    def test_stuck_unit_corrupts_results(self):
        machine = make_machine("srt", MachineConfig(), [PROGRAM])
        fault = StuckFunctionalUnit(core_index=0, fu_class=FuClass.INT,
                                    unit_index=1, bit=0)
        run_fault_experiment(machine, PROGRAM, fault, instructions=400,
                             warmup=1000)
        assert fault.corrupted > 0


class TestRegisterFaults:
    def test_register_flip_fires_once(self):
        machine = make_machine("base", MachineConfig(), [PROGRAM])
        fault = TransientRegisterFault(cycle=50, core_index=0, reg=70, bit=3)
        run_fault_experiment(machine, PROGRAM, fault, instructions=200,
                             warmup=500)
        assert fault.fired

    def test_register_flip_on_srt_never_sdc(self):
        for reg in (64, 80, 100, 140):
            outcome = experiment(
                "srt", TransientRegisterFault(cycle=150, core_index=0,
                                              reg=reg, bit=5))
            assert outcome is not FaultOutcome.SDC


class TestClassification:
    def test_fault_free_run_is_masked(self):
        class NullFault(TransientResultFault):
            def tick(self, machine, now):
                pass

            def attach(self, machine):
                pass

        outcome = experiment(
            "base", NullFault(cycle=1, core_index=0, bit=0))
        assert outcome is FaultOutcome.MASKED
