"""Property-based cross-validation: random programs, pipeline vs golden.

Hypothesis generates random (but always-terminating) RISC-R programs —
arbitrary ALU/memory mixes, forward branches, and a counted outer loop —
and every one must produce *identical* architectural state on:

- the in-order functional executor (the golden model),
- the full out-of-order base pipeline,
- the SRT machine's leading thread (with the trailing thread verifying
  every store on the way and raising zero faults).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MachineConfig
from repro.core.machine import BaseMachine, make_machine
from repro.isa.executor import FunctionalExecutor
from repro.isa.instructions import NUM_ARCH_REGS, Instruction, Op
from repro.isa.program import Program

DATA_BASE = 0x2000
POOL = list(range(1, 24))          # registers the random body uses
COUNTER = 60                       # outer-loop counter register
ADDR = 59                          # address base register

ALU_OPS = [Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
           Op.CMPLT, Op.CMPEQ, Op.FADD, Op.FMUL, Op.FMA, Op.FDIV]


@st.composite
def body_instruction(draw):
    """One random body instruction (branches handled separately)."""
    kind = draw(st.sampled_from(["alu", "alu", "alu", "ldi", "load",
                                 "store", "partial", "membar"]))
    rd = draw(st.sampled_from(POOL))
    ra = draw(st.sampled_from(POOL))
    rb = draw(st.sampled_from(POOL))
    offset = 8 * draw(st.integers(min_value=0, max_value=15))
    if kind == "alu":
        op = draw(st.sampled_from(ALU_OPS))
        return Instruction(op, rd=rd, ra=ra, rb=rb)
    if kind == "ldi":
        return Instruction(Op.LDI, rd=rd,
                           imm=draw(st.integers(0, (1 << 30))))
    if kind == "load":
        return Instruction(Op.LD, rd=rd, ra=ADDR, imm=offset)
    if kind == "store":
        return Instruction(Op.ST, ra=ADDR, imm=offset, rb=rb)
    if kind == "partial":
        return Instruction(Op.STH, ra=ADDR,
                           imm=offset + 4 * draw(st.booleans()), rb=rb)
    return Instruction(Op.MEMBAR)


@st.composite
def random_program(draw):
    """A terminating program: prologue, looped random body, halt."""
    body = draw(st.lists(body_instruction(), min_size=5, max_size=60))
    skips = draw(st.lists(
        st.tuples(st.integers(0, max(len(body) - 2, 0)), st.integers(1, 4),
                  st.sampled_from(POOL)),
        max_size=4))
    trip = draw(st.integers(min_value=1, max_value=4))

    prologue = [
        Instruction(Op.LDI, rd=ADDR, imm=DATA_BASE),
        Instruction(Op.LDI, rd=COUNTER, imm=trip),
    ]
    for index, reg in enumerate(POOL):
        prologue.append(Instruction(Op.LDI, rd=reg, imm=31 * index + 7))

    loop_head = len(prologue)
    code = list(prologue)
    # Insert forward skips: beqz rX -> a later body position.
    skip_at = {pos: (dist, reg) for pos, dist, reg in skips}
    positions = {}
    for index, instr in enumerate(body):
        if index in skip_at:
            code.append(None)  # placeholder for the forward branch
            positions[len(code) - 1] = index
        code.append(instr)
    # Resolve forward branch targets now that layout is known.
    for code_index, body_index in positions.items():
        dist, reg = skip_at[body_index]
        target = min(code_index + 1 + dist, len(code))
        code[code_index] = ("beqz", reg, target)
    tail_start = len(code)
    code.append(Instruction(Op.ADDI, rd=COUNTER, ra=COUNTER, imm=-1))
    code.append(("bnez", COUNTER, loop_head))
    code.append(Instruction(Op.HALT))

    instructions = []
    for item in code:
        if isinstance(item, tuple):
            kind, reg, target = item
            op = Op.BEQZ if kind == "beqz" else Op.BNEZ
            instructions.append(Instruction(op, ra=reg,
                                            target=min(target,
                                                       len(code) - 1)))
        else:
            instructions.append(item)
    return Program(name="random", instructions=instructions)


def golden_state(program, limit=50_000):
    executor = FunctionalExecutor(program)
    executor.run(limit)
    assert executor.state.halted, "random program failed to terminate"
    return executor


def assert_same_architectural_state(program, machine, thread):
    golden = golden_state(program)
    assert thread.done, "pipeline did not reach HALT"
    for reg in range(1, NUM_ARCH_REGS):
        assert thread.rename.architectural_value(reg) == \
            golden.state.read_reg(reg), f"r{reg} differs"
    for addr, value in golden.state.memory.items():
        assert machine.memory.get(thread.phys_addr(addr), 0) == value, \
            f"memory {addr:#x} differs"


@settings(max_examples=25, deadline=None)
@given(random_program())
def test_pipeline_matches_golden_model(program):
    machine = BaseMachine(MachineConfig(), [program])
    machine.run(max_instructions=60_000, max_cycles=300_000)
    thread = machine.cores[0].threads[0]
    assert_same_architectural_state(program, machine, thread)


@settings(max_examples=12, deadline=None)
@given(random_program())
def test_srt_matches_golden_model_and_detects_nothing(program):
    machine = make_machine("srt", MachineConfig(), [program])
    result = machine.run(max_instructions=60_000, max_cycles=300_000)
    leading = machine.cores[0].threads[0]
    assert result.faults_detected == 0
    assert_same_architectural_state(program, machine, leading)
