"""Artifact store: manifest binding, append durability, tail repair."""

import json

import pytest

from repro.campaign.spec import CampaignConfigError, CampaignSpec
from repro.campaign.store import CampaignStore, canonical_record


def spec(**overrides) -> CampaignSpec:
    base = dict(kinds=("srt",), workloads=("gcc",),
                models=("transient-result",), injections=3,
                instructions=200, warmup=500)
    base.update(overrides)
    return CampaignSpec(**base)


def record(i: int) -> dict:
    return {"task_id": f"t{i}", "index": i, "kind": "srt",
            "workload": "gcc", "model": "transient-result",
            "fault": {"model": "transient-result", "cycle": 100 + i,
                      "core_index": 0, "bit": i, "thread": None,
                      "target_loads": False},
            "outcome": "masked", "struck_cycle": None,
            "detected_cycle": None, "latency": None, "timed_out": False}


class TestManifest:
    def test_initialize_fresh_directory(self, tmp_path):
        store = CampaignStore(tmp_path / "c")
        assert store.initialize(spec()) is False  # not resuming
        manifest = store.load_manifest()
        assert manifest["campaign_hash"] == spec().content_hash()
        assert manifest["total_tasks"] == 3

    def test_same_spec_resumes(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(spec())
        store.append([record(0)])
        assert store.initialize(spec()) is True
        assert store.completed_count() == 1

    def test_changed_spec_refuses_without_fresh(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(spec())
        store.append([record(0)])
        with pytest.raises(CampaignConfigError, match="config changed"):
            store.initialize(spec(injections=9))

    def test_fresh_discards_stale_records(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(spec())
        store.append([record(0), record(1)])
        assert store.initialize(spec(injections=9), fresh=True) is False
        assert store.completed_count() == 0
        assert store.load_manifest()["campaign_hash"] \
            == spec(injections=9).content_hash()

    def test_resume_without_manifest_fails(self, tmp_path):
        with pytest.raises(CampaignConfigError, match="manifest"):
            CampaignStore(tmp_path).load_manifest()


class TestRecords:
    def test_append_and_read_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(spec())
        batch = [record(0), record(1), record(2)]
        store.append(batch)
        assert store.records() == batch
        assert store.completed_ids() == {"t0", "t1", "t2"}

    def test_canonical_encoding_is_key_sorted_and_compact(self):
        line = canonical_record({"b": 1, "a": {"z": 2, "y": 3}})
        assert line == '{"a":{"y":3,"z":2},"b":1}'

    def test_partial_trailing_line_is_repaired(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(spec())
        store.append([record(0), record(1)])
        with open(store.results_path, "ab") as handle:
            handle.write(b'{"task_id": "t2", "trunc')  # killed mid-write
        assert store.completed_ids() == {"t0", "t1"}
        # the partial tail is gone for good; appends stay well-formed
        store.append([record(2)])
        lines = store.results_path.read_text().splitlines()
        assert [json.loads(line)["task_id"] for line in lines] \
            == ["t0", "t1", "t2"]

    def test_empty_store_iterates_nothing(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(spec())
        assert store.records() == []
        assert store.completed_count() == 0


class TestProgress:
    def test_progress_sidecar_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(spec())
        assert store.load_progress() is None
        store.write_progress({"executed": 3, "jobs": 2})
        assert store.load_progress() == {"executed": 3, "jobs": 2}

    def test_corrupt_sidecar_reads_as_none(self, tmp_path):
        # progress.json is advisory: a torn or garbage sidecar must
        # never break status reporting.
        store = CampaignStore(tmp_path)
        store.initialize(spec())
        store.write_progress({"executed": 3})
        store.progress_path.write_text('{"executed":')  # torn write
        assert store.load_progress() is None
        store.write_progress({"executed": 4})  # recovers cleanly
        assert store.load_progress() == {"executed": 4}

    def test_progress_write_is_atomic(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(spec())
        store.write_progress({"executed": 1})
        # No temp residue: the write-temp-then-replace leaves one file.
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.startswith("progress")
                     and p.name != store.progress_path.name]
        assert leftovers == []
