"""Structural-limit tests: issue widths, memory ports, IQ reservation."""

from collections import Counter

from repro.core.config import MachineConfig
from repro.core.machine import BaseMachine
from repro.isa.assembler import assemble
from repro.isa.generator import generate_benchmark
from repro.pipeline.uop import UopState


def instrumented_run(programs, cycles=3000, warmup=5000):
    machine = BaseMachine(MachineConfig(), programs)
    machine.warm(warmup)
    core = machine.cores[0]
    per_cycle = []
    issued_loads = []
    issued_stores = []
    original = core.qbox._do_issue

    def wrapped(thread, uop, fu, plan, now):
        per_cycle.append((now, uop))
        return original(thread, uop, fu, plan, now)

    core.qbox._do_issue = wrapped
    for thread in core.threads:
        thread.target_instructions = 10**9
    for _ in range(cycles):
        machine.step()
    return machine, per_cycle


class TestIssueLimits:
    def test_issue_width_respected(self):
        machine, issued = instrumented_run([generate_benchmark("mgrid")])
        by_cycle = Counter(now for now, _ in issued)
        assert by_cycle, "nothing issued"
        assert max(by_cycle.values()) <= MachineConfig().core.issue_width

    def test_per_half_issue_limit(self):
        machine, issued = instrumented_run([generate_benchmark("mgrid")])
        by_cycle_half = Counter((now, uop.queue_half) for now, uop in issued)
        assert max(by_cycle_half.values()) <= \
            MachineConfig().core.issue_width // 2

    def test_memory_port_limits(self):
        config = MachineConfig().core
        machine, issued = instrumented_run([generate_benchmark("swim")])
        loads = Counter(now for now, uop in issued if uop.instr.is_load)
        stores = Counter(now for now, uop in issued if uop.instr.is_store)
        mems = Counter(now for now, uop in issued
                       if uop.instr.fu_class.value == "mem")
        if loads:
            assert max(loads.values()) <= config.max_load_issue
        if stores:
            assert max(stores.values()) <= config.max_store_issue
        if mems:
            assert max(mems.values()) <= config.max_mem_issue


class TestIqReservation:
    def test_one_thread_cannot_take_every_entry(self):
        """Section 4.3: each thread keeps a reserved chunk so a stalled
        thread cannot wedge the others out of the queue."""
        # A thread that stalls hard (dependent FDIV chain) plus a nimble one.
        stall = assemble("\n".join(
            ["ldi r1, 1", "ldi r2, 3"]
            + ["fdiv r1, r1, r2"] * 120
            + ["br 2"]), name="staller")
        nimble = assemble("""
            ldi r1, 0
        loop:
            addi r1, r1, 1
            br loop
        """, name="nimble")
        machine = BaseMachine(MachineConfig(), [stall, nimble])
        for thread in machine.cores[0].threads:
            thread.target_instructions = 10**9
        for _ in range(3000):
            machine.step()
        core = machine.cores[0]
        config = MachineConfig().core
        total = sum(t.iq_occupancy for t in core.threads)
        assert total <= config.iq_entries
        # The nimble thread kept retiring despite the staller.
        assert core.threads[1].stats.retired > 500

    def test_queue_halves_never_overflow(self):
        machine, _ = instrumented_run([generate_benchmark("fpppp")],
                                      cycles=2000)
        qbox = machine.cores[0].qbox
        assert len(qbox.halves[0]) <= qbox.half_capacity
        assert len(qbox.halves[1]) <= qbox.half_capacity
