"""Static AVF analysis economics: one pass classifies the whole universe.

Shape: the point of the static ACE/AVF analyzer is *amortization* — a
single ``analyze_program`` pass classifies every architectural fault
site (millions of register bit-steps), so the per-site cost is orders
of magnitude below one architectural injection through the oracle.
That gap is what makes guided campaign sampling pay: every injection
spent on a provably-masked site is wasted, and the analyzer proves a
substantial fraction of the universe masked up front.

Scale knobs: ``REPRO_AVF_STEPS`` (default 300 golden steps, matching
the CI-sized campaigns) and ``REPRO_AVF_INJECTIONS`` (default 10 oracle
injections for the cost comparison).
"""

import os
import time

from repro.avf.sites import ARCH_MODELS, SiteUniverse
from repro.core.faults import ArchRegisterFault, run_arch_fault_experiment
from repro.isa.generator import generate_benchmark
from repro.util.rng import DeterministicRng


def env_int(name, default):
    return int(os.environ.get(name, default))


STEPS = env_int("REPRO_AVF_STEPS", 300)
INJECTIONS = env_int("REPRO_AVF_INJECTIONS", 10)


def test_static_analysis_amortizes_the_oracle(benchmark):
    """Per-site static classification undercuts per-injection cost by
    orders of magnitude — the whole universe for a handful of runs."""
    program = generate_benchmark("compress")

    universe = benchmark.pedantic(
        lambda: SiteUniverse("compress", STEPS), rounds=1, iterations=1)
    start = time.perf_counter()
    rebuilt = SiteUniverse("compress", STEPS)
    analysis_seconds = time.perf_counter() - start

    total_sites = sum(rebuilt.size(model) for model in ARCH_MODELS)

    rng = DeterministicRng("avf-benchmark")
    start = time.perf_counter()
    for _ in range(INJECTIONS):
        site = universe.sample(rng, "arch-register")
        fault = ArchRegisterFault(step=site["step"], reg=site["reg"],
                                  bit=site["bit"])
        run_arch_fault_experiment(program, fault, instructions=STEPS)
    per_injection = (time.perf_counter() - start) / INJECTIONS

    per_site = analysis_seconds / total_sites
    ratio = per_injection / max(per_site, 1e-12)
    print()
    print(f"  analysis: {analysis_seconds:.3f}s for {total_sites} sites "
          f"({per_site * 1e9:.1f} ns/site)")
    print(f"  oracle:   {per_injection * 1e3:.2f} ms/injection "
          f"-> static is {ratio:.0f}x cheaper per site")
    # The acceptance shape is a massive gap; demand a conservative floor.
    assert ratio >= 1000, (
        f"static per-site cost only {ratio:.0f}x below one injection")


def test_analyzer_proves_enough_masked_to_guide_sampling(benchmark):
    """Guided sampling only pays if the analyzer proves a real slice of
    the universe masked — >= 20% of register bit-steps on compress (the
    campaign's --guided skip-rate criterion)."""
    universe = benchmark.pedantic(
        lambda: SiteUniverse("compress", STEPS), rounds=1, iterations=1)
    fractions = {model: universe.masked_fraction(model)
                 for model in ARCH_MODELS}
    print()
    for model, fraction in sorted(fractions.items()):
        print(f"  {model:<15} masked fraction {fraction:.3f}")
    assert fractions["arch-register"] >= 0.20
    # Every model must leave *something* ACE: an all-masked universe
    # would mean the analyzer is claiming the program has no outputs.
    assert all(fraction < 1.0 for fraction in fractions.values())
