"""Section 4.5 motivation: fault-detection coverage of each machine.

Shape: the base machine silently corrupts state (SDC); SRT, CRT, and
lockstep detect every fault that propagates to an output; and the
permanent stuck-unit experiment shows why preferential space redundancy
matters.
"""

from repro.harness.experiments import (fault_coverage,
                                       psr_permanent_fault_coverage)
from repro.harness.reporting import render_table


def test_transient_fault_coverage(runner, benchmark):
    result = benchmark.pedantic(
        lambda: fault_coverage(runner, benchmark="gcc", injections=10),
        rounds=1, iterations=1)
    print()
    print(render_table(result, precision=0))

    # Only the unprotected base machine ever suffers SDC.
    for kind, row in result.rows.items():
        if kind == "base":
            assert row["detected"] == 0
        else:
            assert row["silent-data-corruption"] == 0

    # The redundant machines do detect propagating faults.
    detected_total = sum(result.rows[kind]["detected"]
                        for kind in ("srt", "crt", "lockstep"))
    assert detected_total > 0


def test_permanent_fault_coverage_with_psr(runner, benchmark):
    result = benchmark.pedantic(
        lambda: psr_permanent_fault_coverage(runner, benchmark="gcc"),
        rounds=1, iterations=1)
    print()
    print(render_table(result, precision=0))

    # With PSR every stuck unit is caught — space redundancy guarantees
    # the two copies never share the faulty unit.
    psr_row = result.rows["psr"]
    assert psr_row["detected"] == sum(psr_row.values())
    assert psr_row["silent-data-corruption"] == 0
    # Without PSR, corresponding instructions frequently share the faulty
    # unit, so both copies can be corrupted identically and escape the
    # comparator — the exact vulnerability Section 4.5 closes.  Detection
    # must never be worse with PSR than without.
    assert psr_row["detected"] >= result.rows["no_psr"]["detected"]
