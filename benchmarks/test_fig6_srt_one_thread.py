"""Figure 6: SMT-Efficiency for one logical thread (SRT variants).

Paper result: running one program redundantly on SRT degrades
performance ~32% below the single-thread base machine (our model is a
less contended Python reproduction, so the absolute degradation is
smaller but every ordering holds); per-thread store queues recover ~2%
on average with much larger wins on store-intensive benchmarks; removing
store comparison (nosc) is the upper bound; and Base2 — two independent
copies with no RMT hardware — sits above them all.
"""

from repro.harness.experiments import fig6_srt_one_thread
from repro.harness.reporting import render_table


def test_fig6_srt_one_thread(runner, benchmark):
    result = benchmark.pedantic(
        lambda: fig6_srt_one_thread(runner), rounds=1, iterations=1)
    print()
    print(render_table(result))

    mean_base2 = result.summary["mean.base2"]
    mean_srt = result.summary["mean.srt"]
    mean_ptsq = result.summary["mean.srt_ptsq"]
    mean_nosc = result.summary["mean.srt_nosc"]

    # SRT costs real performance relative to the base machine...
    assert mean_srt < 0.95
    # ...and relative to simply running two unchecked copies.
    assert mean_srt < mean_base2
    # Per-thread store queues recover part of the loss (paper: 32%->30%).
    assert mean_ptsq >= mean_srt - 0.01
    # Removing output comparison is at least as fast as full SRT.
    assert mean_nosc >= mean_srt - 0.01
    # Every efficiency is a sane ratio.
    for row in result.rows.values():
        for value in row.values():
            assert 0.2 < value < 1.3
