"""Detection latency: how long a fault lives before being caught.

SRT detects at its on-core store comparator; CRT adds the cross-core
forwarding delay; lockstep detects only when both cores' drained store
streams meet at the checker.  In every case detection happens before the
corrupted store leaves the sphere of replication.
"""

from repro.harness.experiments import detection_latency
from repro.harness.reporting import render_table


def test_detection_latency(runner, benchmark):
    result = benchmark.pedantic(
        lambda: detection_latency(runner, benchmark="gcc", injections=10),
        rounds=1, iterations=1)
    print()
    print(render_table(result, precision=1))

    # Every redundant machine detected at least some injections.
    assert all(row["detected"] > 0 for row in result.rows.values())
    # Latencies are bounded: detection happens within the decoupling
    # window (queue depths + pipeline), far under a thousand cycles.
    assert all(row["max_latency"] < 2000 for row in result.rows.values())
    assert all(row["mean_latency"] > 0 for row in result.rows.values())
