"""Figure 7: preferential space redundancy.

Paper result: without PSR ~65% of corresponding instruction pairs
execute on the very same functional unit (time redundancy only, blind to
permanent faults); with PSR the fraction collapses to ~0.06%, at no
performance cost (occasionally a small gain from better queue-half load
balancing).
"""

from repro.harness.experiments import fig7_psr
from repro.harness.reporting import render_table


def test_fig7_preferential_space_redundancy(runner, benchmark):
    result = benchmark.pedantic(lambda: fig7_psr(runner),
                                rounds=1, iterations=1)
    print()
    print(render_table(result))

    mean_off = result.summary["mean.no_psr"]
    mean_on = result.summary["mean.psr"]
    mean_ipc_ratio = result.summary["mean.ipc_ratio"]

    # Paper: ~65% same-unit without PSR.
    assert 0.35 < mean_off <= 1.0
    # Paper: ~0.06% with PSR (we allow a little steering fallback).
    assert mean_on < 0.05
    assert mean_on < mean_off / 10
    # Paper: "no performance degradation".
    assert mean_ipc_ratio > 0.97
