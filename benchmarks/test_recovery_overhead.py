"""Recovery-layer overhead: what does robustness cost when nothing fails?

Shape: checkpointing at verified-store boundaries is timing-invisible
(identical cycle counts fault-free), the watchdog's per-cycle
observation costs only simulator wall-clock (bounded factor), and a
recovery run's IPC penalty is the recovery latency itself.
"""

from repro.core.config import MachineConfig
from repro.core.faults import FaultInjector, TransientResultFault
from repro.core.machine import make_machine
from repro.core.metrics import Termination
from repro.isa.generator import generate_benchmark


def recovery_config():
    return MachineConfig(recovery_enabled=True, checkpoint_interval=400,
                         recovery_max_attempts=3)


def run_srt(config, program, instructions, warmup=2000):
    machine = make_machine("srt", config, [program])
    return machine.run(max_instructions=instructions, warmup=warmup), machine


def test_checkpointing_is_cycle_invisible(benchmark):
    """Fault-free: recovery-on and recovery-off runs are cycle-identical
    — the checkpoint machinery observes committed state, never stalls
    the pipeline."""
    program = generate_benchmark("gcc")
    instructions = 1000

    plain, _ = run_srt(MachineConfig(), program, instructions)
    (checked, machine) = benchmark.pedantic(
        lambda: run_srt(recovery_config(), program, instructions),
        rounds=1, iterations=1)

    print()
    print(f"  cycles: plain={plain.cycles} checkpointed={checked.cycles}")
    print(f"  checkpoints taken: {machine.recovery.stats.checkpoints}, "
          f"journal peak: {machine.recovery.stats.journal_peak} words")
    assert checked.cycles == plain.cycles
    assert checked.ipc_per_logical_thread() == \
        plain.ipc_per_logical_thread()
    assert machine.recovery.stats.checkpoints > 0


def test_recovery_ipc_penalty_is_the_latency(benchmark):
    """A recovered run pays (roughly) its recovery latency in extra
    cycles relative to the fault-free run — rollback re-earns the
    rewound retirement while the clock keeps counting."""
    program = generate_benchmark("gcc")
    instructions = 800

    clean, _ = run_srt(recovery_config(), program, instructions)

    def faulted():
        machine = make_machine("srt", recovery_config(), [program])
        FaultInjector(machine, [TransientResultFault(
            cycle=400, core_index=0, bit=3)])
        return machine.run(max_instructions=instructions, warmup=2000)

    result = benchmark.pedantic(faulted, rounds=1, iterations=1)
    assert result.termination is Termination.RECOVERED

    penalty = result.cycles - clean.cycles
    latency = result.recovery["recovery_latency_last"]
    print()
    print(f"  clean={clean.cycles} recovered={result.cycles} "
          f"penalty={penalty} latency={latency} "
          f"depth={result.recovery['rollback_depth_max']}")
    assert penalty > 0
    # The penalty is dominated by the replay: same order of magnitude
    # as the measured recovery latency (loose 10x bound — detection
    # latency and re-warmed predictors make the two differ).
    assert penalty <= 10 * max(latency, 1) + 200


def test_checkpoint_interval_sweep(benchmark):
    """Shorter intervals bound rollback depth; fault-free cycle counts
    stay identical across every interval."""
    program = generate_benchmark("gcc")
    instructions = 800
    rows = {}

    def sweep():
        for interval in (100, 400, 1600):
            config = MachineConfig(recovery_enabled=True,
                                   checkpoint_interval=interval)
            result, machine = run_srt(config, program, instructions)
            rows[interval] = (result.cycles,
                              machine.recovery.stats.checkpoints)
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for interval, (cycles, checkpoints) in sorted(rows.items()):
        print(f"  interval={interval:<5d} cycles={cycles} "
              f"checkpoints={checkpoints}")
    cycle_counts = {cycles for cycles, _ in rows.values()}
    assert len(cycle_counts) == 1, "checkpoint cadence must not warp time"
    # More frequent checkpointing takes at least as many checkpoints.
    assert rows[100][1] >= rows[400][1] >= rows[1600][1]
