"""Section 4.4: line-predictor misprediction and the LPQ's effect.

Paper result: the base machine's line predictor mispredicts between 14%
and 28% of the time — too inaccurate for the original branch outcome
queue to eliminate trailing-thread misfetches — so SRT forwards exact
line predictions through the line prediction queue, after which the
trailing thread never misfetches.
"""

from repro.harness.experiments import line_predictor_rates
from repro.harness.reporting import render_table


def test_line_predictor_rates(runner, benchmark):
    result = benchmark.pedantic(
        lambda: line_predictor_rates(runner), rounds=1, iterations=1)
    print()
    print(render_table(result))

    rates = [row["base_rate"] for row in result.rows.values()]
    # Misprediction is significant across the suite (paper: 14-28%;
    # our synthetic workloads sit in a somewhat wider band).
    assert max(rates) > 0.04
    assert all(rate < 0.5 for rate in rates)
    # The LPQ gives the trailing thread a perfect stream.
    assert all(row["trailing_misfetches"] == 0
               for row in result.rows.values())
