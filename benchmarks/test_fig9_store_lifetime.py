"""Section 7.1: store lifetimes and store-queue size sensitivity.

Paper result: SRT lengthens the average leading-thread store lifetime by
roughly 39 cycles (retirement until the trailing twin verifies it), and
store-queue size therefore has a major impact on SRT performance.
"""

from repro.harness.experiments import fig9_store_lifetime, store_queue_sweep
from repro.harness.reporting import render_table


def test_fig9_store_lifetime(runner, benchmark):
    result = benchmark.pedantic(
        lambda: fig9_store_lifetime(runner), rounds=1, iterations=1)
    print()
    print(render_table(result, precision=1))

    mean_delta = result.summary["mean.delta"]
    # Paper: ~39 extra cycles on average; accept a generous band around it.
    assert 10 < mean_delta < 90
    # SRT must lengthen the lifetime for essentially every benchmark.
    longer = sum(1 for row in result.rows.values()
                 if row["srt"] > row["base"])
    assert longer >= 0.8 * len(result.rows)


def test_store_queue_size_sweep(runner, benchmark):
    result = benchmark.pedantic(
        lambda: store_queue_sweep(runner, benchmark="mgrid"),
        rounds=1, iterations=1)
    print()
    print(render_table(result))

    sizes = [int(s) for s in result.rows]
    efficiencies = [result.rows[s]["efficiency"] for s in result.rows]
    # Bigger store queues never hurt, and the small end clearly stalls.
    assert efficiencies[-1] >= efficiencies[0]
    assert max(efficiencies) - min(efficiencies) > 0.02
