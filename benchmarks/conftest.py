"""Shared fixtures for the per-figure benchmark harness.

Scale knobs (environment variables):

- ``REPRO_INSTR``  — committed instructions measured per thread
  (default 1500; the paper used 15M on a native simulator).
- ``REPRO_WARMUP`` — architectural warm-up instructions (default 12000).
- ``REPRO_FULL``   — set to 1 to run every workload combination the
  paper used (all 15 four-program mixes etc.).

The session-scoped runner shares the single-thread baseline cache across
figures, exactly as the paper normalises every figure to the same base-
machine runs.
"""

import os

import pytest

from repro.harness.runner import Runner


def env_int(name, default):
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def runner():
    return Runner(instructions=env_int("REPRO_INSTR", 1500),
                  warmup=env_int("REPRO_WARMUP", 12_000))


@pytest.fixture(scope="session")
def full_scale():
    return os.environ.get("REPRO_FULL", "0") == "1"
