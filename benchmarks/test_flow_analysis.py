"""Flow-engine throughput: the interprocedural pass must stay cheap
enough to sit in the default lint gate.

Budget shape: parse + call-graph + both summary fixpoints (blocking
and resource) over the whole shipped tree, single-threaded, in well
under the CI lint-job budget.  The wall-clock ceiling is generous
(CI boxes vary ~4x); the printed functions/sec figure is the number
to watch drift across PRs.

Scale knob: ``REPRO_FLOW_ROUNDS`` (default 3) — analysis rounds timed
after a warm-up round.
"""

import ast
import os
import time

from repro.analysis.flow.callgraph import build_callgraph
from repro.analysis.flow.rules import analyze_modules
from repro.analysis.simlint import iter_package_files, package_root
from repro.obs import bench

ROUNDS = int(os.environ.get("REPRO_FLOW_ROUNDS", 3))

#: Whole-tree budget, seconds per analysis round.  The shipped tree is
#: ~10k LoC; a round takes ~0.5s on a dev box.
BUDGET_S = 8.0


def load_tree():
    return [(rel, ast.parse(path.read_text()))
            for path, rel in iter_package_files(package_root())]


def test_flow_analysis_throughput():
    modules = load_tree()
    graph = build_callgraph(modules)
    n_functions = len(graph.functions)
    assert n_functions > 100, "tree unexpectedly small"

    analyze_modules(modules)  # warm-up (caches, imports)

    start = time.perf_counter()
    for _ in range(ROUNDS):
        findings = analyze_modules(modules)
    elapsed = (time.perf_counter() - start) / ROUNDS

    assert findings == [], "shipped tree regressed mid-benchmark"
    assert elapsed < BUDGET_S, (
        f"flow analysis round took {elapsed:.2f}s "
        f"(budget {BUDGET_S:.1f}s) over {n_functions} functions")

    print()
    print(f"flow analysis: {len(modules)} modules, {n_functions} "
          f"functions, {elapsed * 1000:.0f} ms/round "
          f"({n_functions / elapsed:.0f} functions/sec)")

    bench.record("flow.functions_per_s",
                 ops_per_s=n_functions / elapsed,
                 meta={"modules": len(modules),
                       "functions": n_functions})
