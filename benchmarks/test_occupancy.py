"""Occupancy views behind Section 7.1: store-queue pressure and slack.

The slack histogram shows the decoupling the LPQ's retirement gating
produces (no explicit slack-fetch mechanism needed); the occupancy table
shows SRT's longer store lifetimes translating into persistently higher
store-queue occupancy than the base machine's.
"""

from repro.harness.experiments import (slack_distribution,
                                       store_queue_occupancy)
from repro.harness.reporting import render_table


def test_slack_distribution(runner, benchmark):
    result = benchmark.pedantic(
        lambda: slack_distribution(runner, benchmark="gcc"),
        rounds=1, iterations=1)
    print()
    print(render_table(result, precision=0))

    mean_slack = result.summary["mean_slack"]
    # The pair genuinely decouples: tens-to-hundreds of instructions.
    assert 8 < mean_slack < 600
    assert result.summary["p90_slack"] >= mean_slack / 2


def test_store_queue_occupancy(runner, benchmark):
    result = benchmark.pedantic(
        lambda: store_queue_occupancy(
            runner, benchmarks=["gcc", "swim", "vortex", "hydro2d",
                                "m88ksim", "tomcatv"]),
        rounds=1, iterations=1)
    print()
    print(render_table(result, precision=1))

    higher = sum(1 for row in result.rows.values()
                 if row["srt_mean"] > row["base_mean"])
    # SRT's verification wait keeps the queue fuller almost everywhere.
    assert higher >= 0.8 * len(result.rows)
    # And at least one benchmark saturates its 32-entry partition.
    assert any(row["srt_peak"] >= 30 for row in result.rows.values())
