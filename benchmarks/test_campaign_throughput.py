"""Campaign engine scaling: a worker pool must actually buy wall-clock.

The acceptance shape: a campaign fanned across ``--jobs N`` workers
finishes meaningfully faster than the sequential run on a multi-core
host (>= 2.5x at jobs=4 on 4 cores), while producing a byte-identical
``results.jsonl``.  On single-core CI boxes the speedup assertion is
skipped — there is nothing to parallelise onto — but the determinism
half of the contract is always enforced.

Scale knobs: ``REPRO_CAMPAIGN_INJECTIONS`` (default 24; the acceptance
run uses 200) and ``REPRO_CAMPAIGN_JOBS`` (default min(4, cpu_count)).
"""

import os
import time
import timeit
from pathlib import Path

import pytest

from repro.campaign import CampaignEngine, CampaignSpec
from repro.chaos import chaos_point, controller
from repro.obs import bench
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


def env_int(name, default):
    return int(os.environ.get(name, default))


INJECTIONS = env_int("REPRO_CAMPAIGN_INJECTIONS", 24)
JOBS = env_int("REPRO_CAMPAIGN_JOBS", min(4, os.cpu_count() or 1))

SPEC = CampaignSpec(
    kinds=("base", "srt"),
    workloads=("m88ksim",),
    models=("transient-result",),
    injections=INJECTIONS,
    instructions=300,
    warmup=900,
)


def run_at(tmp_path: Path, name: str, jobs: int) -> float:
    start = time.perf_counter()
    CampaignEngine(SPEC, tmp_path / name, jobs=jobs).run()
    return time.perf_counter() - start


def test_parallel_campaign_speedup(tmp_path, benchmark):
    """jobs=N beats jobs=1 — and both produce identical artifacts."""
    sequential = run_at(tmp_path, "seq", 1)
    parallel = benchmark.pedantic(
        lambda: run_at(tmp_path, "par", JOBS), rounds=1, iterations=1)

    ref = (tmp_path / "seq" / "results.jsonl").read_bytes()
    par = (tmp_path / "par" / "results.jsonl").read_bytes()
    assert par == ref, "parallel artifact diverged from sequential"

    print()
    print(f"campaign {SPEC.total_tasks()} injections: "
          f"jobs=1 {sequential:.2f}s, jobs={JOBS} {parallel:.2f}s "
          f"({sequential / max(parallel, 1e-9):.2f}x)")

    # Bench trajectory (no-op unless REPRO_BENCH_OUT is set).
    bench.record("campaign.sequential.tasks_per_s",
                 ops_per_s=SPEC.total_tasks() / sequential,
                 meta={"injections": INJECTIONS})
    workers = max(1, min(JOBS, os.cpu_count() or 1))
    bench.record("campaign.parallel.tasks_per_worker_s",
                 ops_per_s=SPEC.total_tasks() / max(parallel, 1e-9) / workers,
                 meta={"injections": INJECTIONS, "jobs": JOBS,
                       "note": "per-worker rate (comparable across "
                               "hosts with different core counts)"})

    if (os.cpu_count() or 1) < 2 or JOBS < 2:
        pytest.skip("single-core host: no parallelism available")

    # Conservative floor scaled to the host: the acceptance criterion is
    # >= 2.5x at jobs=4 on 4 cores; demand >= half the ideal speedup,
    # capped by physical cores, minus pool-startup slack on tiny runs.
    effective = min(JOBS, os.cpu_count())
    floor = max(1.15, 0.5 * effective * (0.5 if INJECTIONS < 100 else 1.0))
    assert sequential / parallel >= floor, (
        f"speedup {sequential / parallel:.2f}x below floor {floor:.2f}x")


def test_unarmed_chaos_hook_overhead(tmp_path):
    """Disarmed ``chaos_point`` crossings must stay noise (< 1%).

    The resilience hooks are compiled into every hot path — worker
    task dispatch, pool submission, store appends, the progress
    sidecar — and stay there in production.  A campaign task crosses a
    handful of them (~6); this guard holds their combined disarmed
    cost under 1% of the cheapest real per-task campaign cost.
    """
    assert controller() is None, "a chaos plan leaked into the benchmark"

    crossings = 200_000
    hook_s = timeit.timeit(
        lambda: chaos_point("campaign.worker.task", key="t0000",
                            attempt=0),
        number=crossings) / crossings

    spec = CampaignSpec(kinds=("srt",), workloads=("compress",),
                        models=("transient-result",), injections=40,
                        instructions=150, warmup=20)
    start = time.perf_counter()
    CampaignEngine(spec, tmp_path / "ref", jobs=1).run()
    task_s = (time.perf_counter() - start) / spec.total_tasks()

    crossings_per_task = 6
    overhead = crossings_per_task * hook_s / task_s
    print(f"\nunarmed chaos_point: {hook_s * 1e9:.0f} ns/crossing, "
          f"{overhead * 100:.4f}% of a {task_s * 1e3:.1f} ms task")
    assert overhead < 0.01, (
        f"disarmed hook overhead {overhead * 100:.3f}% breaches the "
        f"1% budget ({hook_s * 1e9:.0f} ns/crossing)")


def test_disarmed_obs_overhead(tmp_path):
    """Disarmed tracing + metrics must cost < 2% of a campaign task.

    The observability hooks live on the same hot paths as the chaos
    hooks: every worker task opens a ``campaign.task`` span, every
    chunk a ``campaign.chunk`` span, and every store append bumps a
    registry counter.  With no tracer armed ``span()`` returns a
    shared no-op context manager; this guard holds the combined
    disarmed cost of a task's crossings under the 2% acceptance
    budget against the cheapest realistic per-task campaign cost.
    """
    assert obs_trace.tracer() is None, "a tracer leaked into the benchmark"

    def span_crossing():
        with obs_trace.span("campaign.task", key="t0000"):
            pass

    crossings = 200_000
    span_s = timeit.timeit(span_crossing, number=crossings) / crossings
    counter = obs_metrics.registry().counter("bench.overhead.probe")
    counter_s = timeit.timeit(counter.inc, number=crossings) / crossings

    spec = CampaignSpec(kinds=("srt",), workloads=("compress",),
                        models=("transient-result",), injections=40,
                        instructions=150, warmup=20)
    start = time.perf_counter()
    CampaignEngine(spec, tmp_path / "ref", jobs=1).run()
    task_s = (time.perf_counter() - start) / spec.total_tasks()

    # Per task: its own span, a share of the chunk + run spans, and a
    # share of the per-append counter bump — call it 3 span crossings
    # and 1 counter bump, rounded up.
    per_task_s = 3 * span_s + counter_s
    overhead = per_task_s / task_s
    print(f"\ndisarmed obs: {span_s * 1e9:.0f} ns/span, "
          f"{counter_s * 1e9:.0f} ns/counter-inc, "
          f"{overhead * 100:.4f}% of a {task_s * 1e3:.1f} ms task")
    assert overhead < 0.02, (
        f"disarmed observability overhead {overhead * 100:.3f}% "
        f"breaches the 2% budget")
