"""Campaign engine scaling: a worker pool must actually buy wall-clock.

The acceptance shape: a campaign fanned across ``--jobs N`` workers
finishes meaningfully faster than the sequential run on a multi-core
host (>= 2.5x at jobs=4 on 4 cores), while producing a byte-identical
``results.jsonl``.  On single-core CI boxes the speedup assertion is
skipped — there is nothing to parallelise onto — but the determinism
half of the contract is always enforced.

Scale knobs: ``REPRO_CAMPAIGN_INJECTIONS`` (default 24; the acceptance
run uses 200) and ``REPRO_CAMPAIGN_JOBS`` (default min(4, cpu_count)).
"""

import os
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignEngine, CampaignSpec


def env_int(name, default):
    return int(os.environ.get(name, default))


INJECTIONS = env_int("REPRO_CAMPAIGN_INJECTIONS", 24)
JOBS = env_int("REPRO_CAMPAIGN_JOBS", min(4, os.cpu_count() or 1))

SPEC = CampaignSpec(
    kinds=("base", "srt"),
    workloads=("m88ksim",),
    models=("transient-result",),
    injections=INJECTIONS,
    instructions=300,
    warmup=900,
)


def run_at(tmp_path: Path, name: str, jobs: int) -> float:
    start = time.perf_counter()
    CampaignEngine(SPEC, tmp_path / name, jobs=jobs).run()
    return time.perf_counter() - start


def test_parallel_campaign_speedup(tmp_path, benchmark):
    """jobs=N beats jobs=1 — and both produce identical artifacts."""
    sequential = run_at(tmp_path, "seq", 1)
    parallel = benchmark.pedantic(
        lambda: run_at(tmp_path, "par", JOBS), rounds=1, iterations=1)

    ref = (tmp_path / "seq" / "results.jsonl").read_bytes()
    par = (tmp_path / "par" / "results.jsonl").read_bytes()
    assert par == ref, "parallel artifact diverged from sequential"

    print()
    print(f"campaign {SPEC.total_tasks()} injections: "
          f"jobs=1 {sequential:.2f}s, jobs={JOBS} {parallel:.2f}s "
          f"({sequential / max(parallel, 1e-9):.2f}x)")

    if (os.cpu_count() or 1) < 2 or JOBS < 2:
        pytest.skip("single-core host: no parallelism available")

    # Conservative floor scaled to the host: the acceptance criterion is
    # >= 2.5x at jobs=4 on 4 cores; demand >= half the ideal speedup,
    # capped by physical cores, minus pool-startup slack on tiny runs.
    effective = min(JOBS, os.cpu_count())
    floor = max(1.15, 0.5 * effective * (0.5 if INJECTIONS < 100 else 1.0))
    assert sequential / parallel >= floor, (
        f"speedup {sequential / parallel:.2f}x below floor {floor:.2f}x")
