"""Section 8 (single-program CMP runs): Lock0 / Lock8 / CRT.

Paper result: for single-program runs CRT performs similarly to
lockstepping — CRT's leading thread behaves like a lockstepped thread —
while the realistic checker (Lock8) pays its latency on every cache-miss
request.
"""

from repro.harness.experiments import fig10_crt_one_thread
from repro.harness.reporting import render_table


def test_fig10_crt_one_thread(runner, benchmark):
    result = benchmark.pedantic(
        lambda: fig10_crt_one_thread(runner), rounds=1, iterations=1)
    print()
    print(render_table(result))

    mean_lock0 = result.summary["mean.lock0"]
    mean_lock8 = result.summary["mean.lock8"]
    mean_crt = result.summary["mean.crt"]

    # The ideal checker is free; the realistic one is not.
    assert mean_lock0 > 0.95
    assert mean_lock8 < mean_lock0
    # CRT is at least competitive with lockstepping on one thread
    # (its forwarding queues are off the miss critical path).
    assert mean_crt >= mean_lock8 - 0.02
    assert abs(mean_crt - mean_lock0) < 0.10
