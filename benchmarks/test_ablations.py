"""Ablations of the design choices DESIGN.md calls out.

- Trailing-thread fetch priority vs plain ICOUNT (Section 4.4.1: the
  paper found priority fetching from the LPQ performed best).
- CRT's sensitivity to the cross-core forwarding latency (Section 5:
  the queues decouple the threads, so moderate latency is cheap).
- Lockstep's sensitivity to checker latency (Lock0 ... LockN).
- Load value queue sizing (Section 4.1 sizes it like the store queue).
"""

from repro.harness.experiments import (ablation_checker_latency,
                                       ablation_cross_latency,
                                       ablation_fetch_policy,
                                       ablation_lvq_size,
                                       ablation_slack_fetch,
                                       ablation_trailing_fetch_mode)
from repro.harness.reporting import render_table


def test_ablation_fetch_policy(runner, benchmark):
    result = benchmark.pedantic(
        lambda: ablation_fetch_policy(
            runner, benchmarks=["gcc", "swim", "mgrid", "m88ksim", "go",
                                "tomcatv"]),
        rounds=1, iterations=1)
    print()
    print(render_table(result))
    # Paper: trailing priority was the best policy found.
    assert (result.summary["mean.priority"]
            >= result.summary["mean.icount"] - 0.03)


def test_ablation_cross_latency(runner, benchmark):
    result = benchmark.pedantic(
        lambda: ablation_cross_latency(runner, benchmark="swim"),
        rounds=1, iterations=1)
    print()
    print(render_table(result))
    rows = list(result.rows.values())
    # The decoupling queues absorb moderate latency: going from 0 to 8
    # cycles costs almost nothing...
    assert rows[0]["efficiency"] - rows[3]["efficiency"] < 0.08
    # ...and even an extreme 32-cycle crossing degrades gracefully.
    assert rows[-1]["efficiency"] > 0.4 * rows[0]["efficiency"]


def test_ablation_checker_latency(runner, benchmark):
    result = benchmark.pedantic(
        lambda: ablation_checker_latency(runner, benchmark="swim"),
        rounds=1, iterations=1)
    print()
    print(render_table(result))
    rows = list(result.rows.values())
    # Checker latency rides every cache miss: efficiency must fall
    # monotonically (within noise) as latency grows.
    assert rows[0]["efficiency"] > rows[-1]["efficiency"]


def test_ablation_slack_fetch(runner, benchmark):
    result = benchmark.pedantic(
        lambda: ablation_slack_fetch(runner, benchmark="swim"),
        rounds=1, iterations=1)
    print()
    print(render_table(result))
    rows = list(result.rows.values())
    # Section 4.4.1: the LPQ already provides the slack-fetch benefit;
    # explicit slack must not change efficiency materially.
    spread = (max(r["efficiency"] for r in rows)
              - min(r["efficiency"] for r in rows))
    assert spread < 0.12


def test_ablation_trailing_fetch_mode(runner, benchmark):
    result = benchmark.pedantic(
        lambda: ablation_trailing_fetch_mode(runner),
        rounds=1, iterations=1)
    print()
    print(render_table(result))
    # The LPQ delivers a perfect trailing fetch stream...
    assert all(row["lpq_misfetch"] == 0 for row in result.rows.values())
    # ...while shared predictors let trailing misfetches reappear.
    assert sum(row["pred_misfetch"] for row in result.rows.values()) > 0
    # Performance stays comparable either way on this model; the paper's
    # objection is the lost misfetch guarantee and table interference.
    assert (result.summary["mean.lpq_eff"]
            >= result.summary["mean.pred_eff"] - 0.08)


def test_ablation_lvq_size(runner, benchmark):
    result = benchmark.pedantic(
        lambda: ablation_lvq_size(runner, benchmark="swim"),
        rounds=1, iterations=1)
    print()
    print(render_table(result))
    rows = list(result.rows.values())
    # A starved LVQ throttles leading-thread retirement; the paper-sized
    # 64-entry queue is comfortably sufficient.
    assert rows[-1]["efficiency"] >= rows[0]["efficiency"] - 0.02
