"""Model-checker throughput: states/sec and state-space size for the
default SRT protocol configuration, with and without sleep-set
partial-order reduction.

Shape assertions keep the state space from silently exploding (a model
edit that multiplies reachable states shows up here before it turns a
200ms CI verify run into a 2-hour one) and pin the POR contract: the
reduction prunes *transitions* (sleep_skips > 0), never states, and
always agrees with full BFS on the verdict.
"""

import time

from repro.obs import bench
from repro.verify.explore import explore_bfs, explore_por
from repro.verify.protocol import (ProtocolSystem, demo_configuration,
                                   shipped_configurations)


def default_srt_system():
    [config] = [c for c in shipped_configurations()
                if c.name == "srt-default"]
    return ProtocolSystem(config)


#: Reachable states of the default SRT configuration.  A model change
#: is allowed to move this, but a blowup past the bound needs a look.
STATE_BLOWUP_BOUND = 5_000


def test_full_bfs_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: explore_bfs(default_srt_system()),
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.ok
    assert result.states < STATE_BLOWUP_BOUND

    start = time.perf_counter()
    explore_bfs(default_srt_system())
    elapsed = time.perf_counter() - start
    print()
    print(f"  full BFS: {result.states} states, "
          f"{result.transitions} transitions, "
          f"{result.states / elapsed:,.0f} states/sec")

    bench.record("verify.bfs.states_per_s",
                 ops_per_s=result.states / elapsed,
                 meta={"states": result.states})


def test_por_throughput_and_parity(benchmark):
    por = benchmark.pedantic(
        lambda: explore_por(default_srt_system()),
        rounds=3, iterations=1, warmup_rounds=1)
    full = explore_bfs(default_srt_system())

    start = time.perf_counter()
    explore_por(default_srt_system())
    elapsed = time.perf_counter() - start
    print()
    print(f"  POR DFS:  {por.states} states, "
          f"{por.transitions} transitions fired, "
          f"{por.sleep_skips} sleep-set skips, "
          f"{por.states / elapsed:,.0f} states/sec")
    print(f"  parity:   BFS {full.states} states / "
          f"{full.transitions} transitions")

    bench.record("verify.por.states_per_s",
                 ops_per_s=por.states / elapsed,
                 meta={"states": por.states,
                       "sleep_skips": por.sleep_skips})

    assert por.ok == full.ok
    assert por.states == full.states  # sleep sets never prune states
    assert por.sleep_skips > 0        # ...but they do prune transitions


def test_whole_shipped_sweep_stays_cheap(benchmark):
    """The CI gate explores every shipped configuration; the whole
    sweep must stay interactive (it is a test-time gate, not a batch
    job)."""
    configs = shipped_configurations()

    def sweep():
        return [explore_por(ProtocolSystem(c)) for c in configs]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    total_states = sum(r.states for r in results)
    assert all(r.ok for r in results)
    print()
    print(f"  {len(configs)} configurations, "
          f"{total_states} total states")
    assert total_states < len(configs) * STATE_BLOWUP_BOUND
