"""Figure 8: SMT-Efficiency for two logical threads on SRT.

Paper result: two logical threads become four hardware contexts (two
redundant pairs) on the single SMT core; degradation grows to ~40%,
recovered to ~32% by per-thread store queues.  The shape preserved here:
two-thread SRT is below two-thread base SMT, and ptsq recovers part of
the loss.
"""

from repro.harness.experiments import fig8_srt_two_threads
from repro.harness.reporting import render_table


def test_fig8_srt_two_threads(runner, benchmark):
    result = benchmark.pedantic(
        lambda: fig8_srt_two_threads(runner), rounds=1, iterations=1)
    print()
    print(render_table(result))

    mean_base = result.summary["mean.base"]
    mean_srt = result.summary["mean.srt"]
    mean_ptsq = result.summary["mean.srt_ptsq"]

    # Redundancy costs throughput relative to plain two-thread SMT.
    assert mean_srt < mean_base
    # Four contexts contend more than two: efficiency clearly below 1.
    assert mean_srt < 0.92
    # ptsq helps (or at worst is neutral) when four threads split the SQ.
    assert mean_ptsq >= mean_srt - 0.01
