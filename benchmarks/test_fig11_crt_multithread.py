"""Section 8 (multithreaded CMP runs): the paper's headline result.

Paper result: on multithreaded workloads CRT outperforms lockstepping by
13% on average (up to 22%), because cross-coupling lets each core spend
the resources its trailing thread frees on another program's leading
thread, while lockstepped cores waste resources in duplicate
misspeculation and stalls.
"""

import itertools

from repro.harness.experiments import fig11_crt_multithread
from repro.harness.reporting import render_table
from repro.isa.profiles import FOUR_THREAD_POOL, TWO_THREAD_POOL


def test_fig11_crt_vs_lockstep_multithreaded(runner, benchmark, full_scale):
    workloads = [list(p) for p in itertools.combinations(TWO_THREAD_POOL, 2)]
    quads = [list(q) for q in itertools.combinations(FOUR_THREAD_POOL, 4)]
    workloads += quads if full_scale else quads[:2]

    result = benchmark.pedantic(
        lambda: fig11_crt_multithread(runner, workloads=workloads),
        rounds=1, iterations=1)
    print()
    print(render_table(result))

    mean_advantage = result.summary["mean.crt_vs_lock8"]
    max_advantage = result.summary["max.crt_vs_lock8"]

    # Paper: CRT beats Lock8 by ~13% mean, ~22% max.  Our less-contended
    # Python model reproduces the ordering at a smaller magnitude
    # (EXPERIMENTS.md discusses the gap); the shape claims checked here
    # are that CRT wins clearly on average and substantially at best.
    assert mean_advantage > 1.03
    assert max_advantage > 1.06
    assert max_advantage >= mean_advantage
    # CRT must win on the (large) majority of mixes.
    wins = sum(1 for row in result.rows.values()
               if row["crt"] > row["lock8"])
    assert wins >= 0.7 * len(result.rows)
