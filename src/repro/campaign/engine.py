"""Campaign engine: chunked parallel dispatch with resume and cancel.

The engine is the bridge between the deterministic world (spec →
task list → records) and the messy one (worker processes, timeouts,
mid-run kills, service-layer cancellations):

- ``jobs == 1`` executes in-process — no pool, no pickling, ideal for
  tests and debugging, and by construction the reference output every
  parallel run must match byte-for-byte;
- ``jobs > 1`` fans chunks of tasks across a
  :class:`concurrent.futures.ProcessPoolExecutor` with a bounded
  submission window.  Results are consumed **in submission order**, so
  records land in ``results.jsonl`` in canonical task order even though
  chunks complete out of order — that ordering is what makes the
  artifact byte-identical at any ``--jobs`` and makes resume's
  completed-set a simple prefix.

Cooperative cancellation (``should_stop``): checked between chunks.
Already-submitted chunks are drained in order (their records are kept —
they were paid for), unstarted chunks are cancelled, and the artifact
is left a valid canonical-order prefix that ``resume`` completes later.
The serve layer's job cancellation and SIGTERM drain both ride on this.

Chunking amortizes per-task IPC and lets a worker reuse its generated
benchmark across the chunk; the shared :mod:`repro.util.chunking`
policy keeps at least ~4 chunks in flight per worker so the pool stays
busy near the tail.
"""

import time
from typing import Callable, Dict, Iterator, List, Optional

from repro.campaign.sampler import InjectionTask, enumerate_tasks
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.campaign.worker import execute_chunk
from repro.util.chunking import auto_chunk_size

ProgressFn = Callable[[int, int], None]
StopFn = Callable[[], bool]

__all__ = ["CampaignEngine", "auto_chunk_size", "run_campaign"]


def _chunks(tasks: List[InjectionTask], size: int,
            config: Optional[Dict[str, object]],
            timeout: int) -> Iterator[Dict[str, object]]:
    for start in range(0, len(tasks), size):
        yield {
            "tasks": [task.to_dict() for task in tasks[start:start + size]],
            "config": config,
            "timeout": timeout,
        }


class CampaignEngine:
    """Runs (or resumes) one campaign into one artifact directory."""

    def __init__(self, spec: CampaignSpec, out_dir, jobs: int = 1,
                 task_timeout: int = 0,
                 chunk_size: Optional[int] = None) -> None:
        self.spec = spec.validate()
        self.store = CampaignStore(out_dir)
        self.jobs = max(1, int(jobs))
        self.task_timeout = max(0, int(task_timeout))
        self.chunk_size = chunk_size

    # -- planning ----------------------------------------------------------
    def plan(self, fresh: bool = False) -> List[InjectionTask]:
        """Initialize the store and return the tasks still to run."""
        resuming = self.store.initialize(self.spec, fresh=fresh)
        tasks = enumerate_tasks(self.spec)
        if not resuming:
            return tasks
        done = self.store.completed_ids()
        return [task for task in tasks if task.task_id not in done]

    # -- execution ---------------------------------------------------------
    def run(self, fresh: bool = False,
            progress: Optional[ProgressFn] = None,
            should_stop: Optional[StopFn] = None) -> Dict[str, object]:
        """Execute every remaining task; returns a summary dict.

        Safe to invoke repeatedly: completed injections are never
        re-executed (their records are already in the store).

        ``should_stop`` is polled between chunk appends; when it turns
        true the engine stops feeding the pool, drains what was already
        submitted, and returns a summary with ``cancelled: True``.  The
        artifact stays a valid resume point.
        """
        remaining = self.plan(fresh=fresh)
        total = self.spec.total_tasks()
        done_before = total - len(remaining)
        started = time.monotonic()
        executed = 0
        size = self.chunk_size or auto_chunk_size(len(remaining), self.jobs)
        payloads = _chunks(remaining, size, self.spec.config,
                           self.task_timeout)
        cancelled = False
        for records in self._execute(payloads, should_stop):
            self.store.append(records)
            executed += len(records)
            if progress is not None:
                progress(done_before + executed, total)
            self.store.write_progress(self._progress_snapshot(
                done_before + executed, total, started))
        if should_stop is not None and should_stop():
            cancelled = done_before + executed < total
        elapsed = time.monotonic() - started
        summary = {
            "campaign_hash": self.spec.content_hash(),
            "total_tasks": total,
            "already_complete": done_before,
            "executed": executed,
            "cancelled": cancelled,
            "jobs": self.jobs,
            "chunk_size": size,
            "elapsed_s": round(elapsed, 3),
            "tasks_per_s": round(executed / elapsed, 3) if elapsed else None,
        }
        summary["state"] = ("cancelled" if cancelled else
                            "complete" if done_before + executed >= total
                            else "partial")
        self.store.write_progress(summary)
        return summary

    def _progress_snapshot(self, done: int, total: int,
                           started: float) -> Dict[str, object]:
        """Advisory mid-run sidecar (read by status and /metrics)."""
        elapsed = time.monotonic() - started
        return {
            "state": "running",
            "campaign_hash": self.spec.content_hash(),
            "done": done,
            "total_tasks": total,
            "jobs": self.jobs,
            "elapsed_s": round(elapsed, 3),
        }

    def _execute(self, payloads: Iterator[Dict[str, object]],
                 should_stop: Optional[StopFn] = None
                 ) -> Iterator[List[Dict[str, object]]]:
        stopping = (should_stop if should_stop is not None
                    else (lambda: False))
        if self.jobs == 1:
            for payload in payloads:
                if stopping():
                    return
                yield execute_chunk(payload)
            return
        # Lazy import: keep single-process campaigns importable on
        # platforms with broken multiprocessing.
        from collections import deque
        from concurrent.futures import ProcessPoolExecutor
        # Bounded submission window: enough chunks in flight to keep
        # every worker busy, few enough that a cancellation only has to
        # drain a small, already-running suffix.
        window = self.jobs * 4
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            pending = deque()
            exhausted = False
            while True:
                while not exhausted and len(pending) < window:
                    try:
                        payload = next(payloads)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.append(pool.submit(execute_chunk, payload))
                if not pending:
                    return
                # Futures resolve in submission order (canonical task
                # order) even though chunks complete out of order —
                # exactly the in-order flush the byte-identical
                # artifact needs.
                yield pending.popleft().result()
                if stopping():
                    # Drain the contiguous already-running prefix (the
                    # pool starts futures in submission order, so the
                    # cancellable ones form a suffix) and drop the rest.
                    while pending:
                        future = pending.popleft()
                        if future.cancel():
                            for rest in pending:
                                rest.cancel()
                            pending.clear()
                            break
                        yield future.result()
                    return


def run_campaign(spec: CampaignSpec, out_dir, jobs: int = 1,
                 task_timeout: int = 0, fresh: bool = False,
                 chunk_size: Optional[int] = None,
                 progress: Optional[ProgressFn] = None,
                 should_stop: Optional[StopFn] = None) -> Dict[str, object]:
    """One-call convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(spec, out_dir, jobs=jobs,
                            task_timeout=task_timeout, chunk_size=chunk_size)
    return engine.run(fresh=fresh, progress=progress,
                      should_stop=should_stop)
