"""Campaign engine: chunked parallel dispatch with resume and cancel.

The engine is the bridge between the deterministic world (spec →
task list → records) and the messy one (worker processes, timeouts,
mid-run kills, service-layer cancellations):

- ``jobs == 1`` executes in-process — no pool, no pickling, ideal for
  tests and debugging, and by construction the reference output every
  parallel run must match byte-for-byte;
- ``jobs > 1`` fans chunks of tasks across a
  :class:`concurrent.futures.ProcessPoolExecutor` with a bounded
  submission window.  Results are consumed **in submission order**, so
  records land in ``results.jsonl`` in canonical task order even though
  chunks complete out of order — that ordering is what makes the
  artifact byte-identical at any ``--jobs`` and makes resume's
  completed-set a simple prefix.

Cooperative cancellation (``should_stop``): checked between chunks.
Already-submitted chunks are drained in order (their records are kept —
they were paid for), unstarted chunks are cancelled, and the artifact
is left a valid canonical-order prefix that ``resume`` completes later.
The serve layer's job cancellation and SIGTERM drain both ride on this.

Chunking amortizes per-task IPC and lets a worker reuse its generated
benchmark across the chunk; the shared :mod:`repro.util.chunking`
policy keeps at least ~4 chunks in flight per worker so the pool stays
busy near the tail.

Infrastructure-fault resilience: a crashed worker process breaks the
whole :class:`~concurrent.futures.ProcessPoolExecutor`
(``BrokenProcessPool``), which used to abort the campaign.  The engine
now treats a pool break as an infrastructure event: it rebuilds the
pool, reclaims every in-flight chunk (in canonical order, so the
artifact stays byte-identical), and re-executes only the rows that
never landed.  Because the culprit is unknowable from the break alone,
the suspect head chunk is split to single tasks and re-run **alone**
(probation) so blame lands precisely; a task whose chunk breaks the
pool :data:`QUARANTINE_AFTER` consecutive times is quarantined as a
structured ``infra-failure`` record — visible in ``campaign report`` —
rather than aborting everything else.
"""

import logging
import time
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.campaign.sampler import InjectionTask, enumerate_tasks
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.campaign.worker import execute_chunk
from repro.chaos import chaos_point
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.chunking import auto_chunk_size

run_log = logging.getLogger("repro.run")

ProgressFn = Callable[[int, int], None]
StopFn = Callable[[], bool]

#: A task that breaks the pool this many consecutive times is recorded
#: as an ``infra-failure`` row instead of being retried forever.
QUARANTINE_AFTER = 3

#: Outcome string of a quarantined task's structured record.
INFRA_FAILURE_OUTCOME = "infra-failure"

__all__ = ["CampaignEngine", "INFRA_FAILURE_OUTCOME", "QUARANTINE_AFTER",
           "auto_chunk_size", "infra_failure_record", "run_campaign"]


def infra_failure_record(task: Dict[str, object],
                         pool_kills: int) -> Dict[str, object]:
    """Structured row for a task quarantined after repeated pool kills.

    Shaped like every other result record (same identity fields, null
    measurement fields) so stores, reports, and resume treat it
    uniformly; the ``infra`` payload carries the forensics.
    """
    record = {
        "task_id": task["task_id"],
        "index": task["index"],
        "kind": task["kind"],
        "workload": task["workload"],
        "model": task["model"],
        "fault": task["fault"],
        "timed_out": False,
        "outcome": INFRA_FAILURE_OUTCOME,
        "struck_cycle": None,
        "detected_cycle": None,
        "latency": None,
        "termination": INFRA_FAILURE_OUTCOME,
        "infra": {
            "pool_kills": pool_kills,
            "reason": "worker process died executing this task "
                      f"{pool_kills} consecutive time(s); quarantined",
        },
    }
    if task.get("predicted") is not None:
        record["predicted"] = task["predicted"]
    return record


def _chunks(tasks: List[InjectionTask], size: int,
            config: Optional[Dict[str, object]],
            timeout: int,
            trace_carry: Optional[Dict[str, str]] = None
            ) -> Iterator[Dict[str, object]]:
    for start in range(0, len(tasks), size):
        payload: Dict[str, object] = {
            "tasks": [task.to_dict() for task in tasks[start:start + size]],
            "config": config,
            "timeout": timeout,
        }
        if trace_carry is not None:
            # Cross-process span propagation: the worker adopts this
            # carry so its chunk/task spans nest under the campaign.run
            # root even across the pickle boundary.
            payload["trace"] = trace_carry
        yield payload


class CampaignEngine:
    """Runs (or resumes) one campaign into one artifact directory."""

    def __init__(self, spec: CampaignSpec, out_dir, jobs: int = 1,
                 task_timeout: int = 0,
                 chunk_size: Optional[int] = None,
                 quarantine_after: int = QUARANTINE_AFTER) -> None:
        self.spec = spec.validate()
        self.store = CampaignStore(out_dir)
        self.jobs = max(1, int(jobs))
        self.task_timeout = max(0, int(task_timeout))
        self.chunk_size = chunk_size
        self.quarantine_after = max(1, int(quarantine_after))
        #: Infrastructure-event counters for this run (summary-only —
        #: stripped from cached serve payloads to keep them
        #: byte-identical across faulty and clean runs).
        self.infra_stats: Dict[str, int] = {
            "pool_rebuilds": 0,
            "chunk_retries": 0,
            "quarantined": 0,
        }

    # -- planning ----------------------------------------------------------
    def plan(self, fresh: bool = False) -> List[InjectionTask]:
        """Initialize the store and return the tasks still to run."""
        resuming = self.store.initialize(self.spec, fresh=fresh)
        tasks = enumerate_tasks(self.spec)
        if not resuming:
            return tasks
        done = self.store.completed_ids()
        return [task for task in tasks if task.task_id not in done]

    # -- execution ---------------------------------------------------------
    def run(self, fresh: bool = False,
            progress: Optional[ProgressFn] = None,
            should_stop: Optional[StopFn] = None) -> Dict[str, object]:
        """Execute every remaining task; returns a summary dict.

        Safe to invoke repeatedly: completed injections are never
        re-executed (their records are already in the store).

        ``should_stop`` is polled between chunk appends; when it turns
        true the engine stops feeding the pool, drains what was already
        submitted, and returns a summary with ``cancelled: True``.  The
        artifact stays a valid resume point.
        """
        remaining = self.plan(fresh=fresh)
        total = self.spec.total_tasks()
        done_before = total - len(remaining)
        started = time.monotonic()
        executed = 0
        size = self.chunk_size or auto_chunk_size(len(remaining), self.jobs)
        registry = obs_metrics.registry()
        # ``jobs`` / chunking are deliberately NOT span attrs: the
        # normalized span log must be identical at any --jobs level,
        # exactly like results.jsonl.
        with obs_trace.span("campaign.run",
                            key=self.spec.content_hash()[:12],
                            total=total):
            payloads = _chunks(remaining, size, self.spec.config,
                               self.task_timeout,
                               trace_carry=obs_trace.carry())
            cancelled = False
            for records in self._execute(payloads, should_stop):
                self.store.append(records)
                executed += len(records)
                registry.counter("campaign.records").inc(len(records))
                if progress is not None:
                    progress(done_before + executed, total)
                self.store.write_progress(self._progress_snapshot(
                    done_before + executed, total, started))
        if should_stop is not None and should_stop():
            cancelled = done_before + executed < total
        flushed = self.store.flush()  # land any disk-error-deferred batches
        elapsed = time.monotonic() - started
        summary = {
            "campaign_hash": self.spec.content_hash(),
            "total_tasks": total,
            "already_complete": done_before,
            "executed": executed,
            "cancelled": cancelled,
            "jobs": self.jobs,
            "chunk_size": size,
            "elapsed_s": round(elapsed, 3),
            "tasks_per_s": round(executed / elapsed, 3) if elapsed else None,
        }
        if any(self.infra_stats.values()):
            summary["infra"] = dict(self.infra_stats)
        summary["state"] = ("cancelled" if cancelled else
                            "complete" if done_before + executed >= total
                            else "partial")
        if not flushed:
            # Executed records never reached disk; the artifact is an
            # honest resume point, not a complete one.
            summary["unflushed_batches"] = self.store.pending_batches
            if summary["state"] == "complete":
                summary["state"] = "partial"
            run_log.warning(
                "campaign finished computing but %d record batch(es) "
                "could not be persisted; re-run resume once the disk "
                "recovers", self.store.pending_batches)
        self.store.write_progress(summary)
        return summary

    def _progress_snapshot(self, done: int, total: int,
                           started: float) -> Dict[str, object]:
        """Advisory mid-run sidecar (read by status and /metrics)."""
        elapsed = time.monotonic() - started
        return {
            "state": "running",
            "campaign_hash": self.spec.content_hash(),
            "done": done,
            "total_tasks": total,
            "jobs": self.jobs,
            "elapsed_s": round(elapsed, 3),
        }

    def _execute(self, payloads: Iterator[Dict[str, object]],
                 should_stop: Optional[StopFn] = None
                 ) -> Iterator[List[Dict[str, object]]]:
        stopping = (should_stop if should_stop is not None
                    else (lambda: False))
        if self.jobs == 1:
            for payload in payloads:
                if stopping():
                    return
                chaos_point("campaign.engine.submit",
                            key=payload["tasks"][0]["task_id"],
                            attempt=int(payload.get("attempt") or 0))
                yield execute_chunk(payload)
            return
        yield from self._execute_pooled(payloads, stopping)

    def _execute_pooled(self, payloads: Iterator[Dict[str, object]],
                        stopping: StopFn
                        ) -> Iterator[List[Dict[str, object]]]:
        """Windowed pool dispatch that survives broken pools.

        Invariants:

        - records are yielded in canonical (submission) order — the
          backlog deque holds reclaimed payloads at its head, so a
          rebuild never reorders the artifact;
        - after a pool break the engine runs one chunk at a time
          (*probation*) until a chunk completes, so the next break
          definitively blames the chunk that was alone in flight;
        - a suspect multi-task chunk is split to single-task chunks
          before probation, so quarantine only ever removes one task;
        - every resubmission bumps the payload's ``attempt`` counter so
          first-attempt chaos rules do not re-fire forever.
        """
        # Lazy import: keep single-process campaigns importable on
        # platforms with broken multiprocessing.
        from collections import deque
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
        # Bounded submission window: enough chunks in flight to keep
        # every worker busy, few enough that a cancellation or a pool
        # rebuild only has to reclaim a small suffix.
        window = self.jobs * 4
        backlog: Deque[Dict[str, object]] = deque()
        pending: Deque[Tuple[Dict[str, object], object]] = deque()
        kills: Dict[str, int] = {}  # task_id -> consecutive pool breaks
        exhausted = False
        probation = False
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            while True:
                limit = 1 if probation else window
                broken_on_submit = False
                while len(pending) < limit:
                    if backlog:
                        payload = backlog.popleft()
                    elif not exhausted:
                        try:
                            payload = next(payloads)
                        except StopIteration:
                            exhausted = True
                            break
                    else:
                        break
                    chaos_point("campaign.engine.submit",
                                key=payload["tasks"][0]["task_id"],
                                attempt=int(payload.get("attempt") or 0))
                    try:
                        pending.append(
                            (payload, pool.submit(execute_chunk, payload)))
                    except BrokenExecutor:
                        # The break raced ahead of the result we were
                        # about to read; reclaim this payload with the
                        # rest.
                        backlog.appendleft(payload)
                        broken_on_submit = True
                        break
                if broken_on_submit:
                    pool = self._recover_pool(pool, None, pending, backlog)
                    record = self._charge_backlog_head(backlog, kills)
                    if record is not None:
                        yield [record]
                    probation = True
                    continue
                if not pending:
                    return
                # Futures resolve in submission order (canonical task
                # order) even though chunks complete out of order —
                # exactly the in-order flush the byte-identical
                # artifact needs.
                head_payload, future = pending.popleft()
                try:
                    records = future.result()
                except BrokenExecutor:
                    pool = self._recover_pool(pool, head_payload, pending,
                                              backlog)
                    record = self._charge_backlog_head(backlog, kills)
                    if record is not None:
                        yield [record]
                    probation = True
                    continue
                probation = False
                for task in head_payload["tasks"]:
                    kills.pop(task["task_id"], None)
                yield records
                if stopping():
                    # Drain the contiguous already-running prefix (the
                    # pool starts futures in submission order, so the
                    # cancellable ones form a suffix) and drop the rest.
                    while pending:
                        _, future = pending.popleft()
                        if future.cancel():
                            for _, rest in pending:
                                rest.cancel()
                            pending.clear()
                            break
                        try:
                            yield future.result()
                        except BrokenExecutor:
                            # Cancelling anyway; the artifact stays a
                            # valid canonical prefix for resume.
                            break
                    return
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def _recover_pool(self, pool, head_payload: Optional[Dict[str, object]],
                      pending: Deque[Tuple[Dict[str, object], object]],
                      backlog: Deque[Dict[str, object]]):
        """Rebuild a broken pool and reclaim every in-flight payload.

        Reclaimed payloads go to the *front* of the backlog in their
        original submission order with ``attempt`` bumped, so canonical
        record order survives the rebuild and first-attempt chaos rules
        stay quiet on the retry.
        """
        from concurrent.futures import ProcessPoolExecutor
        reclaimed = (([head_payload] if head_payload is not None else [])
                     + [payload for payload, _ in pending])
        pending.clear()
        for payload in reversed(reclaimed):
            backlog.appendleft(
                dict(payload, attempt=int(payload.get("attempt") or 0) + 1))
        self.infra_stats["pool_rebuilds"] += 1
        self.infra_stats["chunk_retries"] += len(reclaimed)
        obs_metrics.registry().counter("campaign.pool.rebuilds").inc()
        run_log.warning(
            "campaign pool broken (worker died); rebuilt pool and "
            "reclaimed %d in-flight chunk(s) for re-execution",
            len(reclaimed))
        pool.shutdown(wait=False, cancel_futures=True)
        return ProcessPoolExecutor(max_workers=self.jobs)

    def _charge_backlog_head(self, backlog: Deque[Dict[str, object]],
                             kills: Dict[str, int]
                             ) -> Optional[Dict[str, object]]:
        """Blame bookkeeping after a pool break.

        The head of the backlog is the prime suspect (it was in flight
        first).  A multi-task head is split into single-task payloads —
        blame is ambiguous, nobody is charged, and the subsequent
        probation run isolates the culprit.  A single-task head is
        charged one kill; at :attr:`quarantine_after` consecutive kills
        it is removed from the backlog and its structured
        ``infra-failure`` record is returned for in-order emission.
        """
        if not backlog:
            return None
        head = backlog[0]
        tasks = head["tasks"]
        if len(tasks) > 1:
            backlog.popleft()
            for task in reversed(tasks):
                backlog.appendleft(dict(head, tasks=[task]))
            return None
        task = tasks[0]
        task_id = task["task_id"]
        kills[task_id] = kills.get(task_id, 0) + 1
        if kills[task_id] < self.quarantine_after:
            return None
        backlog.popleft()
        self.infra_stats["quarantined"] += 1
        obs_metrics.registry().counter("campaign.quarantined").inc()
        run_log.warning(
            "task %s killed the worker pool %d consecutive times; "
            "quarantining it as an infra-failure record",
            task_id, kills[task_id])
        return infra_failure_record(task, kills.pop(task_id))


def run_campaign(spec: CampaignSpec, out_dir, jobs: int = 1,
                 task_timeout: int = 0, fresh: bool = False,
                 chunk_size: Optional[int] = None,
                 progress: Optional[ProgressFn] = None,
                 should_stop: Optional[StopFn] = None) -> Dict[str, object]:
    """One-call convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(spec, out_dir, jobs=jobs,
                            task_timeout=task_timeout, chunk_size=chunk_size)
    return engine.run(fresh=fresh, progress=progress,
                      should_stop=should_stop)
