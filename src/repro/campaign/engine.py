"""Campaign engine: chunked parallel dispatch with resume.

The engine is the bridge between the deterministic world (spec →
task list → records) and the messy one (worker processes, timeouts,
mid-run kills):

- ``jobs == 1`` executes in-process — no pool, no pickling, ideal for
  tests and debugging, and by construction the reference output every
  parallel run must match byte-for-byte;
- ``jobs > 1`` fans chunks of tasks across a
  :class:`concurrent.futures.ProcessPoolExecutor`.  ``Executor.map``
  yields chunk results **in submission order**, so records land in
  ``results.jsonl`` in canonical task order even though chunks complete
  out of order — that ordering is what makes the artifact byte-identical
  at any ``--jobs`` and makes resume's completed-set a simple prefix.

Chunking amortizes per-task IPC and lets a worker reuse its generated
benchmark across the chunk; the auto chunk size keeps at least ~4
chunks in flight per worker so the pool stays busy near the tail.
"""

import time
from typing import Callable, Dict, Iterator, List, Optional

from repro.campaign.sampler import InjectionTask, enumerate_tasks
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.campaign.worker import execute_chunk

ProgressFn = Callable[[int, int], None]


def auto_chunk_size(remaining: int, jobs: int) -> int:
    """Tasks per chunk: ≥4 chunks in flight per worker, capped at 16."""
    if remaining <= 0:
        return 1
    return max(1, min(16, remaining // max(1, jobs * 4) or 1))


def _chunks(tasks: List[InjectionTask], size: int,
            config: Optional[Dict[str, object]],
            timeout: int) -> Iterator[Dict[str, object]]:
    for start in range(0, len(tasks), size):
        yield {
            "tasks": [task.to_dict() for task in tasks[start:start + size]],
            "config": config,
            "timeout": timeout,
        }


class CampaignEngine:
    """Runs (or resumes) one campaign into one artifact directory."""

    def __init__(self, spec: CampaignSpec, out_dir, jobs: int = 1,
                 task_timeout: int = 0,
                 chunk_size: Optional[int] = None) -> None:
        self.spec = spec.validate()
        self.store = CampaignStore(out_dir)
        self.jobs = max(1, int(jobs))
        self.task_timeout = max(0, int(task_timeout))
        self.chunk_size = chunk_size

    # -- planning ----------------------------------------------------------
    def plan(self, fresh: bool = False) -> List[InjectionTask]:
        """Initialize the store and return the tasks still to run."""
        resuming = self.store.initialize(self.spec, fresh=fresh)
        tasks = enumerate_tasks(self.spec)
        if not resuming:
            return tasks
        done = self.store.completed_ids()
        return [task for task in tasks if task.task_id not in done]

    # -- execution ---------------------------------------------------------
    def run(self, fresh: bool = False,
            progress: Optional[ProgressFn] = None) -> Dict[str, object]:
        """Execute every remaining task; returns a summary dict.

        Safe to invoke repeatedly: completed injections are never
        re-executed (their records are already in the store).
        """
        remaining = self.plan(fresh=fresh)
        total = self.spec.total_tasks()
        done_before = total - len(remaining)
        started = time.monotonic()
        executed = 0
        size = self.chunk_size or auto_chunk_size(len(remaining), self.jobs)
        payloads = _chunks(remaining, size, self.spec.config,
                           self.task_timeout)
        for records in self._execute(payloads):
            self.store.append(records)
            executed += len(records)
            if progress is not None:
                progress(done_before + executed, total)
        elapsed = time.monotonic() - started
        summary = {
            "campaign_hash": self.spec.content_hash(),
            "total_tasks": total,
            "already_complete": done_before,
            "executed": executed,
            "jobs": self.jobs,
            "chunk_size": size,
            "elapsed_s": round(elapsed, 3),
            "tasks_per_s": round(executed / elapsed, 3) if elapsed else None,
        }
        self.store.write_progress(summary)
        return summary

    def _execute(self, payloads: Iterator[Dict[str, object]]
                 ) -> Iterator[List[Dict[str, object]]]:
        if self.jobs == 1:
            for payload in payloads:
                yield execute_chunk(payload)
            return
        # Lazy import: keep single-process campaigns importable on
        # platforms with broken multiprocessing.
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            # Executor.map yields in submission order (canonical task
            # order) while chunks execute concurrently — exactly the
            # in-order flush the byte-identical artifact needs.
            for records in pool.map(execute_chunk, payloads):
                yield records


def run_campaign(spec: CampaignSpec, out_dir, jobs: int = 1,
                 task_timeout: int = 0, fresh: bool = False,
                 chunk_size: Optional[int] = None,
                 progress: Optional[ProgressFn] = None) -> Dict[str, object]:
    """One-call convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(spec, out_dir, jobs=jobs,
                            task_timeout=task_timeout, chunk_size=chunk_size)
    return engine.run(fresh=fresh, progress=progress)
