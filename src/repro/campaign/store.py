"""Resumable campaign artifact store (manifest + JSONL records).

Layout of a campaign directory::

    manifest.json    campaign identity: spec + content hash (written once)
    results.jsonl    one record per completed injection, canonical JSON
    progress.json    engine-side progress/timing sidecar (advisory only)

Resume semantics: ``results.jsonl`` *is* the completion state — a task
whose ``task_id`` appears in it is done and is never re-executed.  The
manifest's content hash binds the records to the exact spec that
produced them; opening a directory with a different spec raises unless
the caller explicitly asks for a fresh start (cache invalidation on
config change).

Crash safety: records are appended line-at-a-time with flush+fsync, so
killing a campaign mid-run loses at most the chunk in flight.  A
partial trailing line (kill mid-write) is detected on open and
truncated away before resuming.

Disk-fault resilience: an append that hits ``ENOSPC``/``EIO`` (or a
chaos-injected torn write) is rolled back to the pre-append offset and
retried a bounded number of times; if the disk stays broken the batch
is *deferred* in memory — the campaign keeps computing, a warning is
logged, and every later append (and the engine's end-of-run flush)
retries the backlog first so canonical record order is preserved.
The advisory progress sidecar simply degrades to a warning on write
errors; it must never fail a run.
"""

import errno
import json
import logging
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set

from repro.campaign.spec import CampaignConfigError, CampaignSpec
from repro.chaos import chaos_point
from repro.util.canonical import canonical_json

run_log = logging.getLogger("repro.run")

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
PROGRESS_NAME = "progress.json"

#: Bounded retry budget for one results append (simlint S401: every
#: retry loop must have a cap).
APPEND_ATTEMPTS = 3
#: Linear backoff step between append retries (seconds).
APPEND_RETRY_DELAY_S = 0.01


def canonical_record(record: Dict[str, object]) -> str:
    """The one true byte encoding of a result record."""
    return canonical_json(record)


class CampaignStore:
    """One campaign directory: manifest, results, progress sidecar."""

    def __init__(self, out_dir) -> None:
        self.dir = Path(out_dir)
        self.manifest_path = self.dir / MANIFEST_NAME
        self.results_path = self.dir / RESULTS_NAME
        self.progress_path = self.dir / PROGRESS_NAME
        #: Serialized batches awaiting a flush after disk errors.
        self._pending: List[str] = []
        #: Observability counters (write_errors includes retried ones).
        self.write_errors = 0
        self.progress_errors = 0

    # -- manifest ----------------------------------------------------------
    def exists(self) -> bool:
        return self.manifest_path.exists()

    def load_manifest(self) -> Dict[str, object]:
        if not self.exists():
            raise CampaignConfigError(
                f"no campaign manifest in {self.dir} (nothing to resume)")
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def load_spec(self) -> CampaignSpec:
        return CampaignSpec.from_dict(self.load_manifest()["spec"])

    def initialize(self, spec: CampaignSpec, fresh: bool = False) -> bool:
        """Bind this directory to ``spec``.  Returns True when resuming.

        - empty directory            → write manifest, start fresh;
        - manifest with same hash    → resume (keep records);
        - manifest with other hash   → raise, unless ``fresh`` — then the
          stale records and manifest are discarded (config changed, the
          cache is invalid).
        """
        spec.validate()
        self.dir.mkdir(parents=True, exist_ok=True)
        new_hash = spec.content_hash()
        if self.exists():
            old_hash = self.load_manifest().get("campaign_hash")
            if old_hash == new_hash and not fresh:
                return True
            if old_hash != new_hash and not fresh:
                raise CampaignConfigError(
                    f"campaign config changed (stored {old_hash}, new "
                    f"{new_hash}); re-run with --fresh to discard the "
                    f"{self.completed_count()} stale record(s) in "
                    f"{self.dir}")
            self._discard_results()
        manifest = {
            "campaign_hash": new_hash,
            "spec": spec.to_dict(),
            "total_tasks": spec.total_tasks(),
        }
        self._write_json(self.manifest_path, manifest)
        return False

    def _discard_results(self) -> None:
        for path in (self.results_path, self.progress_path,
                     self.manifest_path):
            if path.exists():
                path.unlink()

    # -- results -----------------------------------------------------------
    def _repair_partial_tail(self) -> None:
        """Drop a partial trailing line left by a mid-write kill."""
        if not self.results_path.exists():
            return
        raw = self.results_path.read_bytes()
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1  # 0 when no complete line survived
        with open(self.results_path, "r+b") as handle:
            handle.truncate(keep)

    def iter_records(self) -> Iterator[Dict[str, object]]:
        self._repair_partial_tail()
        if not self.results_path.exists():
            return
        with open(self.results_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def records(self) -> List[Dict[str, object]]:
        return list(self.iter_records())

    def completed_ids(self) -> Set[str]:
        return {record["task_id"] for record in self.iter_records()}

    def completed_count(self) -> int:
        return len(self.completed_ids())

    def append(self, records: List[Dict[str, object]]) -> None:
        """Durably append a batch of records (one fsync per batch).

        The batch is serialized *before* the file opens and written as a
        single buffer, so a KeyboardInterrupt landing inside this method
        either misses the batch entirely or writes it whole — it cannot
        leave a torn row mid-batch (a kill harder than SIGINT can still
        tear the final buffered write, which ``_repair_partial_tail``
        drops on the next load).

        A write that fails with a disk error (``ENOSPC``/``EIO``, torn
        write) is rolled back to the pre-append offset and retried up
        to :data:`APPEND_ATTEMPTS` times; a persistently broken disk
        defers the batch in memory (see :meth:`flush`) instead of
        failing the campaign.
        """
        if not records:
            return
        self._pending.append("".join(canonical_record(record) + "\n"
                                     for record in records))
        self.flush()

    def flush(self) -> bool:
        """Try to land every deferred batch; True when nothing remains.

        Deferred batches are concatenated in arrival order so a
        recovered disk still yields the canonical record order.
        """
        if not self._pending:
            return True
        blob = "".join(self._pending)
        base = (self.results_path.stat().st_size
                if self.results_path.exists() else 0)
        last_error: Optional[OSError] = None
        for attempt in range(APPEND_ATTEMPTS):
            try:
                self._write_blob(blob, attempt)
                self._pending.clear()
                return True
            except OSError as error:
                last_error = error
                self.write_errors += 1
                self._truncate_to(base)
                if attempt + 1 < APPEND_ATTEMPTS:
                    time.sleep(APPEND_RETRY_DELAY_S * (attempt + 1))
        run_log.warning(
            "campaign store: deferring %d record batch(es) after write "
            "error (%s); will retry on the next append",
            len(self._pending), last_error)
        return False

    @property
    def pending_batches(self) -> int:
        return len(self._pending)

    def _write_blob(self, blob: str, attempt: int) -> None:
        fault = chaos_point("campaign.store.append", attempt=attempt)
        data = blob.encode("utf-8")
        with open(self.results_path, "ab") as handle:
            if fault is not None and fault.fault == "torn-write":
                handle.write(data[:fault.tear(len(data))])
                handle.flush()
                os.fsync(handle.fileno())
                raise OSError(errno.EIO,
                              f"chaos[{fault.seq}]: torn write in "
                              f"results append")
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def _truncate_to(self, size: int) -> None:
        """Roll a failed append back to its pre-write offset."""
        try:
            if not self.results_path.exists():
                return
            with open(self.results_path, "r+b") as handle:
                handle.truncate(size)
        except OSError:
            # The next load's _repair_partial_tail drops any torn line;
            # worst case a complete duplicate-free prefix survives.
            pass

    # -- progress sidecar --------------------------------------------------
    def write_progress(self, progress: Dict[str, object]) -> None:
        """Atomically replace the progress sidecar.

        The engine rewrites this file after every chunk append while a
        concurrent ``campaign status`` (or the serve layer's
        ``/metrics`` endpoint) may be reading it — write-temp-then-
        ``os.replace`` guarantees a reader sees either the old or the
        new sidecar, never a half-written hybrid.

        The sidecar is advisory, so a disk error here degrades to a
        warning: the campaign itself must never fail because progress
        reporting could not be persisted.
        """
        try:
            chaos_point("campaign.store.progress")
            self._write_json(self.progress_path, progress)
        except OSError as error:
            self.progress_errors += 1
            if self.progress_errors == 1:  # warn once, not per chunk
                run_log.warning(
                    "campaign store: progress sidecar write failed "
                    "(%s); status will lag results.jsonl", error)

    def load_progress(self) -> Optional[Dict[str, object]]:
        """The progress sidecar, or None when absent *or unreadable*.

        The sidecar is advisory — a missing file (campaign has never
        run under this build) or an unparsable one (torn by a pre-atomic
        writer, or a crash between create and replace) must never make
        ``status`` fail when the authoritative ``results.jsonl`` is
        fine.
        """
        if not self.progress_path.exists():
            return None
        try:
            with open(self.progress_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (json.JSONDecodeError, OSError):
            return None

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _write_json(path: Path, data: Dict[str, object]) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(data, handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
