"""Resumable campaign artifact store (manifest + JSONL records).

Layout of a campaign directory::

    manifest.json    campaign identity: spec + content hash (written once)
    results.jsonl    one record per completed injection, canonical JSON
    progress.json    engine-side progress/timing sidecar (advisory only)

Resume semantics: ``results.jsonl`` *is* the completion state — a task
whose ``task_id`` appears in it is done and is never re-executed.  The
manifest's content hash binds the records to the exact spec that
produced them; opening a directory with a different spec raises unless
the caller explicitly asks for a fresh start (cache invalidation on
config change).

Crash safety: records are appended line-at-a-time with flush+fsync, so
killing a campaign mid-run loses at most the chunk in flight.  A
partial trailing line (kill mid-write) is detected on open and
truncated away before resuming.
"""

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set

from repro.campaign.spec import CampaignConfigError, CampaignSpec
from repro.util.canonical import canonical_json

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
PROGRESS_NAME = "progress.json"


def canonical_record(record: Dict[str, object]) -> str:
    """The one true byte encoding of a result record."""
    return canonical_json(record)


class CampaignStore:
    """One campaign directory: manifest, results, progress sidecar."""

    def __init__(self, out_dir) -> None:
        self.dir = Path(out_dir)
        self.manifest_path = self.dir / MANIFEST_NAME
        self.results_path = self.dir / RESULTS_NAME
        self.progress_path = self.dir / PROGRESS_NAME

    # -- manifest ----------------------------------------------------------
    def exists(self) -> bool:
        return self.manifest_path.exists()

    def load_manifest(self) -> Dict[str, object]:
        if not self.exists():
            raise CampaignConfigError(
                f"no campaign manifest in {self.dir} (nothing to resume)")
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def load_spec(self) -> CampaignSpec:
        return CampaignSpec.from_dict(self.load_manifest()["spec"])

    def initialize(self, spec: CampaignSpec, fresh: bool = False) -> bool:
        """Bind this directory to ``spec``.  Returns True when resuming.

        - empty directory            → write manifest, start fresh;
        - manifest with same hash    → resume (keep records);
        - manifest with other hash   → raise, unless ``fresh`` — then the
          stale records and manifest are discarded (config changed, the
          cache is invalid).
        """
        spec.validate()
        self.dir.mkdir(parents=True, exist_ok=True)
        new_hash = spec.content_hash()
        if self.exists():
            old_hash = self.load_manifest().get("campaign_hash")
            if old_hash == new_hash and not fresh:
                return True
            if old_hash != new_hash and not fresh:
                raise CampaignConfigError(
                    f"campaign config changed (stored {old_hash}, new "
                    f"{new_hash}); re-run with --fresh to discard the "
                    f"{self.completed_count()} stale record(s) in "
                    f"{self.dir}")
            self._discard_results()
        manifest = {
            "campaign_hash": new_hash,
            "spec": spec.to_dict(),
            "total_tasks": spec.total_tasks(),
        }
        self._write_json(self.manifest_path, manifest)
        return False

    def _discard_results(self) -> None:
        for path in (self.results_path, self.progress_path,
                     self.manifest_path):
            if path.exists():
                path.unlink()

    # -- results -----------------------------------------------------------
    def _repair_partial_tail(self) -> None:
        """Drop a partial trailing line left by a mid-write kill."""
        if not self.results_path.exists():
            return
        raw = self.results_path.read_bytes()
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1  # 0 when no complete line survived
        with open(self.results_path, "r+b") as handle:
            handle.truncate(keep)

    def iter_records(self) -> Iterator[Dict[str, object]]:
        self._repair_partial_tail()
        if not self.results_path.exists():
            return
        with open(self.results_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def records(self) -> List[Dict[str, object]]:
        return list(self.iter_records())

    def completed_ids(self) -> Set[str]:
        return {record["task_id"] for record in self.iter_records()}

    def completed_count(self) -> int:
        return len(self.completed_ids())

    def append(self, records: List[Dict[str, object]]) -> None:
        """Durably append a batch of records (one fsync per batch).

        The batch is serialized *before* the file opens and written as a
        single buffer, so a KeyboardInterrupt landing inside this method
        either misses the batch entirely or writes it whole — it cannot
        leave a torn row mid-batch (a kill harder than SIGINT can still
        tear the final buffered write, which ``_repair_partial_tail``
        drops on the next load).
        """
        if not records:
            return
        payload = "".join(canonical_record(record) + "\n"
                          for record in records)
        with open(self.results_path, "a", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())

    # -- progress sidecar --------------------------------------------------
    def write_progress(self, progress: Dict[str, object]) -> None:
        """Atomically replace the progress sidecar.

        The engine rewrites this file after every chunk append while a
        concurrent ``campaign status`` (or the serve layer's
        ``/metrics`` endpoint) may be reading it — write-temp-then-
        ``os.replace`` guarantees a reader sees either the old or the
        new sidecar, never a half-written hybrid.
        """
        self._write_json(self.progress_path, progress)

    def load_progress(self) -> Optional[Dict[str, object]]:
        """The progress sidecar, or None when absent *or unreadable*.

        The sidecar is advisory — a missing file (campaign has never
        run under this build) or an unparsable one (torn by a pre-atomic
        writer, or a crash between create and replace) must never make
        ``status`` fail when the authoritative ``results.jsonl`` is
        fine.
        """
        if not self.progress_path.exists():
            return None
        try:
            with open(self.progress_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (json.JSONDecodeError, OSError):
            return None

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _write_json(path: Path, data: Dict[str, object]) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
