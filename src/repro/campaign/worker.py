"""Worker-side task execution (runs inside pool processes).

Everything here must be importable at module top level and take only
primitive (pickled dict) arguments: the engine ships chunks of task
dicts across the process boundary and gets result-record dicts back.

Records are **deterministic by construction** — no timestamps, host
names, or wall-clock fields — so a campaign's JSONL artifact is
byte-identical at any ``--jobs`` level.  Timing lives engine-side, in
the (non-authoritative) progress sidecar.

Per-task timeout: a genuinely wedged simulation cannot be interrupted
cooperatively, so the worker arms ``SIGALRM`` around each task (POSIX
only; a zero timeout disables the alarm).  A task that trips the alarm
is recorded as ``HUNG`` with ``timed_out=true`` rather than poisoning
the pool.
"""

import signal
import threading
from typing import Dict, List, Optional

from repro.chaos import chaos_point
from repro.core.config import MachineConfig
from repro.obs import trace as obs_trace
from repro.core.faults import (ARCH_FAULT_MODELS, fault_from_dict,
                               run_arch_fault_experiment,
                               run_fault_experiment_detailed)
from repro.core.machine import make_machine
from repro.isa.generator import generate_benchmark
from repro.isa.profiles import split_workload
from repro.isa.program import Program


class TaskTimeout(Exception):
    """Raised inside a worker when a task exceeds its wall-clock budget."""


def _alarm_handler(signum, frame):
    raise TaskTimeout()


def _program_for(workload: str, seed: int,
                 cache: Dict[tuple, Program]) -> Program:
    key = (workload, seed)
    if key not in cache:
        name, workload_seed = split_workload(workload)
        cache[key] = generate_benchmark(name, seed=workload_seed + seed)
    return cache[key]


def execute_task(task: Dict[str, object],
                 config: Optional[Dict[str, object]] = None,
                 _cache: Optional[Dict[tuple, Program]] = None,
                 _holder: Optional[List] = None) -> Dict[str, object]:
    """Run one injection and return its (deterministic) result record.

    ``_holder``, when given, receives the live machine right after
    construction so the SIGALRM timeout path can salvage the watchdog's
    last progress fingerprint from a wedged run.
    """
    program = _program_for(task["workload"], task["seed"],
                           _cache if _cache is not None else {})
    fault = fault_from_dict(task["fault"])
    if task["model"] in ARCH_FAULT_MODELS:
        # Architectural oracle: no machine, no warmup — the functional
        # executor pair classifies the site directly.
        report = run_arch_fault_experiment(
            program, fault, instructions=task["instructions"])
    else:
        machine_config = (MachineConfig.from_dict(config) if config
                          else MachineConfig())
        machine = make_machine(task["kind"], machine_config, [program])
        if _holder is not None:
            _holder.append(machine)
        report = run_fault_experiment_detailed(
            machine, program, fault,
            instructions=task["instructions"], warmup=task["warmup"])
    record = {
        "task_id": task["task_id"],
        "index": task["index"],
        "kind": task["kind"],
        "workload": task["workload"],
        "model": task["model"],
        "fault": task["fault"],
        "timed_out": False,
    }
    if task.get("predicted") is not None:
        record["predicted"] = task["predicted"]
    record.update(report.to_dict())
    return record


def _timed_out_record(task: Dict[str, object],
                      machine=None) -> Dict[str, object]:
    """Failure row for a task that tripped the wall-clock alarm.

    The row carries the watchdog's last progress fingerprint (queue
    occupancies, head-of-ROB blockers, stall counters) salvaged from the
    interrupted machine.  Timeout rows are the one deliberately
    nondeterministic record kind — they depend on wall-clock speed — so
    the extra forensic detail costs no reproducibility that was not
    already lost.
    """
    record = {
        "task_id": task["task_id"],
        "index": task["index"],
        "kind": task["kind"],
        "workload": task["workload"],
        "model": task["model"],
        "fault": task["fault"],
        "timed_out": True,
        "outcome": "hung",
        **({"predicted": task["predicted"]}
           if task.get("predicted") is not None else {}),
        "struck_cycle": None,
        "detected_cycle": None,
        "latency": None,
        "termination": "hung",
    }
    if machine is not None and machine.watchdog is not None:
        fingerprint = machine.watchdog.last_fingerprint
        if fingerprint is None:
            fingerprint = machine.watchdog.fingerprint(machine.now)
        record["fingerprint"] = fingerprint.to_dict()
    return record


def execute_chunk(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """Pool entry point: run a chunk of tasks, one record each.

    ``payload`` = ``{"tasks": [task dicts], "config": dict|None,
    "timeout": seconds}`` plus an ``"attempt"`` count the engine bumps
    each time it resubmits the chunk after a pool break — chaos rules
    key on it so an injected crash does not re-fire on the retry.  The
    per-process program cache means a chunk that stays within one
    workload pays benchmark generation once.
    """
    tasks: List[Dict[str, object]] = payload["tasks"]
    config = payload.get("config")
    timeout = int(payload.get("timeout") or 0)
    attempt = int(payload.get("attempt") or 0)
    # SIGALRM can only be armed from the main thread; in-process
    # execution on a serve executor thread silently loses the per-task
    # timeout (the scheduler's job-level timeout still applies there).
    use_alarm = (timeout > 0 and hasattr(signal, "SIGALRM")
                 and threading.current_thread() is threading.main_thread())
    cache: Dict[tuple, Program] = {}
    records: List[Dict[str, object]] = []
    # Adopt the engine's trace carry (shipped in the pickled payload)
    # so chunk/task spans nest under the campaign.run root even in a
    # spawned pool process.  The chunk span is infrastructure-shaped
    # (chaos recovery legitimately re-chunks work), so it is tagged
    # ``infra`` and stripped from normalized span logs; the per-task
    # spans are the semantic, byte-comparable record.
    with obs_trace.adopt(payload.get("trace")), \
         obs_trace.span("campaign.chunk",
                        key=str(tasks[0]["task_id"]) if tasks else None,
                        attempt=attempt, infra=True, tasks=len(tasks)):
        for task in tasks:
            # Infrastructure fault injection: a `crash` rule hard-kills
            # this worker (the engine rebuilds the pool and re-executes
            # the chunk), a `stall` rule simulates a slow/overloaded
            # host.
            chaos_point("campaign.worker.task", key=task["task_id"],
                        attempt=attempt)
            with obs_trace.span("campaign.task", key=task["task_id"]):
                if not use_alarm:
                    records.append(execute_task(task, config, cache))
                    continue
                holder: List = []
                previous = signal.signal(signal.SIGALRM, _alarm_handler)
                signal.alarm(timeout)
                try:
                    records.append(execute_task(task, config, cache, holder))
                except TaskTimeout:
                    records.append(_timed_out_record(
                        task, machine=holder[-1] if holder else None))
                finally:
                    signal.alarm(0)
                    signal.signal(signal.SIGALRM, previous)
    return records
