"""Campaign specification: what to inject, where, and how often.

A :class:`CampaignSpec` is the *complete* description of a statistical
fault-injection campaign: the cartesian strata (machine kinds ×
workloads × fault models), the number of injections drawn per stratum,
the measurement window, and the machine configuration.  Everything a
worker process needs is derivable from the spec plus a task index, so
the spec's canonical JSON is also the campaign's identity: its SHA-256
``content_hash`` keys the artifact store, and any change to a field
that could alter results invalidates previously collected records.
"""

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import MachineConfig
from repro.core.faults import ARCH_FAULT_MODELS, FAULT_MODELS
from repro.isa.profiles import split_workload
from repro.util.canonical import canonical_json, content_hash

#: Machine kinds a campaign may target (mirrors ``make_machine``);
#: ``arch`` runs the functional-executor oracle used by validate-avf.
CAMPAIGN_KINDS = ("base", "srt", "crt", "lockstep", "arch")

#: Site-sampling strategies (non-uniform ones need the AVF analyzer,
#: hence architectural models).
SAMPLING_MODES = ("uniform", "stratified", "guided")

#: Bump when the record schema or sampling procedure changes in a way
#: that makes old JSONL artifacts incomparable.
FORMAT_VERSION = 2


class CampaignConfigError(ValueError):
    """The spec is invalid, or conflicts with an existing artifact store."""


@dataclass
class CampaignSpec:
    """Declarative description of one fault-injection campaign."""

    kinds: Tuple[str, ...] = ("srt",)
    workloads: Tuple[str, ...] = ("gcc",)
    models: Tuple[str, ...] = ("transient-result",)
    #: Injections drawn per (kind × workload × model) stratum.
    injections: int = 100
    #: Root seed: drives both workload generation and site sampling.
    seed: int = 0
    instructions: int = 800
    warmup: int = 2000
    #: Strike-cycle window [lo, hi] for transient faults; ``None`` picks
    #: ``(50, max(200, instructions))``.
    strike_window: Optional[Tuple[int, int]] = None
    #: Full MachineConfig as a dict (``None`` = defaults).  Stored
    #: expanded so the content hash captures every knob.
    config: Optional[Dict[str, object]] = None
    #: Site-sampling strategy.  ``uniform`` draws i.i.d. sites;
    #: ``stratified`` alternates predicted-masked / predicted-ACE draws
    #: (validate-avf confusion matrices); ``guided`` skips sites the AVF
    #: analyzer proves masked (cheaper campaigns, reweighted coverage).
    sampling: str = "uniform"

    def __post_init__(self) -> None:
        self.kinds = tuple(self.kinds)
        self.workloads = tuple(self.workloads)
        self.models = tuple(self.models)
        if self.strike_window is not None:
            self.strike_window = tuple(self.strike_window)

    # -- validation --------------------------------------------------------
    def validate(self) -> "CampaignSpec":
        if not self.kinds or not self.workloads or not self.models:
            raise CampaignConfigError(
                "campaign needs at least one kind, workload, and model")
        for kind in self.kinds:
            if kind not in CAMPAIGN_KINDS:
                raise CampaignConfigError(
                    f"unknown machine kind {kind!r}; expected one of "
                    f"{sorted(CAMPAIGN_KINDS)}")
        for workload in self.workloads:
            try:
                split_workload(workload)
            except (KeyError, ValueError) as error:
                message = error.args[0] if error.args else str(error)
                raise CampaignConfigError(
                    f"bad workload: {message}") from None
        for model in self.models:
            if model not in FAULT_MODELS:
                raise CampaignConfigError(
                    f"unknown fault model {model!r}; expected one of "
                    f"{sorted(FAULT_MODELS)}")
        arch_models = [m for m in self.models if m in ARCH_FAULT_MODELS]
        if arch_models and len(arch_models) != len(self.models):
            raise CampaignConfigError(
                "architectural and machine fault models cannot be mixed "
                "in one campaign")
        if arch_models and tuple(self.kinds) != ("arch",):
            raise CampaignConfigError(
                "architectural fault models require kinds=('arch',)")
        if not arch_models and "arch" in self.kinds:
            raise CampaignConfigError(
                "kind 'arch' requires architectural fault models "
                f"({', '.join(ARCH_FAULT_MODELS)})")
        if self.sampling not in SAMPLING_MODES:
            raise CampaignConfigError(
                f"unknown sampling mode {self.sampling!r}; expected one "
                f"of {SAMPLING_MODES}")
        if self.sampling != "uniform" and not arch_models:
            raise CampaignConfigError(
                f"sampling={self.sampling!r} needs the AVF analyzer, "
                "which covers architectural fault models only")
        if self.injections <= 0:
            raise CampaignConfigError("injections must be positive")
        if self.instructions <= 0:
            raise CampaignConfigError("instructions must be positive")
        if self.warmup < 0:
            raise CampaignConfigError("warmup must be >= 0")
        lo, hi = self.effective_strike_window()
        if not (0 <= lo <= hi):
            raise CampaignConfigError(
                f"invalid strike window ({lo}, {hi})")
        if self.config is not None:
            MachineConfig.from_dict(self.config)  # raises on bad fields
        return self

    # -- derived -----------------------------------------------------------
    def effective_strike_window(self) -> Tuple[int, int]:
        if self.strike_window is not None:
            return self.strike_window
        return (50, max(200, self.instructions))

    def machine_config(self) -> MachineConfig:
        if self.config is None:
            return MachineConfig()
        return MachineConfig.from_dict(self.config)

    def strata(self) -> List[Tuple[str, str, str]]:
        """All (kind, workload, model) strata in canonical order."""
        return [(kind, workload, model)
                for kind in self.kinds
                for workload in self.workloads
                for model in self.models]

    def total_tasks(self) -> int:
        return len(self.strata()) * self.injections

    # -- serialization / identity ------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["kinds"] = list(self.kinds)
        data["workloads"] = list(self.workloads)
        data["models"] = list(self.models)
        if self.strike_window is not None:
            data["strike_window"] = list(self.strike_window)
        data["format_version"] = FORMAT_VERSION
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        payload = dict(data)
        version = payload.pop("format_version", FORMAT_VERSION)
        if version != FORMAT_VERSION:
            raise CampaignConfigError(
                f"campaign format v{version} is not readable by this "
                f"build (expected v{FORMAT_VERSION})")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise CampaignConfigError(
                f"unknown campaign fields: {unknown}")
        if payload.get("strike_window") is not None:
            payload["strike_window"] = tuple(payload["strike_window"])
        return cls(**payload)

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def content_hash(self) -> str:
        """Identity of the campaign: hash of every result-affecting field."""
        return content_hash(self.canonical_json())
