"""Statistical fault-injection campaign engine.

The scaling layer over :mod:`repro.core.faults`: where a single
``run_fault_experiment`` call answers "what happens when *this* fault
strikes?", a campaign answers "what fraction of faults does this
machine catch, with what confidence?" — thousands of stratified
injections fanned across worker processes, stored resumably, and
aggregated into coverage tables with Wilson confidence intervals.

Pipeline::

    CampaignSpec ──enumerate_tasks──▶ [InjectionTask...]
        │                                   │  ProcessPoolExecutor
        │ content_hash                      ▼  (repro.campaign.worker)
        ▼                             result records
    CampaignStore  ◀──in-order──  CampaignEngine
        │ results.jsonl
        ▼
    aggregate / coverage_table / latency_histograms  (repro.campaign.report)

See ``docs/CAMPAIGNS.md`` for the artifact format and resume semantics,
and ``python -m repro campaign --help`` for the CLI.
"""

from repro.campaign.engine import CampaignEngine, run_campaign
from repro.campaign.report import (aggregate, coverage_table,
                                   latency_histograms, latency_table,
                                   render_report, wilson_interval)
from repro.campaign.sampler import InjectionTask, enumerate_tasks
from repro.campaign.spec import (CAMPAIGN_KINDS, CampaignConfigError,
                                 CampaignSpec)
from repro.campaign.store import CampaignStore
from repro.campaign.worker import execute_chunk, execute_task

__all__ = [
    "CAMPAIGN_KINDS",
    "CampaignConfigError",
    "CampaignEngine",
    "CampaignSpec",
    "CampaignStore",
    "InjectionTask",
    "aggregate",
    "coverage_table",
    "enumerate_tasks",
    "execute_chunk",
    "execute_task",
    "latency_histograms",
    "latency_table",
    "render_report",
    "run_campaign",
    "wilson_interval",
]
