"""Campaign aggregation: coverage statistics and latency distributions.

Turns a store's JSONL records into the numbers the paper's Section 4.5
claims are made of:

- per-stratum outcome breakdowns (detected / masked / latent / SDC /
  hung counts);
- **coverage** — the fraction of *unmasked* faults that were detected —
  with a Wilson score interval, the right interval for proportions at
  the small-to-moderate sample sizes a campaign stratum yields (it never
  leaves [0, 1] and behaves at p→0/1, unlike the normal approximation);
- detection-latency histograms per machine kind (cycles from strike to
  the first fault event).

Tables render through :mod:`repro.harness.reporting` so campaign output
reads like every other experiment table in the repo.
"""

import math
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.core.faults import FaultOutcome
from repro.harness.experiments import ExperimentResult
from repro.harness.reporting import render_histogram, render_table
from repro.harness.tracing import Histogram

#: Outcomes where the fault provably propagated into visible state; the
#: coverage denominator (a masked fault is undetectable *by design* —
#: nothing wrong ever existed to detect).  RECOVERED / UNRECOVERABLE
#: imply a detection fired first, so they count as detected *and*
#: unmasked on recovery-enabled machines.
UNMASKED = (FaultOutcome.DETECTED, FaultOutcome.LATENT, FaultOutcome.SDC,
            FaultOutcome.HUNG, FaultOutcome.RECOVERED,
            FaultOutcome.UNRECOVERABLE)

#: Outcomes where output comparison raised a detection event.
DETECTED_LIKE = (FaultOutcome.DETECTED, FaultOutcome.RECOVERED,
                 FaultOutcome.UNRECOVERABLE)


def wilson_interval(successes: int, trials: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        return (0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    half = (z * math.sqrt(p * (1 - p) / trials
                          + z2 / (4 * trials * trials))) / denom
    return (max(0.0, center - half), min(1.0, center + half))


class StratumStats:
    """Accumulated outcomes of one (kind, workload) stratum."""

    def __init__(self) -> None:
        self.outcomes: Counter = Counter()
        self.terminations: Counter = Counter()
        self.latencies: List[int] = []
        self.recovery_latencies: List[int] = []
        self.timed_out = 0

    def add(self, record: Dict[str, object]) -> None:
        self.outcomes[record["outcome"]] += 1
        if record.get("termination"):
            self.terminations[record["termination"]] += 1
        if record.get("timed_out"):
            self.timed_out += 1
        if record.get("latency") is not None:
            self.latencies.append(record["latency"])
        if record.get("recovery_latency") is not None:
            self.recovery_latencies.append(record["recovery_latency"])

    @property
    def total(self) -> int:
        return sum(self.outcomes.values())

    @property
    def detected(self) -> int:
        return sum(self.outcomes.get(outcome.value, 0)
                   for outcome in DETECTED_LIKE)

    @property
    def unmasked(self) -> int:
        return sum(self.outcomes.get(outcome.value, 0)
                   for outcome in UNMASKED)

    def coverage(self) -> Tuple[float, float, float]:
        """(point estimate, ci_low, ci_high) of detected/unmasked."""
        if not self.unmasked:
            return (0.0, 0.0, 1.0)
        low, high = wilson_interval(self.detected, self.unmasked)
        return (self.detected / self.unmasked, low, high)


def aggregate(records: Iterable[Dict[str, object]]
              ) -> Dict[Tuple[str, str], StratumStats]:
    """Group records into per-(kind, workload) stratum statistics."""
    strata: Dict[Tuple[str, str], StratumStats] = defaultdict(StratumStats)
    for record in records:
        strata[(record["kind"], record["workload"])].add(record)
    return dict(strata)


def coverage_table(strata: Dict[Tuple[str, str], StratumStats]
                   ) -> ExperimentResult:
    """Outcome breakdown + Wilson-interval coverage, one row per stratum."""
    # Non-simulation outcomes (e.g. "infra-failure" rows quarantined by
    # the engine after repeated worker-pool kills) get their own column
    # when present: they count toward n but never toward coverage — the
    # fault was never injected, so they carry no detection evidence.
    extra = sorted({value for stats in strata.values()
                    for value in stats.outcomes}
                   - {outcome.value for outcome in FaultOutcome})
    series = ([outcome.value for outcome in FaultOutcome] + extra
              + ["n", "coverage", "ci_low", "ci_high"])
    result = ExperimentResult(
        "campaign", "Fault outcomes and detection coverage "
        "(coverage = detected / unmasked, 95% Wilson CI)", series=series)
    for (kind, workload), stats in sorted(strata.items()):
        point, low, high = stats.coverage()
        row: Dict[str, float] = {
            outcome.value: stats.outcomes.get(outcome.value, 0)
            for outcome in FaultOutcome}
        row.update({value: stats.outcomes.get(value, 0)
                    for value in extra})
        row.update({"n": stats.total, "coverage": point,
                    "ci_low": low, "ci_high": high})
        result.add_row(f"{kind}/{workload}", row)
    return result.finish()


def termination_table(strata: Dict[Tuple[str, str], StratumStats]
                      ) -> ExperimentResult:
    """How runs *ended*, one row per stratum (``--by-termination``).

    Orthogonal to the outcome taxonomy: a DETECTED fault usually still
    ends ``done`` (detection-only machines keep running), while ``hung``
    / ``livelock`` rows carry watchdog forensics and ``recovered`` /
    ``unrecoverable`` only occur with ``recovery_enabled`` configs.
    """
    from repro.core.metrics import Termination

    order = [termination.value for termination in Termination]
    seen = {value for stats in strata.values()
            for value in stats.terminations}
    series = ([value for value in order if value in seen]
              + sorted(seen - set(order)) + ["timed-out", "n"])
    result = ExperimentResult(
        "campaign_termination",
        "Run terminations per stratum (watchdog/recovery verdicts)",
        series=series)
    for (kind, workload), stats in sorted(strata.items()):
        row = {value: stats.terminations.get(value, 0)
               for value in series if value not in ("timed-out", "n")}
        row["timed-out"] = stats.timed_out
        row["n"] = stats.total
        result.add_row(f"{kind}/{workload}", row)
    return result.finish()


def recovery_table(strata: Dict[Tuple[str, str], StratumStats]
                   ) -> ExperimentResult:
    """Recovery-latency summary per machine kind (recovered runs only)."""
    by_kind: Dict[str, List[int]] = defaultdict(list)
    for (kind, _), stats in strata.items():
        by_kind[kind].extend(stats.recovery_latencies)
    result = ExperimentResult(
        "campaign_recovery",
        "Recovery latency (cycles, rollback→replay caught up)",
        series=["recovered", "mean", "max"])
    for kind in sorted(by_kind):
        latencies = by_kind[kind]
        result.add_row(kind, {
            "recovered": len(latencies),
            "mean": (sum(latencies) / len(latencies)) if latencies else 0.0,
            "max": max(latencies) if latencies else 0,
        })
    return result.finish()


def latency_table(strata: Dict[Tuple[str, str], StratumStats]
                  ) -> ExperimentResult:
    """Detection-latency summary per machine kind."""
    by_kind: Dict[str, List[int]] = defaultdict(list)
    for (kind, _), stats in strata.items():
        by_kind[kind].extend(stats.latencies)
    result = ExperimentResult(
        "campaign_latency", "Detection latency (cycles, strike→detect)",
        series=["detected", "mean", "p50", "p90", "max"])
    for kind in sorted(by_kind):
        latencies = sorted(by_kind[kind])
        if latencies:
            def pct(fraction: float) -> int:
                rank = min(len(latencies) - 1,
                           int(fraction * len(latencies)))
                return latencies[rank]
            result.add_row(kind, {
                "detected": len(latencies),
                "mean": sum(latencies) / len(latencies),
                "p50": pct(0.50), "p90": pct(0.90),
                "max": latencies[-1],
            })
        else:
            result.add_row(kind, {"detected": 0, "mean": 0.0,
                                  "p50": 0, "p90": 0, "max": 0})
    return result.finish()


def latency_histograms(strata: Dict[Tuple[str, str], StratumStats],
                       bucket_width: int = 64) -> Dict[str, Histogram]:
    """Per-kind detection-latency histograms."""
    by_kind: Dict[str, Histogram] = {}
    for (kind, _), stats in sorted(strata.items()):
        histogram = by_kind.setdefault(kind,
                                       Histogram(bucket_width=bucket_width))
        for latency in stats.latencies:
            histogram.add(latency)
    return by_kind


# ---------------------------------------------------------------------------
# AVF cross-validation (``campaign report --vs-avf`` / ``validate-avf``)
# ---------------------------------------------------------------------------

#: Observed outcomes that *falsify* a masked prediction: the fault
#: provably crossed the sphere of replication.
FALSE_MASKED_OUTCOMES = (FaultOutcome.DETECTED.value, FaultOutcome.SDC.value)


def _predicted_group(record: Dict[str, object]) -> str:
    from repro.avf.analyzer import MASKED_CLASSES

    predicted = record.get("predicted")
    if predicted is None:
        return ""
    return "masked" if predicted in MASKED_CLASSES else "ace"


def false_masked_records(records: Iterable[Dict[str, object]]
                         ) -> List[Dict[str, object]]:
    """Records that violate the analyzer's soundness contract."""
    return [record for record in records
            if _predicted_group(record) == "masked"
            and record["outcome"] in FALSE_MASKED_OUTCOMES]


def confusion_table(records: List[Dict[str, object]]) -> ExperimentResult:
    """Predicted (masked/ace) × observed outcome counts per stratum."""
    cells: Dict[Tuple[str, str], Counter] = defaultdict(Counter)
    for record in records:
        group = _predicted_group(record)
        if not group:
            continue
        observed = ("detected" if record["outcome"] in FALSE_MASKED_OUTCOMES
                    else "masked" if record["outcome"]
                    == FaultOutcome.MASKED.value else "latent")
        cells[(record["workload"], record["model"])][
            (group, observed)] += 1
    series = ["msk>det", "msk>msk", "msk>lat",
              "ace>det", "ace>msk", "ace>lat", "false-masked", "n"]
    result = ExperimentResult(
        "campaign_vs_avf",
        "Confusion matrix: static AVF prediction vs injection outcome "
        "(msk>det would be a soundness violation)", series=series)
    for (workload, model), counter in sorted(cells.items()):
        row = {
            "msk>det": counter[("masked", "detected")],
            "msk>msk": counter[("masked", "masked")],
            "msk>lat": counter[("masked", "latent")],
            "ace>det": counter[("ace", "detected")],
            "ace>msk": counter[("ace", "masked")],
            "ace>lat": counter[("ace", "latent")],
        }
        row["false-masked"] = row["msk>det"]
        row["n"] = sum(counter.values())
        result.add_row(f"{workload}/{model}", row)
    return result.finish()


def class_rate_table(records: List[Dict[str, object]]) -> ExperimentResult:
    """Observed detection rate per predicted class, with Wilson CIs."""
    from repro.avf.analyzer import ALL_CLASSES

    totals: Dict[Tuple[str, str, str], List[int]] = defaultdict(
        lambda: [0, 0])
    for record in records:
        predicted = record.get("predicted")
        if predicted is None:
            continue
        key = (record["workload"], record["model"], predicted)
        totals[key][0] += 1
        if record["outcome"] in FALSE_MASKED_OUTCOMES:
            totals[key][1] += 1
    result = ExperimentResult(
        "campaign_avf_classes",
        "Detection rate per predicted masking class (95% Wilson CI)",
        series=["n", "detected", "rate", "ci_low", "ci_high"])
    class_order = {cls: index for index, cls in enumerate(ALL_CLASSES)}
    for key in sorted(totals,
                      key=lambda k: (k[0], k[1], class_order.get(k[2], 99))):
        n, detected = totals[key]
        low, high = wilson_interval(detected, n)
        result.add_row("/".join(key), {
            "n": n, "detected": detected,
            "rate": detected / n if n else 0.0,
            "ci_low": low, "ci_high": high,
        })
    return result.finish()


def adjusted_detection_table(records: List[Dict[str, object]],
                             fractions: Dict[Tuple[str, str],
                                             Dict[str, float]]
                             ) -> ExperimentResult:
    """Universe-reweighted P(detected) per stratum.

    Guided/stratified samples are deliberately biased by predicted
    class; the unbiased detection probability over the whole site
    universe is recovered as ``sum_cls frac(cls) * rate(cls)`` using the
    analyzer's *exact* class fractions.  Classes with no samples
    contribute their soundness bound: statically-masked classes are
    provably undetectable (rate 0); an unsampled ACE class widens the
    interval to its full weight.  This is what makes ``--guided`` safe:
    skipping proven-masked sites changes the sampling, not the estimate.
    """
    from repro.avf.analyzer import ALL_CLASSES, MASKED_CLASSES

    per_class: Dict[Tuple[str, str, str], List[int]] = defaultdict(
        lambda: [0, 0])
    for record in records:
        predicted = record.get("predicted")
        if predicted is None:
            continue
        key = (record["workload"], record["model"], predicted)
        per_class[key][0] += 1
        if record["outcome"] in FALSE_MASKED_OUTCOMES:
            per_class[key][1] += 1
    result = ExperimentResult(
        "campaign_avf_adjusted",
        "AVF-reweighted detection probability over the full site "
        "universe (exact class fractions x per-class Wilson CIs)",
        series=["samples", "point", "ci_low", "ci_high", "ace_frac"])
    for (workload, model), class_fracs in sorted(fractions.items()):
        point = low = high = 0.0
        samples = 0
        for cls in ALL_CLASSES:
            frac = class_fracs.get(cls, 0.0)
            if frac <= 0.0:
                continue
            n, detected = per_class.get((workload, model, cls), (0, 0))
            samples += n
            if cls in MASKED_CLASSES and detected == 0:
                # Soundness bound: a statically-masked class detects with
                # probability exactly 0 (the property test enforces it),
                # so no Wilson widening — sampled or not.
                rate = cls_low = cls_high = 0.0
            elif n:
                rate = detected / n
                cls_low, cls_high = wilson_interval(detected, n)
            else:
                rate, cls_low, cls_high = 0.0, 0.0, 1.0
            point += frac * rate
            low += frac * cls_low
            high += frac * cls_high
        ace_frac = 1.0 - sum(class_fracs.get(cls, 0.0)
                             for cls in MASKED_CLASSES)
        result.add_row(f"{workload}/{model}", {
            "samples": samples, "point": point,
            "ci_low": low, "ci_high": min(1.0, high),
            "ace_frac": ace_frac,
        })
    return result.finish()


def render_vs_avf(records: List[Dict[str, object]],
                  fractions: Dict[Tuple[str, str],
                                  Dict[str, float]] = None) -> str:
    """The ``--vs-avf`` cross-view: confusion matrix + class rates.

    ``fractions`` (per (workload, model) exact class fractions from
    :meth:`repro.avf.sites.SiteUniverse.class_fractions`) additionally
    enables the universe-reweighted detection table.
    """
    tagged = [record for record in records
              if record.get("predicted") is not None]
    if not tagged:
        return ("(no AVF-tagged records — run an architectural campaign "
                "with sampling=stratified/guided or validate-avf)")
    sections = [render_table(confusion_table(tagged)),
                render_table(class_rate_table(tagged))]
    if fractions:
        sections.append(render_table(
            adjusted_detection_table(tagged, fractions)))
    violations = false_masked_records(tagged)
    verdict = (f"SOUNDNESS VIOLATION: {len(violations)} predicted-masked "
               "site(s) were detected"
               if violations else
               "soundness: 0 false-masked sites "
               f"({sum(1 for r in tagged if _predicted_group(r) == 'masked')}"
               " predicted-masked injections)")
    sections.append(verdict)
    return "\n\n".join(sections)


def render_report(records: List[Dict[str, object]],
                  bucket_width: int = 64,
                  by_termination: bool = False) -> str:
    """The full ``campaign report`` text output.

    ``by_termination`` appends the termination breakdown (and, when any
    run recovered, the recovery-latency summary).
    """
    if not records:
        return "(no records yet — run the campaign first)"
    strata = aggregate(records)
    sections = [render_table(coverage_table(strata)),
                render_table(latency_table(strata))]
    if by_termination:
        sections.append(render_table(termination_table(strata)))
        if any(stats.recovery_latencies for stats in strata.values()):
            sections.append(render_table(recovery_table(strata)))
    for kind, histogram in latency_histograms(strata, bucket_width).items():
        if histogram.total:
            sections.append(render_histogram(
                f"{kind}: detection latency (cycles)", histogram))
    return "\n\n".join(sections)
