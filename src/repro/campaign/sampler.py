"""Fault-site enumeration and stratified sampling.

The sampler turns a :class:`~repro.campaign.spec.CampaignSpec` into a
flat list of :class:`InjectionTask` descriptors — one per injection —
by drawing fault sites uniformly within each (machine kind × workload ×
fault model) stratum.  Stratification is what makes small campaigns
statistically useful: every stratum receives exactly ``injections``
draws instead of whatever a global uniform draw happens to allot.

Determinism contract: each task's site is drawn from an RNG spawned
(:meth:`repro.util.rng.DeterministicRng.spawn`) with the stratum and
draw index as the key.  No sampling state is shared between draws, so
the task list is a pure function of the spec — identical no matter how
many worker processes later execute it, and identical when only a
subset is re-enumerated on resume.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.campaign.spec import CampaignSpec
from repro.core.faults import ARCH_FAULT_MODELS
from repro.isa.instructions import FuClass
from repro.pipeline.ebox import POOL_SIZES
from repro.util.rng import DeterministicRng, seed_from

#: Register indices below this are hot architectural territory in every
#: generated program; sampling the whole physical file would mostly hit
#: dead registers and tell us nothing.  (The mapper hands out physical
#: registers from the low end.)
_MIN_INTERESTING_REG = 32

#: Fault-model names understood by the sampler, with the FU pools that
#: stuck-unit faults may target (MEM/FP corruption routes through the
#: LVQ/cache paths that are outside the sphere of replication).
_STUCK_POOLS = (FuClass.INT, FuClass.LOGIC)


@dataclass(frozen=True)
class InjectionTask:
    """Pickle-safe descriptor of one injection (primitives only)."""

    task_id: str
    index: int
    kind: str
    workload: str
    model: str
    fault: Tuple[Tuple[str, object], ...]
    seed: int
    instructions: int
    warmup: int
    #: Static AVF class of the site ("ace", "dead", ...) for
    #: architectural models sampled under stratified/guided modes;
    #: ``None`` when the analyzer was not consulted.
    predicted: Optional[str] = None

    def fault_dict(self) -> Dict[str, object]:
        return dict(self.fault)

    def to_dict(self) -> Dict[str, object]:
        return {
            "task_id": self.task_id,
            "index": self.index,
            "kind": self.kind,
            "workload": self.workload,
            "model": self.model,
            "fault": self.fault_dict(),
            "seed": self.seed,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "predicted": self.predicted,
        }


def cores_for(kind: str) -> Tuple[int, ...]:
    """Cores a fault may strike: both cores of the CMP machines."""
    return (0, 1) if kind in ("crt", "lockstep") else (0,)


def _sample_site(rng: DeterministicRng, model: str, kind: str,
                 spec: CampaignSpec) -> Dict[str, object]:
    """Draw one fault site as a plain dict (``fault_from_dict`` format)."""
    lo, hi = spec.effective_strike_window()
    core_index = rng.choice(cores_for(kind))
    if model == "transient-result":
        return {
            "model": model,
            "cycle": rng.randint(lo, hi),
            "core_index": core_index,
            "bit": rng.randint(0, 63),
            "thread": None,
            "target_loads": False,
        }
    if model == "transient-register":
        phys = spec.machine_config().core.physical_registers
        return {
            "model": model,
            "cycle": rng.randint(lo, hi),
            "core_index": core_index,
            "reg": rng.randint(_MIN_INTERESTING_REG, phys - 1),
            "bit": rng.randint(0, 63),
        }
    if model == "stuck-unit":
        fu_class = rng.choice(_STUCK_POOLS)
        return {
            "model": model,
            "core_index": core_index,
            "fu_class": fu_class.value,
            "unit_index": rng.randint(0, POOL_SIZES[fu_class] - 1),
            "bit": rng.randint(0, 63),
        }
    raise ValueError(f"sampler has no site model for {model!r}")


#: Rejection-sampling attempt budget for stratified/guided draws.  A
#: stratum with a vanishing target class falls back to the last draw
#: (still uniform within the universe) rather than spinning forever.
_REJECTION_BUDGET = 256


def _sample_arch_site(rng: DeterministicRng, model: str, workload: str,
                      spec: CampaignSpec, draw: int
                      ) -> Tuple[Dict[str, object], str]:
    """Draw one architectural site plus its predicted AVF class.

    ``stratified`` alternates the wanted class (masked on even draws,
    ACE on odd) so confusion matrices get balanced evidence for both
    sides of the soundness contract; ``guided`` rejects sites the
    analyzer proves masked, so every injection spent is a potentially
    informative one.  Both are plain rejection sampling, so within the
    accepted class the distribution stays uniform.
    """
    from repro.avf.analyzer import MASKED_CLASSES
    from repro.avf.sites import get_universe

    universe = get_universe(workload, spec.instructions, seed=spec.seed)
    want_masked: Optional[bool] = None
    if spec.sampling == "stratified":
        want_masked = draw % 2 == 0
    elif spec.sampling == "guided":
        want_masked = False
    site = universe.sample(rng, model)
    predicted = universe.classify(model, site)
    if want_masked is not None:
        for _ in range(_REJECTION_BUDGET):
            if (predicted in MASKED_CLASSES) == want_masked:
                break
            site = universe.sample(rng, model)
            predicted = universe.classify(model, site)
    fault: Dict[str, object] = {"model": model}
    fault.update(site)
    return fault, predicted


def _task_id(spec_hash: str, index: int) -> str:
    """Stable short id: same spec + index ⇒ same id across runs."""
    return format(seed_from("task", spec_hash, index), "016x")


def enumerate_tasks(spec: CampaignSpec) -> List[InjectionTask]:
    """The campaign's full task list, in canonical (stratum, draw) order."""
    spec.validate()
    spec_hash = spec.content_hash()
    root = DeterministicRng("campaign", spec.seed)
    tasks: List[InjectionTask] = []
    index = 0
    for kind, workload, model in spec.strata():
        for draw in range(spec.injections):
            rng = root.spawn(kind, workload, model, draw)
            predicted = None
            if model in ARCH_FAULT_MODELS:
                fault, predicted = _sample_arch_site(rng, model, workload,
                                                     spec, draw)
            else:
                fault = _sample_site(rng, model, kind, spec)
            tasks.append(InjectionTask(
                task_id=_task_id(spec_hash, index),
                index=index,
                kind=kind,
                workload=workload,
                model=model,
                fault=tuple(sorted(fault.items())),
                seed=spec.seed,
                instructions=spec.instructions,
                warmup=spec.warmup,
                predicted=predicted,
            ))
            index += 1
    return tasks
