"""Fault-site enumeration and stratified sampling.

The sampler turns a :class:`~repro.campaign.spec.CampaignSpec` into a
flat list of :class:`InjectionTask` descriptors — one per injection —
by drawing fault sites uniformly within each (machine kind × workload ×
fault model) stratum.  Stratification is what makes small campaigns
statistically useful: every stratum receives exactly ``injections``
draws instead of whatever a global uniform draw happens to allot.

Determinism contract: each task's site is drawn from an RNG spawned
(:meth:`repro.util.rng.DeterministicRng.spawn`) with the stratum and
draw index as the key.  No sampling state is shared between draws, so
the task list is a pure function of the spec — identical no matter how
many worker processes later execute it, and identical when only a
subset is re-enumerated on resume.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.campaign.spec import CampaignSpec
from repro.isa.instructions import FuClass
from repro.pipeline.ebox import POOL_SIZES
from repro.util.rng import DeterministicRng, seed_from

#: Register indices below this are hot architectural territory in every
#: generated program; sampling the whole physical file would mostly hit
#: dead registers and tell us nothing.  (The mapper hands out physical
#: registers from the low end.)
_MIN_INTERESTING_REG = 32

#: Fault-model names understood by the sampler, with the FU pools that
#: stuck-unit faults may target (MEM/FP corruption routes through the
#: LVQ/cache paths that are outside the sphere of replication).
_STUCK_POOLS = (FuClass.INT, FuClass.LOGIC)


@dataclass(frozen=True)
class InjectionTask:
    """Pickle-safe descriptor of one injection (primitives only)."""

    task_id: str
    index: int
    kind: str
    workload: str
    model: str
    fault: Tuple[Tuple[str, object], ...]
    seed: int
    instructions: int
    warmup: int

    def fault_dict(self) -> Dict[str, object]:
        return dict(self.fault)

    def to_dict(self) -> Dict[str, object]:
        return {
            "task_id": self.task_id,
            "index": self.index,
            "kind": self.kind,
            "workload": self.workload,
            "model": self.model,
            "fault": self.fault_dict(),
            "seed": self.seed,
            "instructions": self.instructions,
            "warmup": self.warmup,
        }


def cores_for(kind: str) -> Tuple[int, ...]:
    """Cores a fault may strike: both cores of the CMP machines."""
    return (0, 1) if kind in ("crt", "lockstep") else (0,)


def _sample_site(rng: DeterministicRng, model: str, kind: str,
                 spec: CampaignSpec) -> Dict[str, object]:
    """Draw one fault site as a plain dict (``fault_from_dict`` format)."""
    lo, hi = spec.effective_strike_window()
    core_index = rng.choice(cores_for(kind))
    if model == "transient-result":
        return {
            "model": model,
            "cycle": rng.randint(lo, hi),
            "core_index": core_index,
            "bit": rng.randint(0, 63),
            "thread": None,
            "target_loads": False,
        }
    if model == "transient-register":
        phys = spec.machine_config().core.physical_registers
        return {
            "model": model,
            "cycle": rng.randint(lo, hi),
            "core_index": core_index,
            "reg": rng.randint(_MIN_INTERESTING_REG, phys - 1),
            "bit": rng.randint(0, 63),
        }
    if model == "stuck-unit":
        fu_class = rng.choice(_STUCK_POOLS)
        return {
            "model": model,
            "core_index": core_index,
            "fu_class": fu_class.value,
            "unit_index": rng.randint(0, POOL_SIZES[fu_class] - 1),
            "bit": rng.randint(0, 63),
        }
    raise ValueError(f"sampler has no site model for {model!r}")


def _task_id(spec_hash: str, index: int) -> str:
    """Stable short id: same spec + index ⇒ same id across runs."""
    return format(seed_from("task", spec_hash, index), "016x")


def enumerate_tasks(spec: CampaignSpec) -> List[InjectionTask]:
    """The campaign's full task list, in canonical (stratum, draw) order."""
    spec.validate()
    spec_hash = spec.content_hash()
    root = DeterministicRng("campaign", spec.seed)
    tasks: List[InjectionTask] = []
    index = 0
    for kind, workload, model in spec.strata():
        for draw in range(spec.injections):
            rng = root.spawn(kind, workload, model, draw)
            fault = _sample_site(rng, model, kind, spec)
            tasks.append(InjectionTask(
                task_id=_task_id(spec_hash, index),
                index=index,
                kind=kind,
                workload=workload,
                model=model,
                fault=tuple(sorted(fault.items())),
                seed=spec.seed,
                instructions=spec.instructions,
                warmup=spec.warmup,
            ))
            index += 1
    return tasks
