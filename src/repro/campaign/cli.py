"""``python -m repro campaign`` — run/resume/status/report subcommands.

Examples::

    python -m repro campaign run --out runs/srt --kinds srt,crt \\
        --workloads gcc,swim --models transient-result,stuck-unit \\
        --injections 250 --jobs 8
    python -m repro campaign status --out runs/srt
    python -m repro campaign resume --out runs/srt --jobs 8
    python -m repro campaign report --out runs/srt
"""

import argparse
import sys
from typing import List, Optional

from repro.campaign.engine import CampaignEngine
from repro.campaign.spec import (CAMPAIGN_KINDS, CampaignConfigError,
                                 CampaignSpec)
from repro.campaign.store import CampaignStore
from repro.core.faults import FAULT_MODELS
from repro.isa.profiles import SPEC95_NAMES


def _csv(text: str) -> List[str]:
    items = [item.strip() for item in text.split(",") if item.strip()]
    if not items:
        raise argparse.ArgumentTypeError("expected a comma-separated list")
    return items


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Parallel, resumable statistical fault-injection "
                    "campaigns")
    sub = parser.add_subparsers(dest="subcommand", required=True)

    def add_out(p):
        p.add_argument("--out", required=True,
                       help="campaign artifact directory")

    def add_exec(p):
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process)")
        p.add_argument("--timeout", type=int, default=0,
                       help="per-task wall-clock timeout in seconds "
                            "(0 = unlimited; timed-out tasks record HUNG)")
        p.add_argument("--chunk", type=int, default=None,
                       help="tasks per worker chunk (default: auto)")
        p.add_argument("--chaos", metavar="PLAN.json", default=None,
                       help="arm a chaos fault-injection plan for this "
                            "run (see `python -m repro chaos plan`)")

    run = sub.add_parser("run", help="start (or continue) a campaign")
    add_out(run)
    add_exec(run)
    run.add_argument("--kinds", type=_csv, default=["srt"],
                     help=f"machine kinds ({','.join(CAMPAIGN_KINDS)})")
    run.add_argument("--workloads", type=_csv, default=["gcc"],
                     help=f"benchmarks ({','.join(SPEC95_NAMES)})")
    run.add_argument("--models", type=_csv, default=["transient-result"],
                     help=f"fault models ({','.join(sorted(FAULT_MODELS))})")
    run.add_argument("--injections", type=int, default=100,
                     help="injections per kind x workload x model stratum")
    run.add_argument("--instructions", type=int, default=800,
                     help="committed instructions per injection run")
    run.add_argument("--warmup", type=int, default=2000,
                     help="architectural warm-up instructions")
    run.add_argument("--seed", type=int, default=0,
                     help="campaign root seed")
    run.add_argument("--strike-window", type=_csv, default=None,
                     metavar="LO,HI", help="strike-cycle window")
    run.add_argument("--recovery", action="store_true",
                     help="run injections on recovery-enabled machines "
                          "(checkpoint + rollback-and-replay)")
    run.add_argument("--sampling", choices=("uniform", "stratified",
                                            "guided"), default="uniform",
                     help="site sampling: uniform draws; stratified "
                          "alternates predicted-masked/ACE (arch models "
                          "only); guided skips statically-proven-masked "
                          "sites")
    run.add_argument("--fresh", action="store_true",
                     help="discard records from a different config")

    validate = sub.add_parser(
        "validate-avf",
        help="cross-validate the static AVF analyzer against the "
             "architectural injection oracle (confusion matrix; exits "
             "nonzero on any false-masked site)")
    add_out(validate)
    add_exec(validate)
    validate.add_argument("--workloads", type=_csv, default=["gcc"],
                          help="benchmarks, optionally name@seed")
    validate.add_argument("--seeds", type=int, default=1,
                          help="generator seeds per workload (expands "
                               "each into name@0..N-1)")
    validate.add_argument("--models", type=_csv, default=None,
                          help="architectural fault models (default: "
                               "all three)")
    validate.add_argument("--injections", type=int, default=60,
                          help="injections per workload x model stratum")
    validate.add_argument("--instructions", type=int, default=800,
                          help="step horizon (analysis and oracle)")
    validate.add_argument("--seed", type=int, default=0,
                          help="campaign root seed")
    validate.add_argument("--guided", action="store_true",
                          help="use guided sampling (skip proven-masked "
                               "sites) instead of stratified")
    validate.add_argument("--fresh", action="store_true",
                          help="discard records from a different config")

    resume = sub.add_parser(
        "resume", help="continue a killed/partial campaign from its "
                       "manifest (no spec flags needed)")
    add_out(resume)
    add_exec(resume)

    status = sub.add_parser("status", help="show campaign progress")
    add_out(status)

    report = sub.add_parser("report",
                            help="aggregate records into coverage tables")
    add_out(report)
    report.add_argument("--bucket-width", type=int, default=64,
                        help="latency histogram bucket width (cycles)")
    report.add_argument("--by-termination", action="store_true",
                        help="append the termination breakdown "
                             "(done/cycle-limit/hung/livelock/recovered/"
                             "unrecoverable) and recovery-latency summary")
    report.add_argument("--vs-avf", action="store_true",
                        help="render the AVF cross-view instead: "
                             "confusion matrix, per-class detection "
                             "rates, universe-reweighted coverage "
                             "(exits 1 on any false-masked site)")
    return parser


def _progress_printer(stream):
    def progress(done: int, total: int) -> None:
        print(f"  {done}/{total} injections complete", file=stream)
    return progress


def _print_summary(summary) -> None:
    print(f"campaign {summary['campaign_hash']}: "
          f"{summary['executed']} executed "
          f"(+{summary['already_complete']} resumed) of "
          f"{summary['total_tasks']} total "
          f"[jobs={summary['jobs']}, {summary['elapsed_s']}s]")


def cmd_run(args: argparse.Namespace) -> int:
    window = None
    if args.strike_window is not None:
        if len(args.strike_window) != 2:
            print("error: --strike-window expects LO,HI", file=sys.stderr)
            return 2
        window = (int(args.strike_window[0]), int(args.strike_window[1]))
    spec = CampaignSpec(
        kinds=tuple(args.kinds), workloads=tuple(args.workloads),
        models=tuple(args.models), injections=args.injections,
        seed=args.seed, instructions=args.instructions,
        warmup=args.warmup, strike_window=window,
        config={"recovery_enabled": True} if args.recovery else None,
        sampling=args.sampling)
    engine = CampaignEngine(spec, args.out, jobs=args.jobs,
                            task_timeout=args.timeout,
                            chunk_size=args.chunk)
    summary = engine.run(fresh=args.fresh,
                         progress=_progress_printer(sys.stdout))
    _print_summary(summary)
    return 0


def _avf_fractions(spec: CampaignSpec):
    """Exact per-(workload, model) class fractions for arch strata."""
    from repro.avf.sites import get_universe
    from repro.core.faults import ARCH_FAULT_MODELS

    fractions = {}
    for workload in spec.workloads:
        for model in spec.models:
            if model in ARCH_FAULT_MODELS:
                universe = get_universe(workload, spec.instructions,
                                        seed=spec.seed)
                fractions[(workload, model)] = (
                    universe.class_fractions(model))
    return fractions


def _expand_workloads(workloads: List[str], seeds: int) -> List[str]:
    from repro.isa.profiles import split_workload

    expanded = []
    for workload in workloads:
        name, base = split_workload(workload)
        for offset in range(max(1, seeds)):
            seed = base + offset
            expanded.append(f"{name}@{seed}" if seed else name)
    return expanded


def cmd_validate_avf(args: argparse.Namespace) -> int:
    from repro.campaign.report import false_masked_records, render_vs_avf
    from repro.core.faults import ARCH_FAULT_MODELS

    models = tuple(args.models) if args.models else ARCH_FAULT_MODELS
    try:
        workloads = tuple(_expand_workloads(args.workloads, args.seeds))
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    spec = CampaignSpec(
        kinds=("arch",), workloads=workloads, models=models,
        injections=args.injections, seed=args.seed,
        instructions=args.instructions, warmup=0,
        sampling="guided" if args.guided else "stratified")
    engine = CampaignEngine(spec, args.out, jobs=args.jobs,
                            task_timeout=args.timeout,
                            chunk_size=args.chunk)
    summary = engine.run(fresh=args.fresh,
                         progress=_progress_printer(sys.stdout))
    _print_summary(summary)
    store = CampaignStore(args.out)
    records = store.records()
    print()
    print(render_vs_avf(records, _avf_fractions(spec)))
    return 1 if false_masked_records(records) else 0


def cmd_resume(args: argparse.Namespace) -> int:
    store = CampaignStore(args.out)
    spec = store.load_spec()
    engine = CampaignEngine(spec, args.out, jobs=args.jobs,
                            task_timeout=args.timeout,
                            chunk_size=args.chunk)
    summary = engine.run(progress=_progress_printer(sys.stdout))
    _print_summary(summary)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    store = CampaignStore(args.out)
    manifest = store.load_manifest()
    spec = CampaignSpec.from_dict(manifest["spec"])
    done = store.completed_count()
    total = manifest.get("total_tasks", spec.total_tasks())
    print(f"campaign   {manifest['campaign_hash']}")
    print(f"strata     {len(spec.strata())} "
          f"({'+'.join(spec.kinds)} x {'+'.join(spec.workloads)} x "
          f"{'+'.join(spec.models)})")
    print(f"progress   {done}/{total} injections "
          f"({100.0 * done / total if total else 0.0:.1f}%)")
    progress = store.load_progress()
    if progress is None:
        print("sidecar    none yet (progress.json is advisory; counts "
              "above come from results.jsonl)")
    elif progress.get("state") == "running":
        print(f"sidecar    running at jobs={progress['jobs']} "
              f"({progress['done']}/{progress['total_tasks']} at last "
              f"chunk flush)")
    elif progress.get("tasks_per_s"):
        print(f"last rate  {progress['tasks_per_s']} tasks/s "
              f"at jobs={progress['jobs']}")
    print("state      " + ("complete" if done >= total else "resumable"))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.campaign.report import (false_masked_records, render_report,
                                       render_vs_avf)

    store = CampaignStore(args.out)
    manifest = store.load_manifest()  # fail loudly on a non-campaign dir
    records = store.records()
    if args.vs_avf:
        spec = CampaignSpec.from_dict(manifest["spec"])
        print(render_vs_avf(records, _avf_fractions(spec)))
        return 1 if false_masked_records(records) else 0
    print(render_report(records, bucket_width=args.bucket_width,
                        by_termination=args.by_termination))
    return 0


def _arm_chaos(path: str) -> int:
    """Arm the chaos plan at ``path`` process-wide; returns exit code."""
    from repro.chaos import ChaosPlan, ChaosPlanError, arm

    try:
        plan = ChaosPlan.load(path)
    except (OSError, ChaosPlanError) as error:
        print(f"error: bad chaos plan {path}: {error}", file=sys.stderr)
        return 2
    arm(plan)
    print(f"chaos: armed {len(plan.rules)} rule(s) from {path} "
          f"(seed {plan.seed})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"run": cmd_run, "resume": cmd_resume,
                "status": cmd_status, "report": cmd_report,
                "validate-avf": cmd_validate_avf}
    if getattr(args, "chaos", None):
        code = _arm_chaos(args.chaos)
        if code:
            return code
    try:
        return handlers[args.subcommand](args)
    except CampaignConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # The store appends whole records (and repairs a torn tail on
        # load), so whatever is on disk is a valid resume point.
        print("\ninterrupted — progress saved; continue with "
              f"`python -m repro campaign resume --out {args.out}`",
              file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
