"""SRTR-style checkpoint/rollback recovery for SRT/CRT machines.

The paper's designs *detect* transient faults via output comparison but
cannot correct them.  Following SRTR (Vijaykumar et al.) and the
RedThreads detection/correction interface, this module extends the RMT
machines to *recover*:

- **Checkpoints**: every ``checkpoint_interval`` cycles the manager
  waits for the next *verified-store boundary* — every redundant pair's
  store queues empty and no comparison outstanding, so every store that
  ever left the sphere of replication has been verified — and snapshots
  the committed architectural state: per-thread committed PC, retired
  counts, committed register values, and the position of the drained-
  store log.  No memory copy is taken; instead an **undo journal**
  records each subsequent store's overwritten word (``memory-image
  delta``), so rollback is O(stores since checkpoint), not O(image).
- **Rollback-and-replay**: when output comparison (or any divergence
  check) fires, the manager squashes every in-flight uop of both
  threads of every pair, restores registers/PC/indices from a retained
  checkpoint, unwinds the memory journal, clears the LVQ/LPQ/comparator,
  and lets both threads re-execute.  A transient fault does not recur,
  so the replay verifies cleanly: ``Termination.RECOVERED``.
- **Escalating retry**: the manager retains a ring of the last
  ``recovery_max_attempts`` checkpoints.  If a fault re-detects before
  the replay has re-reached the detection point (a permanent fault, or
  a checkpoint that captured already-corrupt state), the next rollback
  targets the next-*older* checkpoint.  When the ring is exhausted the
  run ends ``UNRECOVERABLE`` — the analogue of the paper's uncovered
  permanent faults without preferential space redundancy.

Metrics recorded per recovery: rollback depth (instructions rewound)
and recovery latency (cycles from rollback until the measured threads
re-reached their pre-rollback retirement), surfaced through
``Machine.machine_stats`` and ``RunResult.recovery``.
"""

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.metrics import Termination
from repro.isa.instructions import NUM_ARCH_REGS, ZERO_REG

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.core.rmt import RedundantPair, RmtController


@dataclass
class ThreadCheckpoint:
    """Committed architectural state of one redundant pair."""

    pc: int                       # next PC the retired path executes
    retired: int                  # leading thread's retired count
    load_index: int               # committed program-order load index
    store_index: int              # committed program-order store index
    regs: List[int]               # committed register values (leading)
    drain_log_len: int = 0        # drained-store log position (if traced)
    retire_trace_len: int = 0     # retire trace position (if traced)


@dataclass
class Checkpoint:
    """Machine-wide architectural checkpoint (all pairs, one boundary)."""

    cycle: int
    pairs: Dict[str, ThreadCheckpoint] = field(default_factory=dict)
    #: Undo journal for stores drained *since* this checkpoint:
    #: (memory key, old value or None when the key was absent).
    journal: List[Tuple[int, Optional[int]]] = field(default_factory=list)


@dataclass
class RecoveryStats:
    checkpoints: int = 0
    checkpoint_waits: int = 0      # cycles spent waiting for a boundary
    rollbacks: int = 0
    recoveries: int = 0            # replays that passed the detect point
    unrecoverable: bool = False
    rollback_depth_last: int = 0   # instructions rewound, last rollback
    rollback_depth_max: int = 0
    recovery_latency_last: int = 0  # cycles, rollback -> replay caught up
    recovery_latency_total: int = 0
    journal_peak: int = 0          # undo-journal high-water mark (words)

    def summary(self) -> Dict[str, object]:
        return {
            "checkpoints": self.checkpoints,
            "rollbacks": self.rollbacks,
            "recoveries": self.recoveries,
            "unrecoverable": self.unrecoverable,
            "rollback_depth_last": self.rollback_depth_last,
            "rollback_depth_max": self.rollback_depth_max,
            "recovery_latency_last": self.recovery_latency_last,
            "recovery_latency_total": self.recovery_latency_total,
            "journal_peak": self.journal_peak,
        }


class RecoveryManager:
    """Drives checkpointing and rollback-and-replay on one machine."""

    def __init__(self, machine: "Machine", controller: "RmtController",
                 interval: Optional[int] = None,
                 max_attempts: Optional[int] = None) -> None:
        config = machine.config
        self.machine = machine
        self.controller = controller
        self.interval = (config.checkpoint_interval if interval is None
                         else interval)
        self.max_attempts = (config.recovery_max_attempts
                             if max_attempts is None else max_attempts)
        self.stats = RecoveryStats()
        #: Retained checkpoints, oldest first (ring of max_attempts).
        self.checkpoints: List[Checkpoint] = []
        self._next_checkpoint_cycle = self.interval
        self._pending_rollback = False
        #: Replay targets after a rollback: pair name -> retired count the
        #: leading thread must re-reach for the recovery to count.
        self._replay_targets: Dict[str, int] = {}
        self._replay_start: int = 0
        self._attempt = 0
        #: Latency of a replay that caught up but is not yet *confirmed*
        #: (by a subsequent checkpoint or a clean end of run).
        self._pending_recovery: Optional[int] = None
        # Wire the undo journal into every core's store-commit path.
        for core in machine.cores:
            core.memory_journal = self._journal_write
        # The initial architectural state is trivially a verified-store
        # boundary; checkpoint it so a fault detected before the first
        # periodic checkpoint can still roll back (to program start).
        self._take_checkpoint(0)

    # -- journal -----------------------------------------------------------
    def _journal_write(self, key: int, old_value: Optional[int]) -> None:
        if self.checkpoints:
            journal = self.checkpoints[-1].journal
            journal.append((key, old_value))
            self.stats.journal_peak = max(
                self.stats.journal_peak,
                sum(len(c.journal) for c in self.checkpoints))

    # -- fault entry point ---------------------------------------------------
    def on_fault(self, event) -> None:
        """A detection event fired: schedule rollback-and-replay."""
        if self.stats.unrecoverable or self._pending_rollback:
            return
        self._pending_rollback = True

    # -- per-cycle work ------------------------------------------------------
    def tick(self, now: int) -> None:
        if self.stats.unrecoverable:
            return
        if self._pending_rollback:
            self._attempt_rollback(now)
            return
        self._check_replay_done(now)
        if now >= self._next_checkpoint_cycle and not self._replay_targets:
            if self._at_verified_store_boundary():
                self._take_checkpoint(now)
            else:
                self.stats.checkpoint_waits += 1

    # -- checkpointing -------------------------------------------------------
    def _at_verified_store_boundary(self) -> bool:
        """Every store that ever left the sphere has been verified, and
        nothing is in flight between retire and drain."""
        for pair in self.controller.pairs:
            if pair.leading.store_queue or pair.trailing.store_queue:
                return False
            if len(pair.comparator):
                return False
        return True

    def _take_checkpoint(self, now: int) -> None:
        checkpoint = Checkpoint(cycle=now)
        for pair in self.controller.pairs:
            leading = pair.leading
            core = leading.core
            checkpoint.pairs[pair.name] = ThreadCheckpoint(
                pc=leading.committed_pc,
                retired=leading.stats.retired,
                load_index=leading.committed_load_index,
                store_index=leading.committed_store_index,
                regs=list(leading.arch_regs),
                drain_log_len=len(core.drain_log.get(leading.tid) or ()),
                retire_trace_len=len(
                    core.retire_trace.get(leading.tid) or ()),
            )
        self.checkpoints.append(checkpoint)
        if len(self.checkpoints) > self.max_attempts:
            # The oldest checkpoint leaves the rollback horizon.  Its
            # journal records deltas *older* than its successor's
            # snapshot — unwinding them would overshoot any retained
            # checkpoint — so the segment is simply dead.
            self.checkpoints.pop(0)
        self.stats.checkpoints += 1
        self._next_checkpoint_cycle = now + self.interval
        # A checkpoint is only reachable once the machine made verified
        # fault-free progress past a boundary: it *confirms* any earlier
        # rollback, so the escalation counter rewinds.
        self._confirm_recovery()

    def _confirm_recovery(self) -> None:
        if self._pending_recovery is not None:
            self.stats.recoveries += 1
            self.stats.recovery_latency_last = self._pending_recovery
            self.stats.recovery_latency_total += self._pending_recovery
            self._pending_recovery = None
        self._attempt = 0

    def finalize(self) -> None:
        """End of run: a replay that caught up and never re-detected is
        as confirmed as one followed by a checkpoint."""
        if not self._pending_rollback and not self.stats.unrecoverable:
            if self._pending_recovery is not None:
                self._confirm_recovery()

    # -- rollback ------------------------------------------------------------
    def _attempt_rollback(self, now: int) -> None:
        # The first detection since the last checkpoint targets the
        # newest retained checkpoint.  A re-detection *without* an
        # intervening checkpoint — no matter whether the replay briefly
        # caught up — means that checkpoint replays back into a fault
        # (permanent fault, or corruption older than the snapshot):
        # escalate one checkpoint older.  ``_rollback_to`` discards the
        # proven-bad younger checkpoints (and unwinds their journals).
        index = len(self.checkpoints) - 1 - (1 if self._attempt else 0)
        self._attempt += 1
        # Any replay that caught up before this detection was premature.
        self._pending_recovery = None
        if index < 0:
            self.stats.unrecoverable = True
            self._pending_rollback = False
            self.machine.abort(Termination.UNRECOVERABLE)
            return
        self._rollback_to(index, now)
        self._pending_rollback = False

    def _rollback_to(self, index: int, now: int) -> None:
        checkpoint = self.checkpoints[index]
        machine = self.machine
        # Record replay targets *before* mutating anything.
        self._replay_targets = {
            pair.name: pair.leading.stats.retired
            for pair in self.controller.pairs}
        self._replay_start = now
        depth = sum(
            max(0, target - checkpoint.pairs[name].retired)
            for name, target in self._replay_targets.items()
            if name in checkpoint.pairs)
        self.stats.rollback_depth_last = depth
        self.stats.rollback_depth_max = max(self.stats.rollback_depth_max,
                                            depth)
        # 1. Unwind the memory image: newest journal entries first, from
        #    the newest retained checkpoint back to the target.
        for ckpt in reversed(self.checkpoints[index:]):
            for key, old in reversed(ckpt.journal):
                if old is None:
                    machine.memory.pop(key, None)
                else:
                    machine.memory[key] = old
            ckpt.journal.clear()
        # 2. Rewind every pair to the checkpointed committed state.
        for pair in self.controller.pairs:
            self._rewind_pair(pair, checkpoint.pairs[pair.name], now)
        # 3. Checkpoints younger than the target are now invalid.
        del self.checkpoints[index + 1:]
        self.stats.rollbacks += 1
        self._next_checkpoint_cycle = now + self.interval
        # Observability: rollbacks are simulated-event counts (cycle
        # domain), safe to surface without breaking determinism.
        from repro.obs.metrics import registry
        registry().counter("recovery.rollbacks").inc()

    def _rewind_pair(self, pair: "RedundantPair",
                     ckpt: ThreadCheckpoint, now: int) -> None:
        for thread in (pair.leading, pair.trailing):
            core = thread.core
            # Squash the entire speculative window (every in-flight uop).
            core.squash_from(thread, from_seq=0, now=now,
                             redirect_pc=ckpt.pc,
                             reason="recovery-rollback")
            # Retired-but-undrained stores survive a squash (they live in
            # the store queue, not the ROB); they are post-checkpoint
            # unverified output and are discarded wholesale.
            thread.store_queue.clear()
            thread.load_queue.clear()
            # Restore the committed architectural registers into the
            # thread's current physical mappings (identity of the
            # mapping is irrelevant once the window is empty).
            regfile = thread.rename.regfile
            for arch in range(NUM_ARCH_REGS):
                if arch == ZERO_REG:
                    continue
                regfile.write(thread.rename.map[arch], ckpt.regs[arch])
            thread.arch_regs = list(ckpt.regs)
            # Program-order indices restart at the checkpoint position so
            # LVQ tags and store-comparison indices line up again.
            thread.next_load_index = ckpt.load_index
            thread.next_store_index = ckpt.store_index
            thread.committed_load_index = ckpt.load_index
            thread.committed_store_index = ckpt.store_index
            thread.committed_pc = ckpt.pc
            thread.fetch_pc = ckpt.pc
            thread.fetch_halted = False
            thread.done = False
            # Retirement statistics rewind with the architectural state;
            # the replay re-earns them (cycles keep counting, which is
            # exactly the recovery-latency IPC penalty).
            thread.stats.retired = ckpt.retired
            thread.stats.done_cycle = None
            # Truncate architectural traces back to the checkpoint.
            trace = core.retire_trace.get(thread.tid)
            if trace is not None:
                del trace[ckpt.retire_trace_len:]
            log = core.drain_log.get(thread.tid)
            if log is not None:
                del log[ckpt.drain_log_len:]
        # Pair-level replication structures describe the discarded
        # execution; drop them.
        pair.lvq.clear()
        pair.lpq.clear()
        pair.aggregator.clear()
        pair.comparator.clear()

    # -- replay tracking -----------------------------------------------------
    def _check_replay_done(self, now: int) -> None:
        if not self._replay_targets:
            return
        for pair in self.controller.pairs:
            target = self._replay_targets.get(pair.name)
            if target is not None and pair.leading.stats.retired < target:
                if not pair.leading.done:
                    return
        # Every pair re-reached (or halted before) its pre-rollback
        # position without re-detecting: the fault was transient.
        # Catching up with the pre-rollback retirement is necessary but
        # not sufficient — a permanent fault re-detects shortly after.
        # Only a fresh checkpoint (a verified fault-free boundary) or a
        # clean end of run confirms the recovery, so the latency parks
        # in ``_pending_recovery`` and ``_attempt`` stays armed.
        self._pending_recovery = now - self._replay_start
        self._replay_targets = {}

    # -- reporting -----------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return self.stats.summary()

    def machine_stats(self) -> Dict[str, float]:
        s = self.stats
        return {
            "recovery.checkpoints": float(s.checkpoints),
            "recovery.rollbacks": float(s.rollbacks),
            "recovery.recoveries": float(s.recoveries),
            "recovery.rollback_depth_max": float(s.rollback_depth_max),
            "recovery.latency_total": float(s.recovery_latency_total),
            "recovery.journal_peak": float(s.journal_peak),
        }
