"""``python -m repro recovery`` — demo verbs for the robustness layer.

Two subcommands, both self-contained (no artifact directory needed):

- ``demo`` — inject a transient fault into a recovery-enabled SRT/CRT
  machine and narrate the rollback-and-replay: detection, rollback
  depth, recovery latency, final verdict, and a correctness check of
  the final memory image against a fault-free reference run;
- ``hang`` — wedge a machine on purpose (retirement vetoed past a
  chosen cycle) and print the watchdog's hang-forensics report.

Examples::

    python -m repro recovery demo --kind srt --benchmark gcc
    python -m repro recovery demo --kind crt --permanent
    python -m repro recovery hang --benchmark swim
"""

import argparse
import sys
from typing import List, Optional

from repro.core.config import MachineConfig
from repro.core.faults import (FaultInjector, StuckFunctionalUnit,
                               TransientResultFault)
from repro.core.machine import make_machine
from repro.core.metrics import Termination
from repro.isa.generator import generate_benchmark
from repro.isa.instructions import FuClass
from repro.isa.profiles import SPEC95_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro recovery",
        description="Watchdog / checkpoint-recovery demonstrations")
    sub = parser.add_subparsers(dest="subcommand", required=True)

    def add_common(p):
        p.add_argument("--benchmark", default="gcc",
                       help=f"workload ({', '.join(SPEC95_NAMES)})")
        p.add_argument("--kind", default="srt", choices=["srt", "crt"],
                       help="redundant machine kind")
        p.add_argument("--instructions", type=int, default=800,
                       help="committed instructions per thread")
        p.add_argument("--warmup", type=int, default=2000,
                       help="architectural warm-up instructions")
        p.add_argument("--seed", type=int, default=0,
                       help="workload generation seed")

    demo = sub.add_parser("demo", help="inject a fault, watch it recover")
    add_common(demo)
    demo.add_argument("--strike-cycle", type=int, default=400,
                      help="cycle the transient fault strikes")
    demo.add_argument("--bit", type=int, default=3,
                      help="bit position the fault flips")
    demo.add_argument("--permanent", action="store_true",
                      help="inject a stuck functional unit instead "
                           "(exhausts the checkpoint ring: UNRECOVERABLE)")
    demo.add_argument("--checkpoint-interval", type=int, default=400,
                      help="cycles between architectural checkpoints")
    demo.add_argument("--max-attempts", type=int, default=3,
                      help="checkpoint ring size / retry bound")

    hang = sub.add_parser("hang", help="wedge a machine, print forensics")
    add_common(hang)
    hang.add_argument("--window", type=int, default=2048,
                      help="watchdog no-progress window (cycles)")
    hang.add_argument("--wedge-cycle", type=int, default=500,
                      help="cycle after which retirement is vetoed")
    return parser


def cmd_demo(args: argparse.Namespace) -> int:
    program = generate_benchmark(args.benchmark, seed=args.seed)
    config = MachineConfig(recovery_enabled=True,
                           checkpoint_interval=args.checkpoint_interval,
                           recovery_max_attempts=args.max_attempts)

    def traced(machine):
        """Trace the measured thread's drained-store stream."""
        hw = machine._measured[program.name]
        hw.core.drain_log[hw.tid] = []
        return machine

    def drained(machine):
        hw = machine._measured[program.name]
        return machine._measured[program.name].core.drain_log[hw.tid]

    # Fault-free reference for the output-correctness check.  The
    # decisive stream is what left the sphere of replication (the
    # drained stores): an instruction-target run stops at retirement,
    # so a handful of verified stores may still sit in the queue —
    # the drained *prefix* must match, not the whole final image.
    reference = traced(make_machine(args.kind, config, [program]))
    reference.run(max_instructions=args.instructions, warmup=args.warmup)

    machine = traced(make_machine(args.kind, config, [program]))
    if args.permanent:
        fault = StuckFunctionalUnit(core_index=0, fu_class=FuClass.INT,
                                    unit_index=0, bit=args.bit)
        print(f"injecting permanent fault: INT unit 0 on core 0, "
              f"bit {args.bit} stuck")
    else:
        fault = TransientResultFault(cycle=args.strike_cycle, core_index=0,
                                     bit=args.bit)
        print(f"injecting transient fault: flip bit {args.bit} of the "
              f"first result on core 0 at cycle {args.strike_cycle}")
    FaultInjector(machine, [fault])
    result = machine.run(max_instructions=args.instructions,
                         warmup=args.warmup)

    stats = machine.recovery.stats
    detected = machine.fault_events[0].cycle if machine.fault_events else None
    print(f"struck cycle      {fault.struck_cycle}")
    print(f"detected cycle    {detected}")
    print(f"checkpoints       {stats.checkpoints}")
    print(f"rollbacks         {stats.rollbacks}")
    print(f"rollback depth    {stats.rollback_depth_max} instructions")
    print(f"recovery latency  {stats.recovery_latency_last} cycles")
    print(f"termination       {result.termination.value}")
    if result.termination is Termination.RECOVERED:
        mine, golden = drained(machine), drained(reference)
        ok = mine == golden[:len(mine)]
        verdict = ("prefix matches fault-free run" if ok
                   else "STREAM MISMATCH (bug!)")
        print(f"drained stores    {len(mine)} drained, {verdict}")
        return 0 if ok else 1
    if result.termination is Termination.UNRECOVERABLE:
        print("memory image      n/a (run abandoned, as designed for "
              "permanent faults)")
        return 0
    print("(fault was masked or undetected on this site; try another "
          "--strike-cycle / --bit)")
    return 0


def cmd_hang(args: argparse.Namespace) -> int:
    from repro.pipeline.hooks import CoreHooks

    class RetirementJammer(CoreHooks):
        """Veto every load retirement past the wedge cycle — the machine
        keeps fetching and executing but can never commit a load."""

        def __init__(self, wedge_cycle: int) -> None:
            self.wedge_cycle = wedge_cycle

        def can_retire_load(self, core, thread, uop, now) -> bool:
            return now < self.wedge_cycle

    program = generate_benchmark(args.benchmark, seed=args.seed)
    config = MachineConfig(watchdog_window=args.window)
    machine = make_machine("base", config, [program])
    machine.cores[0].hooks = RetirementJammer(args.wedge_cycle)
    result = machine.run(max_instructions=args.instructions,
                         warmup=args.warmup)
    print(f"termination  {result.termination.value} "
          f"after {result.cycles} cycles")
    if machine.watchdog is not None and machine.watchdog.report is not None:
        print()
        print(machine.watchdog.report.format())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"demo": cmd_demo, "hang": cmd_hang}
    return handlers[args.subcommand](args)


if __name__ == "__main__":
    sys.exit(main())
