"""repro.recovery — machine robustness: watchdog, forensics, rollback.

The paper's SRT/CRT designs are *detection-only*: Section 4.3 spends an
entire design-rule set avoiding inter-thread deadlock (per-thread store
queues, reserved IQ chunks, LVQ/BOQ sizing) precisely because a wedged
redundant pair is otherwise indistinguishable from a slow one.  This
package makes both failure directions first-class:

- :mod:`repro.recovery.watchdog` — a forward-progress watchdog that
  fingerprints retirement counts and queue occupancies while a machine
  runs, declares ``HUNG``/``LIVELOCK`` when no measured thread retires
  across a window, and emits a structured hang-forensics report (the
  head-of-ROB blocker, per-queue occupancies, membar/partial-store
  block counters) instead of a silently truncated ``RunResult``;
- :mod:`repro.recovery.checkpoint` — SRTR-style transient-fault
  *recovery* for the SRT/CRT machines: periodic architectural
  checkpoints at verified-store boundaries, rollback-and-replay on
  output-comparison mismatch with escalating retry over a checkpoint
  ring, and ``RECOVERED``/``UNRECOVERABLE`` terminations plus recovery
  latency / rollback depth metrics.

See ``docs/RECOVERY.md`` for the design discussion.
"""

from repro.core.metrics import Termination
from repro.recovery.checkpoint import Checkpoint, RecoveryManager
from repro.recovery.watchdog import HangReport, ProgressWatchdog

__all__ = [
    "Checkpoint",
    "HangReport",
    "ProgressWatchdog",
    "RecoveryManager",
    "Termination",
]
