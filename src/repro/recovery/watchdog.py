"""Forward-progress watchdog and hang forensics.

``Machine.step`` feeds the watchdog one observation per cycle; every
``interval`` cycles it fingerprints the machine (per-thread retirement,
speculative-activity counters, queue occupancies).  If *no measured
thread* retires an instruction across ``window`` cycles the watchdog
renders a verdict:

- :attr:`~repro.core.metrics.Termination.HUNG` — nothing speculative is
  moving either: a true deadlock (LVQ slack exhaustion, store-queue
  starvation, a membar that can never observe its stores drained);
- :attr:`~repro.core.metrics.Termination.LIVELOCK` — the pipeline keeps
  churning (squashes, misfetches, unmeasured hardware threads spinning)
  without ever committing measured work.

Either way it emits a :class:`HangReport`: the head-of-ROB blocker uop
per hardware thread, every queue occupancy (IQ halves, LQ/SQ, ROB,
LVQ/LPQ, comparator backlog, pair slack) and the stall counters the
pipeline maintains (membar blocks, partial-store blocks, retirement
vetoes).  The report — not a silently truncated ``RunResult`` — is what
a fault-injection campaign records for a wedged run.
"""

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.metrics import Termination

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine


@dataclass
class Fingerprint:
    """One watchdog observation of the machine's progress state."""

    cycle: int
    #: Retired count per *measured* logical thread (progress signal).
    measured: Dict[str, int] = field(default_factory=dict)
    #: Speculative-activity counters (livelock-vs-deadlock evidence):
    #: total retirement of every hardware thread, squashes, misfetches.
    activity: Dict[str, int] = field(default_factory=dict)
    #: Queue occupancies (forensic detail).
    queues: Dict[str, int] = field(default_factory=dict)
    #: Head-of-ROB blocker description per hardware thread.
    blockers: Dict[str, str] = field(default_factory=dict)
    #: Cumulative stall counters (membar / partial-store / retire vetoes).
    stalls: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "cycle": self.cycle,
            "measured": dict(self.measured),
            "activity": dict(self.activity),
            "queues": dict(self.queues),
            "blockers": dict(self.blockers),
            "stalls": dict(self.stalls),
        }


@dataclass
class HangReport:
    """Structured forensics for a HUNG/LIVELOCK verdict."""

    verdict: str                     # Termination.HUNG/.LIVELOCK value
    cycle: int                       # cycle the verdict was rendered
    window: int                      # no-progress window that expired
    stalled_since: int               # last cycle a measured thread retired
    fingerprint: Dict[str, object]   # final Fingerprint.to_dict()
    activity_delta: Dict[str, int]   # counters that moved inside the window

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "cycle": self.cycle,
            "window": self.window,
            "stalled_since": self.stalled_since,
            "fingerprint": dict(self.fingerprint),
            "activity_delta": dict(self.activity_delta),
        }

    def format(self) -> str:
        """Human-readable multi-line forensics dump."""
        lines = [
            f"# {self.verdict.upper()} at cycle {self.cycle} "
            f"(no measured retirement since cycle {self.stalled_since}, "
            f"window {self.window})",
        ]
        if self.activity_delta:
            moved = ", ".join(f"{key}+{delta}" for key, delta
                              in sorted(self.activity_delta.items()))
            lines.append(f"  speculative activity in window: {moved}")
        else:
            lines.append("  speculative activity in window: none "
                         "(true deadlock)")
        blockers = self.fingerprint.get("blockers", {})
        if blockers:
            lines.append("  head-of-ROB blockers:")
            for name in sorted(blockers):
                lines.append(f"    {name:<16s} {blockers[name]}")
        queues = self.fingerprint.get("queues", {})
        if queues:
            lines.append("  queue occupancies:")
            for name in sorted(queues):
                lines.append(f"    {name:<28s} {queues[name]}")
        stalls = self.fingerprint.get("stalls", {})
        nonzero = {k: v for k, v in stalls.items() if v}
        if nonzero:
            lines.append("  stall counters:")
            for name in sorted(nonzero):
                lines.append(f"    {name:<28s} {nonzero[name]}")
        return "\n".join(lines)


def _describe_head(thread) -> str:
    """One-line description of the uop blocking a thread's ROB head."""
    if thread.done:
        return "(halted)"
    if not thread.rob:
        return "(rob empty — front end starved)"
    uop = thread.rob[0]
    return (f"seq={uop.seq} pc={uop.pc} {uop.instr.op.name} "
            f"state={uop.state.name.lower()}")


class ProgressWatchdog:
    """Watches a running machine for loss of forward progress."""

    def __init__(self, machine: "Machine", interval: int = 64,
                 window: int = 4096) -> None:
        self.machine = machine
        self.interval = max(1, interval)
        self.window = max(self.interval, window)
        self.verdict: Optional[Termination] = None
        self.report: Optional[HangReport] = None
        self.last_fingerprint: Optional[Fingerprint] = None
        self._baseline: Optional[Fingerprint] = None

    # -- fingerprinting ----------------------------------------------------
    def fingerprint(self, now: int) -> Fingerprint:
        machine = self.machine
        fp = Fingerprint(cycle=now)
        for name, hw in machine._measured.items():
            fp.measured[name] = hw.stats.retired
        for core in machine.cores:
            prefix = f"core{core.core_id}."
            fp.activity[prefix + "retired"] = core.stats.retired_total
            fp.activity[prefix + "squashes"] = core.stats.squashes
            fp.queues[prefix + "iq.half0"] = core.qbox.occupancy(0)
            fp.queues[prefix + "iq.half1"] = core.qbox.occupancy(1)
            for thread in core.threads:
                tname = f"{prefix}t{thread.tid}({thread.role.value})"
                ts = thread.stats
                fp.activity[tname + ".misfetches"] = ts.misfetches
                fp.queues[tname + ".rob"] = len(thread.rob)
                fp.queues[tname + ".lq"] = len(thread.load_queue)
                fp.queues[tname + ".sq"] = len(thread.store_queue)
                fp.queues[tname + ".rmb"] = thread.rmb_load()
                fp.blockers[tname] = _describe_head(thread)
                fp.stalls[tname + ".membar_blocks"] = ts.membar_block_cycles
                fp.stalls[tname + ".partial_store_blocks"] = (
                    ts.partial_store_block_cycles)
                fp.stalls[tname + ".retire_stalls"] = ts.retire_stall_cycles
        controller = getattr(machine, "controller", None)
        if controller is not None:
            for pair in controller.pairs:
                prefix = f"pair.{pair.name}."
                fp.queues[prefix + "lvq"] = len(pair.lvq)
                fp.queues[prefix + "lvq_capacity"] = pair.lvq.capacity
                fp.queues[prefix + "lpq"] = len(pair.lpq)
                fp.queues[prefix + "lpq_pending"] = len(pair.aggregator)
                fp.queues[prefix + "comparator_backlog"] = (
                    len(pair.comparator))
                fp.queues[prefix + "slack"] = (pair.leading.stats.retired
                                               - pair.trailing.stats.retired)
        return fp

    # -- per-cycle observation ---------------------------------------------
    def observe(self, now: int) -> Optional[Termination]:
        """Called once per machine cycle; returns a verdict when wedged."""
        if self.verdict is not None:
            return self.verdict
        if now % self.interval:
            return None
        # A machine whose measured threads all finished cannot hang.
        if all(t.stats.done_cycle is not None or t.done
               for t in self.machine._measured.values()):
            return None
        fp = self.fingerprint(now)
        self.last_fingerprint = fp
        if self._baseline is None or self._progressed(fp):
            self._baseline = fp
            return None
        if now - self._baseline.cycle < self.window:
            return None
        delta = self._activity_delta(fp)
        self.verdict = (Termination.LIVELOCK if delta
                        else Termination.HUNG)
        # Observability: wedge verdicts are rare, high-signal events.
        from repro.obs.metrics import registry
        registry().counter(
            f"recovery.watchdog.{self.verdict.value}").inc()
        self.report = HangReport(
            verdict=self.verdict.value,
            cycle=now,
            window=self.window,
            stalled_since=self._baseline.cycle,
            fingerprint=fp.to_dict(),
            activity_delta=delta,
        )
        return self.verdict

    def _progressed(self, fp: Fingerprint) -> bool:
        base = self._baseline
        return any(fp.measured.get(name, 0) > count
                   for name, count in base.measured.items()) or \
            any(name not in base.measured for name in fp.measured)

    def _activity_delta(self, fp: Fingerprint) -> Dict[str, int]:
        base = self._baseline
        delta: Dict[str, int] = {}
        for key, value in fp.activity.items():
            moved = value - base.activity.get(key, 0)
            if moved > 0:
                delta[key] = moved
        return delta

    # -- classification core (unit-testable without a machine) -------------
    @staticmethod
    def classify(history: List[Fingerprint], window: int) -> Optional[
            Termination]:
        """Pure verdict function over a fingerprint sequence.

        Returns None while measured progress exists inside ``window``;
        HUNG when both measured counts and activity counters are frozen;
        LIVELOCK when activity moved but measured counts did not.
        """
        if len(history) < 2:
            return None
        last = history[-1]
        baseline = None
        for fp in reversed(history[:-1]):
            if any(last.measured.get(name, 0) > count
                   for name, count in fp.measured.items()):
                return None  # progress inside the examined span
            baseline = fp
            if last.cycle - fp.cycle >= window:
                break
        if baseline is None or last.cycle - baseline.cycle < window:
            return None
        moved = any(value > baseline.activity.get(key, 0)
                    for key, value in last.activity.items())
        return Termination.LIVELOCK if moved else Termination.HUNG
