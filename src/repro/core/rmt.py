"""The RMT controller: SRT/CRT mechanisms implemented as pipeline hooks.

One :class:`RedundantPair` exists per logical thread: its leading and
trailing hardware threads (same core for SRT, opposite cores for CRT),
the pair's load value queue, line prediction queue + chunk aggregator,
store comparator, sphere-of-replication accounting, and the functional-
unit correspondence tracker used by the preferential-space-redundancy
experiment.

:class:`RmtController` implements :class:`~repro.pipeline.hooks.CoreHooks`
and dispatches each hook to the right pair.
"""

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.config import MachineConfig
from repro.core.lpq import ChunkAggregator, LinePredictionQueue
from repro.core.lvq import LoadValueQueue
from repro.core.psr import FuCorrespondenceTracker
from repro.core.sphere import SphereOfReplication
from repro.core.store_comparator import StoreComparator
from repro.pipeline.hooks import CoreHooks
from repro.pipeline.thread import HwThread
from repro.pipeline.uop import Uop

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.pipeline.core import Core


@dataclass
class RedundantPair:
    name: str
    leading: HwThread
    trailing: HwThread
    lvq: LoadValueQueue
    lpq: LinePredictionQueue
    aggregator: ChunkAggregator
    comparator: StoreComparator
    sphere: SphereOfReplication
    tracker: FuCorrespondenceTracker = field(
        default_factory=FuCorrespondenceTracker)


class RmtController(CoreHooks):
    def __init__(self, machine: "Machine", config: MachineConfig) -> None:
        self.machine = machine
        self.config = config
        self.pairs: List[RedundantPair] = []
        self._by_thread: Dict[int, RedundantPair] = {}  # id(thread) -> pair

    # -- construction ------------------------------------------------------
    def create_pair(self, name: str, leading: HwThread, trailing: HwThread,
                    cross_latency: int = 0) -> RedundantPair:
        """Wire a redundant pair; ``cross_latency`` is the extra chip-
        crossing delay CRT pays on every forwarded value."""
        config = self.config
        lvq = LoadValueQueue(
            capacity=config.lvq_entries,
            forward_latency=config.srt_load_forward_latency + cross_latency)
        lpq = LinePredictionQueue(capacity=config.lpq_entries)
        aggregator = ChunkAggregator(
            lpq, chunk_size=config.core.chunk_size,
            forward_latency=config.srt_line_forward_latency + cross_latency,
            wrap=len(leading.program),
            flush_timeout=config.lpq_flush_timeout)
        sphere = SphereOfReplication(name=name)

        def on_mismatch(entry: Uop, record, now: int) -> None:
            sphere.record_comparison(matched=False)
            self.machine.report_fault(
                now, "store-mismatch", leading.tid,
                detail=(f"store #{entry.store_index}: leading "
                        f"({entry.instr.op.name} @{entry.mem_addr:#x} = "
                        f"{entry.store_value:#x}) vs trailing "
                        f"({record.op_name} @{record.addr:#x} = "
                        f"{record.value:#x})"))

        comparator = StoreComparator(leading, forward_latency=cross_latency,
                                     on_mismatch=on_mismatch)
        pair = RedundantPair(name=name, leading=leading, trailing=trailing,
                             lvq=lvq, lpq=lpq, aggregator=aggregator,
                             comparator=comparator, sphere=sphere)
        leading.partner = trailing
        trailing.partner = leading
        self.pairs.append(pair)
        self._by_thread[id(leading)] = pair
        self._by_thread[id(trailing)] = pair
        return pair

    def pair_of(self, thread: HwThread) -> Optional[RedundantPair]:
        return self._by_thread.get(id(thread))

    # -- per-cycle work ----------------------------------------------------
    def tick(self, now: int) -> None:
        for pair in self.pairs:
            pair.aggregator.tick(now)
            pair.comparator.tick(now)
            # Store-queue pressure: if the leading thread's store queue is
            # nearly exhausted by unverified stores, push the partial chunk
            # so the trailing thread can catch up and verify them.
            if pair.leading.sq_free() == 0 and len(pair.aggregator):
                pair.aggregator.flush(now, reason="pressure")

    def _slack_satisfied(self, pair: RedundantPair) -> bool:
        slack = self.config.srt_slack_instructions
        if not slack:
            return True
        # The leading thread cannot retire past a full LVQ, so demanding
        # more slack than the LVQ can buffer would deadlock the pair;
        # clamp to what the queues can actually absorb.
        limit = max(self.config.lvq_entries - 8, 1)
        slack = min(slack, limit)
        return (pair.leading.stats.retired
                - pair.trailing.stats.retired) >= slack

    @property
    def _lpq_mode(self) -> bool:
        return self.config.trailing_fetch_mode == "lpq"

    # -- retirement-side hooks ------------------------------------------------
    def on_uop_retired(self, core: "Core", thread: HwThread, uop: Uop,
                       now: int) -> None:
        pair = self.pair_of(thread)
        if pair is None:
            return
        if thread is pair.leading:
            pair.tracker.leading_retired(uop.fu, uop.queue_half)
            if self._lpq_mode:
                wrap = len(thread.program)
                if uop.instr.is_control:
                    next_pc = uop.actual_target
                else:
                    next_pc = (uop.pc + 1) % wrap
                pair.aggregator.add(uop.pc, next_pc, uop.queue_half, now)
        else:
            pair.tracker.trailing_retired(uop.fu, uop.queue_half)

    def on_membar_blocked(self, core: "Core", thread: HwThread,
                          now: int) -> None:
        pair = self.pair_of(thread)
        if pair is not None and thread is pair.leading:
            pair.aggregator.flush(now, reason="membar")

    def on_partial_store_block(self, core: "Core", thread: HwThread,
                               store_uop: Uop, now: int) -> None:
        pair = self.pair_of(thread)
        if pair is not None and thread is pair.leading:
            pair.aggregator.flush(now, reason="partial-store")

    def can_retire_load(self, core: "Core", thread: HwThread, uop: Uop,
                        now: int) -> bool:
        pair = self.pair_of(thread)
        if pair is None or thread is not pair.leading:
            return True
        # The LVQ entry is written at retirement; no room means stall.
        if not pair.lvq.has_room():
            return False
        return not (self._lpq_mode and pair.lpq.full)

    def on_load_retired(self, core: "Core", thread: HwThread, uop: Uop,
                        now: int) -> None:
        pair = self.pair_of(thread)
        if pair is None or thread is not pair.leading:
            return
        pair.lvq.write(uop.load_index, uop.mem_addr, uop.result, now)
        pair.sphere.record_input()
        thread.stats.lvq_writes += 1

    def store_needs_verification(self, thread: HwThread) -> bool:
        pair = self.pair_of(thread)
        return (pair is not None and thread is pair.leading
                and self.config.store_comparison)

    def on_store_retired(self, core: "Core", thread: HwThread, uop: Uop,
                         now: int) -> None:
        pair = self.pair_of(thread)
        if pair is None or thread is not pair.trailing:
            return
        if self.config.store_comparison:
            pair.comparator.trailing_store_retired(uop, now)
            pair.sphere.record_comparison(matched=True)

    def on_store_drained(self, core: "Core", thread: HwThread, uop: Uop,
                         now: int) -> None:
        pair = self.pair_of(thread)
        if pair is not None and thread is pair.leading:
            pair.sphere.record_forwarded()

    # -- fetch-side hooks ----------------------------------------------------
    def trailing_fetch_ready(self, core: "Core", thread: HwThread,
                             now: int) -> bool:
        pair = self.pair_of(thread)
        return (pair is not None
                and self._slack_satisfied(pair)
                and pair.lpq.peek_active(now) is not None)

    def trailing_may_fetch(self, core: "Core", thread: HwThread,
                           now: int) -> bool:
        """Predictor-mode trailing fetch gate: slack fetch only."""
        pair = self.pair_of(thread)
        return pair is None or self._slack_satisfied(pair)

    def trailing_peek_chunk(self, core: "Core", thread: HwThread,
                            now: int) -> Optional[tuple]:
        pair = self.pair_of(thread)
        if pair is None:
            return None
        chunk = pair.lpq.peek_active(now)
        if chunk is None:
            return None
        return chunk.start_pc, chunk.pcs, chunk.next_pc, chunk.half_hints

    def trailing_ack_chunk(self, core: "Core", thread: HwThread,
                           now: int) -> None:
        pair = self.pair_of(thread)
        pair.lpq.ack()

    def trailing_commit_chunk(self, core: "Core", thread: HwThread,
                              now: int) -> None:
        pair = self.pair_of(thread)
        pair.lpq.commit()

    def trailing_rollback_chunk(self, core: "Core", thread: HwThread,
                                now: int) -> None:
        pair = self.pair_of(thread)
        pair.lpq.rollback()

    # -- execute-side hooks -----------------------------------------------------
    def trailing_load_probe(self, core: "Core", thread: HwThread, uop: Uop,
                            now: int) -> Optional[Tuple[int, int]]:
        pair = self.pair_of(thread)
        if pair is None:
            return None
        return pair.lvq.probe(uop.load_index, now)

    def trailing_load_consume(self, core: "Core", thread: HwThread, uop: Uop,
                              now: int) -> None:
        pair = self.pair_of(thread)
        pair.lvq.consume(uop.load_index)

    def on_trailing_divergence(self, core: "Core", thread: HwThread, uop: Uop,
                               kind: str, now: int) -> None:
        pair = self.pair_of(thread)
        if pair is not None and kind == "lvq-address-mismatch":
            pair.lvq.stats.address_mismatches += 1
        self.machine.report_fault(
            now, kind, thread.tid,
            detail=f"pc={uop.pc} {uop.instr.op.name} seq={uop.seq}")

    def queue_half_for(self, core: "Core", thread: HwThread, uop: Uop,
                       default_half: int) -> int:
        if (not self.config.preferential_space_redundancy
                or not thread.is_trailing or uop.lpq_half_hint is None):
            return default_half
        return 1 - uop.lpq_half_hint
