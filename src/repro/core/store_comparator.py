"""The store comparator — output comparison for cacheable stores.

A separate structure sitting next to the store queue (Section 4.2):
when a trailing-thread store and its data retire, the comparator looks
up the corresponding leading-thread store-queue entry (matched by the
program-order store index, identical in both threads), compares opcode,
address, and data, and signals the store queue that the verified store
may now drain to the data cache.  A mismatch is a detected fault.

Leading stores therefore live in the store queue from their own
retirement until their trailing twin retires and the comparison
completes — the ~39-cycle lifetime extension of Section 7.1.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.pipeline.thread import HwThread
from repro.pipeline.uop import Uop


@dataclass
class StoreComparatorStats:
    comparisons: int = 0
    mismatches: int = 0
    pending_peak: int = 0


@dataclass
class _TrailingRecord:
    store_index: int
    op_name: str
    addr: int
    raw_addr: int
    value: int
    available_cycle: int


class StoreComparator:
    """Matches trailing-store records against leading store-queue entries."""

    def __init__(self, leading: HwThread, forward_latency: int = 0,
                 on_mismatch: Optional[Callable] = None) -> None:
        self.leading = leading
        self.forward_latency = forward_latency
        self.on_mismatch = on_mismatch
        self.stats = StoreComparatorStats()
        self._pending: Dict[int, _TrailingRecord] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def clear(self) -> None:
        """Drop unmatched trailing records (SRTR rollback discards both
        threads' in-flight stores, so nothing is left to verify)."""
        self._pending.clear()

    # -- trailing side -----------------------------------------------------
    def trailing_store_retired(self, uop: Uop, now: int) -> None:
        record = _TrailingRecord(
            store_index=uop.store_index, op_name=uop.instr.op.name,
            addr=uop.mem_addr, raw_addr=uop.raw_addr, value=uop.store_value,
            available_cycle=now + self.forward_latency)
        self._pending[record.store_index] = record
        self.stats.pending_peak = max(self.stats.pending_peak,
                                      len(self._pending))

    # -- per-cycle matching -----------------------------------------------
    def tick(self, now: int) -> None:
        if not self._pending:
            return
        for entry in self.leading.store_queue:
            if entry.verified or entry.mem_addr is None:
                continue
            record = self._pending.get(entry.store_index)
            if record is None or now < record.available_cycle:
                continue
            self._compare(entry, record, now)
            del self._pending[entry.store_index]

    def _compare(self, entry: Uop, record: _TrailingRecord, now: int) -> None:
        self.stats.comparisons += 1
        matches = (entry.instr.op.name == record.op_name
                   and entry.mem_addr == record.addr
                   and entry.store_value == record.value
                   and (not entry.instr.is_partial_store
                        or (entry.raw_addr & 4) == (record.raw_addr & 4)))
        entry.verified = True  # checked either way; fault is reported
        if not matches:
            self.stats.mismatches += 1
            if self.on_mismatch is not None:
                self.on_mismatch(entry, record, now)
