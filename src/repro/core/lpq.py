"""The line prediction queue (LPQ) — SRT's branch outcome queue adapted
to a line-prediction-driven fetch architecture (Section 4.4).

The QBOX end (:class:`ChunkAggregator`) watches leading-thread
retirement and aggregates contiguous retiring instructions into trailing
fetch chunks, terminating a chunk when

- the next retiring instruction is not contiguous (taken branch),
- the eight-instruction chunk limit is reached,
- the oldest leading instruction is a memory barrier that cannot retire
  until trailing stores verify its predecessors (deadlock rule 1),
- a leading load is blocked on partial forwarding from a store that has
  not yet been made visible to the trailing thread (deadlock rule 2), or
- the leading thread goes idle for a timeout (flush-on-stall safety).

The IBOX end (:class:`LinePredictionQueue`) holds the finished chunks
and implements the two-head protocol of Figure 4: the *active head*
advances when the address driver accepts a prediction; the *recovery
head* advances only when the chunk's instructions were actually fetched,
so an instruction-cache miss can roll the active head back and reissue
the same predictions.
"""

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class LpqStats:
    chunks_pushed: int = 0
    chunks_fetched: int = 0
    rollbacks: int = 0
    flush_membar: int = 0
    flush_partial_store: int = 0
    flush_timeout: int = 0
    flush_pressure: int = 0
    full_stalls: int = 0
    instructions: int = 0

    @property
    def mean_chunk_length(self) -> float:
        return (self.instructions / self.chunks_pushed
                if self.chunks_pushed else 0.0)


@dataclass
class LpqChunk:
    """One trailing-thread fetch chunk: the exact retired path."""

    start_pc: int
    pcs: List[int]
    next_pc: int
    half_hints: List[Optional[int]]
    available_cycle: int

    def __len__(self) -> int:
        return len(self.pcs)


class LinePredictionQueue:
    """IBOX-side chunk FIFO with active and recovery heads."""

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self.stats = LpqStats()
        self._chunks: List[LpqChunk] = []
        self.active_head = 0
        self.recovery_head = 0

    def __len__(self) -> int:
        """Chunks not yet safely fetched (recovery-head occupancy)."""
        return len(self._chunks)

    @property
    def full(self) -> bool:
        return len(self._chunks) >= self.capacity

    def push(self, chunk: LpqChunk) -> None:
        if self.full:
            raise RuntimeError("LPQ overflow: aggregator must gate on free "
                               "space")
        self._chunks.append(chunk)
        self.stats.chunks_pushed += 1
        self.stats.instructions += len(chunk)

    def peek_active(self, now: int) -> Optional[LpqChunk]:
        """The prediction the active head would send next."""
        if self.active_head >= len(self._chunks):
            return None
        chunk = self._chunks[self.active_head]
        if now < chunk.available_cycle:
            return None
        return chunk

    def ack(self) -> None:
        """Address driver accepted the prediction: advance the active head."""
        if self.active_head >= len(self._chunks):
            raise RuntimeError("ack with no outstanding prediction")
        self.active_head += 1

    def commit(self) -> None:
        """Instructions fetched successfully: advance the recovery head and
        release the storage behind it."""
        if self.recovery_head >= self.active_head:
            raise RuntimeError("commit past the active head")
        self.recovery_head += 1
        self.stats.chunks_fetched += 1
        # Storage behind the recovery head is dead; reclaim it.
        if self.recovery_head:
            del self._chunks[:self.recovery_head]
            self.active_head -= self.recovery_head
            self.recovery_head = 0

    def rollback(self) -> None:
        """Icache miss (or similar): re-send from the recovery head."""
        if self.active_head != self.recovery_head:
            self.stats.rollbacks += 1
        self.active_head = self.recovery_head

    def clear(self) -> None:
        """Discard every queued chunk (SRTR rollback: the retired path
        they describe has been rewound)."""
        self._chunks.clear()
        self.active_head = 0
        self.recovery_head = 0


class ChunkAggregator:
    """QBOX-side logic building trailing fetch chunks from retirement."""

    def __init__(self, lpq: LinePredictionQueue, chunk_size: int = 8,
                 forward_latency: int = 4, wrap: int = 1 << 62,
                 flush_timeout: int = 24) -> None:
        self.lpq = lpq
        self.chunk_size = chunk_size
        self.forward_latency = forward_latency
        self.wrap = wrap
        self.flush_timeout = flush_timeout
        self._pcs: List[int] = []
        self._half_hints: List[Optional[int]] = []
        self._next_pc: Optional[int] = None   # where the retired path goes
        self._last_add_cycle: Optional[int] = None

    def __len__(self) -> int:
        return len(self._pcs)

    def has_room(self) -> bool:
        """Retirement gate: a retiring instruction must always have
        somewhere to go, even if it forces a chunk push."""
        return not self.lpq.full

    def add(self, pc: int, next_pc: int, queue_half: Optional[int],
            now: int) -> None:
        """Record one retiring leading-thread instruction.

        ``next_pc`` is where the retired path continues (the actual branch
        target for control instructions, pc+1 otherwise).  A mispredicted-
        taken branch that actually fell through keeps the chunk growing,
        exactly as in Section 4.4.2's last observation.
        """
        if self._pcs and pc != self._next_pc:
            self.flush(now, reason="discontinuity")
        self._pcs.append(pc)
        self._half_hints.append(queue_half)
        self._next_pc = next_pc
        self._last_add_cycle = now
        if len(self._pcs) >= self.chunk_size or next_pc != (pc + 1) % self.wrap:
            # Chunk limit reached, or the path jumps away (taken branch):
            # the continuation address is known, so terminate now.
            self.flush(now, reason="full" if len(self._pcs) >= self.chunk_size
                       else "discontinuity")

    def flush(self, now: int, reason: str = "forced") -> None:
        """Terminate the pending instructions and push them to the LPQ.

        If a previous flush was blocked by a full LPQ, the pending run may
        have grown past the chunk size or even across a discontinuity
        (retirement of non-loads is not gated on LPQ room), so the pending
        instructions are emitted as proper chunks: split at every
        discontinuity and every ``chunk_size`` instructions.  Whatever
        does not fit in the LPQ right now stays pending.
        """
        while self._pcs:
            if self.lpq.full:
                self.lpq.stats.full_stalls += 1
                return  # retry on a later flush; stay pending
            length = 1
            while (length < min(self.chunk_size, len(self._pcs))
                   and self._pcs[length]
                   == (self._pcs[length - 1] + 1) % self.wrap):
                length += 1
            pcs = self._pcs[:length]
            hints = self._half_hints[:length]
            next_pc = (self._pcs[length] if length < len(self._pcs)
                       else self._next_pc)
            self.lpq.push(LpqChunk(
                start_pc=pcs[0], pcs=pcs, next_pc=next_pc, half_hints=hints,
                available_cycle=now + self.forward_latency))
            self._pcs = self._pcs[length:]
            self._half_hints = self._half_hints[length:]
        stats = self.lpq.stats
        if reason == "membar":
            stats.flush_membar += 1
        elif reason == "partial-store":
            stats.flush_partial_store += 1
        elif reason == "timeout":
            stats.flush_timeout += 1
        elif reason == "pressure":
            stats.flush_pressure += 1
        self._last_add_cycle = None

    def tick(self, now: int) -> None:
        """Timeout flush: leading retirement stalled with a partial chunk."""
        if (self._pcs and self._last_add_cycle is not None
                and now - self._last_add_cycle >= self.flush_timeout):
            self.flush(now, reason="timeout")

    def clear(self) -> None:
        """Drop the pending partial chunk (SRTR rollback)."""
        self._pcs = []
        self._half_hints = []
        self._next_pc = None
        self._last_add_cycle = None
