"""Machine models and the machine factory.

A *machine* is one single-chip device configuration from the paper:

- ``base`` — the base SMT processor (Section 3), one core, up to four
  independent logical threads;
- ``srt``  — the base core with SRT extensions (Section 4);
- ``lockstep`` — two cores running every logical thread twice in
  cycle-lockstep with a central checker (Section 5);
- ``crt``  — chip-level redundant threading across two cores (Section 5).

``make_machine(kind, config, programs)`` builds any of them.
"""

from typing import Dict, List, Optional

from repro.core.config import MachineConfig
from repro.core.metrics import (FaultEvent, RunResult, Termination,
                                ThreadResult)
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.pipeline.thread import HwThread, ThreadRole


class Machine:
    """Common run loop and result collection."""

    kind = "abstract"

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.memory: Dict[int, int] = {}
        self.cores: List[Core] = []
        self.hierarchies: List[MemoryHierarchy] = []
        self.fault_events: List[FaultEvent] = []
        self.injector = None  # optional repro.core.faults.FaultInjector
        self.watchdog = None  # repro.recovery.watchdog.ProgressWatchdog
        self.recovery = None  # repro.recovery.checkpoint.RecoveryManager
        self.abort_reason: Optional[Termination] = None
        self.now = 0
        # name -> the hardware thread whose retirement measures progress.
        self._measured: Dict[str, HwThread] = {}

    # -- to be populated by subclasses -------------------------------------
    def _register_logical_thread(self, name: str, thread: HwThread) -> None:
        if name in self._measured:
            raise ValueError(f"duplicate logical thread name {name!r}")
        self._measured[name] = thread

    def report_fault(self, cycle: int, kind: str, thread: int,
                     detail: str = "") -> None:
        event = FaultEvent(cycle, kind, thread, detail)
        self.fault_events.append(event)
        if self.recovery is not None:
            self.recovery.on_fault(event)

    def abort(self, reason: Termination) -> None:
        """Stop the run loop at the next cycle boundary with ``reason``.

        Used by the recovery manager when its checkpoint ring is
        exhausted: continuing to replay from the same corrupt state
        would loop forever, so the run terminates ``UNRECOVERABLE``.
        """
        self.abort_reason = reason

    # -- warm-up -----------------------------------------------------------------
    def warm(self, instructions: int = 5_000) -> None:
        """Warm caches and branch predictors before measuring.

        Mirrors the paper's methodology (Section 6.2: structures are
        warmed before statistics are collected).  The architectural
        executor walks each program's future path; the blocks it touches
        are installed in every hierarchy, and its branch outcomes train
        the conditional predictors of the cores that will run the thread.
        """
        from repro.isa.executor import FunctionalExecutor

        for name, hw in self._measured.items():
            executor = FunctionalExecutor(hw.program)
            cores = [core for core in self.cores
                     if any(t.program is hw.program for t in core.threads)]
            for step in executor.run(instructions):
                code_addr = hw.phys_addr(hw.program.pc_to_addr(step.pc))
                data_addr = None
                if step.load is not None:
                    data_addr = hw.phys_addr(step.load[0])
                elif step.store is not None:
                    data_addr = hw.phys_addr(step.store[0])
                for hierarchy in self.hierarchies:
                    for index in range(hierarchy.num_cores):
                        hierarchy.l1i[index].warm(code_addr)
                        if data_addr is not None:
                            hierarchy.l1d[index].warm(data_addr)
                    hierarchy.l2.warm(code_addr)
                    if data_addr is not None:
                        hierarchy.l2.warm(data_addr)
                if step.instr.is_conditional:
                    for core in cores:
                        for thread in core.threads:
                            if (thread.program is hw.program
                                    and not thread.is_trailing):
                                predicted = (
                                    core.branch_predictor.predict_conditional(
                                        thread.tid, step.pc))
                                core.branch_predictor.update_conditional(
                                    thread.tid, step.pc, step.taken, predicted)

    # -- run loop ---------------------------------------------------------------
    def run(self, max_instructions: int = 10_000,
            max_cycles: Optional[int] = None,
            warmup: int = 0) -> RunResult:
        """Run every logical thread for ``max_instructions`` retirements.

        Threads keep executing after reaching their target (so contention
        stays realistic); each thread's IPC is frozen at the cycle it hit
        its own target, the Section 6.4 methodology.
        """
        if warmup:
            self.warm(warmup)
        if max_cycles is None:
            max_cycles = max_instructions * 60 + 20_000
        self._arm(max_instructions)
        while self.now < max_cycles:
            if self._halted():
                break
            self.step()
        return self._finish(max_instructions, max_cycles)

    # -- run-loop pieces (shared with harness.tracing.OccupancySampler) ----
    def _arm(self, max_instructions: int) -> None:
        """Set retirement targets and attach the forward-progress watchdog."""
        for thread in self._measured.values():
            thread.target_instructions = max_instructions
        if self.watchdog is None and self.config.watchdog_interval > 0:
            from repro.recovery.watchdog import ProgressWatchdog

            self.watchdog = ProgressWatchdog(
                self, interval=self.config.watchdog_interval,
                window=self.config.watchdog_window)

    def _halted(self) -> bool:
        """True when the run loop must stop before ``max_cycles``."""
        if self.abort_reason is not None:
            return True
        if self.watchdog is not None and self.watchdog.verdict is not None:
            return True
        return all(t.stats.done_cycle is not None or t.done
                   for t in self._measured.values())

    def _finish(self, max_instructions: int, max_cycles: int) -> RunResult:
        """Drain, resolve the termination verdict, and collect results."""
        drained = True
        wedged = (self.abort_reason is not None
                  or (self.watchdog is not None
                      and self.watchdog.verdict is not None))
        if not wedged:
            drained = self._drain(max_cycles)
        if self.recovery is not None:
            self.recovery.finalize()
        result = self._collect(max_instructions)
        result.drain_truncated = not drained

        from repro.harness.tracing import log_run_warning

        incomplete = any(t.stats.done_cycle is None and not t.done
                         for t in self._measured.values())
        if self.abort_reason is not None:
            result.termination = self.abort_reason
            if self.recovery is not None:
                result.recovery = self.recovery.stats.summary()
            log_run_warning(
                f"{self.kind}: run aborted {result.termination.value} "
                f"at cycle {self.now}")
        elif self.watchdog is not None and self.watchdog.verdict is not None:
            result.termination = self.watchdog.verdict
            if self.watchdog.report is not None:
                result.hang_report = self.watchdog.report.to_dict()
                # One line to the log; full forensics live in the result
                # (a campaign of wedged runs must not flood stderr).
                log_run_warning(
                    f"{self.kind}: "
                    + self.watchdog.report.format().splitlines()[0].lstrip("# "))
            if self.recovery is not None:
                result.recovery = self.recovery.stats.summary()
        elif incomplete:
            result.termination = Termination.CYCLE_LIMIT
            lagging = sorted(
                name for name, t in self._measured.items()
                if t.stats.done_cycle is None and not t.done)
            log_run_warning(
                f"{self.kind}: cycle limit {max_cycles} reached before "
                f"{', '.join(lagging)} hit the {max_instructions}-instruction "
                f"target (termination=cycle-limit, not a completed run)")
            if self.recovery is not None:
                result.recovery = self.recovery.stats.summary()
        else:
            if self.recovery is not None:
                result.recovery = self.recovery.stats.summary()
                if self.recovery.stats.recoveries:
                    result.termination = Termination.RECOVERED
            if not drained:
                log_run_warning(
                    f"{self.kind}: drain grace expired at cycle {self.now} "
                    f"with stores still queued; final memory image may be "
                    f"incomplete")
        return result

    def _drain(self, max_cycles: int, grace: int = 20_000) -> bool:
        """Let in-flight stores leave the machine after the measured
        threads finish (trailing threads may still need to retire their
        copies so leading stores can verify and drain).

        Only needed when a program actually terminated (HALT): the final
        memory image must include its last stores.  Instruction-count
        runs of non-terminating workloads skip this — their store queues
        are never durably empty and their IPCs were frozen at the target
        already.

        Returns ``True`` when the drain completed (or was not needed) and
        ``False`` when the grace deadline expired with stores still
        queued — a truncated final memory image the caller must surface.
        """
        if not any(thread.done for thread in self._measured.values()):
            return True
        deadline = min(self.now + grace, max_cycles + grace)
        while self.now < deadline:
            if not any(thread.store_queue
                       for core in self.cores for thread in core.threads):
                return True
            self.step()
        return not any(thread.store_queue
                       for core in self.cores for thread in core.threads)

    def step(self) -> None:
        if self.injector is not None:
            self.injector.tick(self.now)
        for core in self.cores:
            core.tick(self.now)
        self._post_tick()
        if self.recovery is not None:
            self.recovery.tick(self.now)
        for hierarchy in self.hierarchies:
            hierarchy.tick(self.now)
        self.now += 1
        if self.watchdog is not None:
            self.watchdog.observe(self.now)

    def _post_tick(self) -> None:
        """Machine-specific per-cycle work (RMT controllers etc.)."""

    # -- results ---------------------------------------------------------------------
    def _collect(self, target: int) -> RunResult:
        threads = []
        for name, hw in self._measured.items():
            cycles = hw.stats.done_cycle
            if cycles is None:
                cycles = self.now
            threads.append(ThreadResult(name=name, retired=min(
                hw.stats.retired, target), cycles=cycles))
        return RunResult(kind=self.kind, cycles=self.now, threads=threads,
                         fault_events=list(self.fault_events),
                         stats=self.machine_stats())

    def machine_stats(self) -> Dict[str, float]:
        stats: Dict[str, float] = {}
        for core in self.cores:
            prefix = f"core{core.core_id}."
            stats[prefix + "cycles"] = core.stats.cycles
            stats[prefix + "retired"] = core.stats.retired_total
            stats[prefix + "squashes"] = core.stats.squashes
            stats[prefix + "line_mispredict_rate"] = (
                core.line_predictor.stats.misprediction_rate)
            stats[prefix + "branch_mispredict_rate"] = (
                core.branch_predictor.stats.conditional_misprediction_rate)
            for thread in core.threads:
                tprefix = f"{prefix}t{thread.tid}."
                ts = thread.stats
                stats[tprefix + "retired"] = ts.retired
                stats[tprefix + "mispredicts"] = ts.branch_mispredicts
                stats[tprefix + "misfetches"] = ts.misfetches
                stats[tprefix + "violations"] = ts.memory_violations
                stats[tprefix + "squashed"] = ts.squashed_uops
                if ts.store_lifetime_count:
                    stats[tprefix + "store_lifetime_avg"] = (
                        ts.store_lifetime_sum / ts.store_lifetime_count)
        for hierarchy in self.hierarchies:
            stats.update(hierarchy.stats_summary())
        if self.recovery is not None:
            stats.update(self.recovery.machine_stats())
        return stats


def partition(total: int, parts: int) -> int:
    """Static partitioning of a shared structure (Section 3.4)."""
    return total // max(parts, 1)


class BaseMachine(Machine):
    """The base SMT processor running independent logical threads.

    ``duplicate`` runs every program twice as two independent hardware
    threads with *separate* address spaces and no replication/comparison
    — the paper's "Base2" reference point in Figure 6.
    """

    kind = "base"

    def __init__(self, config: MachineConfig, programs: List[Program],
                 duplicate: bool = False) -> None:
        super().__init__(config)
        hierarchy = MemoryHierarchy(config.hierarchy, num_cores=1)
        self.hierarchies.append(hierarchy)
        core = Core(0, config.core, hierarchy, self.memory,
                    trailing_priority=config.trailing_priority)
        self.cores.append(core)

        copies = 2 if duplicate else 1
        hw_count = len(programs) * copies
        lq = partition(config.core.load_queue_entries, hw_count)
        sq = partition(config.core.store_queue_entries, hw_count)
        asid = 0
        for program in programs:
            for copy in range(copies):
                thread = core.add_thread(program, ThreadRole.SINGLE,
                                         asid=asid, lq_capacity=lq,
                                         sq_capacity=sq)
                asid += 1
                if copy == 0:
                    self._register_logical_thread(program.name, thread)


def make_machine(kind: str, config: MachineConfig,
                 programs: List[Program], **kwargs) -> Machine:
    """Build a machine by kind: base / base2 / srt / lockstep / crt."""
    from repro.core.crt import CrtMachine
    from repro.core.lockstep import LockstepMachine
    from repro.core.srt import SrtMachine

    kinds = {
        "base": lambda: BaseMachine(config, programs, **kwargs),
        "base2": lambda: BaseMachine(config, programs, duplicate=True,
                                     **kwargs),
        "srt": lambda: SrtMachine(config, programs, **kwargs),
        "lockstep": lambda: LockstepMachine(config, programs, **kwargs),
        "crt": lambda: CrtMachine(config, programs, **kwargs),
    }
    try:
        builder = kinds[kind]
    except KeyError:
        raise ValueError(
            f"unknown machine kind {kind!r}; expected one of {sorted(kinds)}"
        ) from None
    return builder()
