"""The paper's contributions: SRT, lockstep, and CRT machines."""

from repro.core.config import MachineConfig
from repro.core.crt import CrtMachine
from repro.core.faults import (Fault, FaultInjector, FaultOutcome,
                               StuckFunctionalUnit, TransientRegisterFault,
                               TransientResultFault, classify_outcome,
                               run_fault_experiment)
from repro.core.lockstep import LockstepChecker, LockstepMachine
from repro.core.lpq import ChunkAggregator, LinePredictionQueue, LpqChunk
from repro.core.lvq import LoadValueQueue
from repro.core.machine import BaseMachine, Machine, make_machine
from repro.core.metrics import (FaultEvent, RunResult, ThreadResult,
                                arithmetic_mean, mean_smt_efficiency,
                                smt_efficiency)
from repro.core.psr import FuCorrespondenceTracker, PsrStats
from repro.core.rmt import RedundantPair, RmtController
from repro.core.sphere import SphereOfReplication
from repro.core.srt import SrtMachine
from repro.core.store_comparator import StoreComparator

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultOutcome",
    "StuckFunctionalUnit",
    "TransientRegisterFault",
    "TransientResultFault",
    "classify_outcome",
    "run_fault_experiment",
    "MachineConfig",
    "Machine",
    "BaseMachine",
    "SrtMachine",
    "LockstepMachine",
    "LockstepChecker",
    "CrtMachine",
    "make_machine",
    "RunResult",
    "ThreadResult",
    "FaultEvent",
    "smt_efficiency",
    "mean_smt_efficiency",
    "arithmetic_mean",
    "LoadValueQueue",
    "LinePredictionQueue",
    "ChunkAggregator",
    "LpqChunk",
    "StoreComparator",
    "SphereOfReplication",
    "RmtController",
    "RedundantPair",
    "FuCorrespondenceTracker",
    "PsrStats",
]
