"""Preferential space redundancy (Section 4.5).

The leading thread records which instruction-queue half each
instruction traversed; the line prediction queue carries those bits to
the trailing thread's fetch, and the QBOX steers the corresponding
trailing instructions to the *opposite* half — guaranteeing physically
distinct queue entries and (because each half owns its own functional-
unit partition) distinct functional units.

:class:`FuCorrespondenceTracker` measures the paper's Figure 7
statistic: the fraction of corresponding instruction pairs that executed
on the very same functional unit instance (time redundancy only).
Without PSR roughly 65% of pairs share a unit; with PSR nearly none do.
"""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class PsrStats:
    pairs: int = 0
    same_unit: int = 0
    same_half: int = 0
    steering_fallbacks: int = 0   # opposite half full, had to share

    @property
    def same_unit_fraction(self) -> float:
        return self.same_unit / self.pairs if self.pairs else 0.0

    @property
    def same_half_fraction(self) -> float:
        return self.same_half / self.pairs if self.pairs else 0.0


class FuCorrespondenceTracker:
    """Pairs leading/trailing retired instructions by retirement index."""

    def __init__(self) -> None:
        self.stats = PsrStats()
        self._leading_seen = 0
        self._trailing_seen = 0
        self._leading_records: Dict[int, Tuple[Optional[tuple],
                                               Optional[int]]] = {}

    def leading_retired(self, fu: Optional[tuple],
                        queue_half: Optional[int]) -> None:
        self._leading_records[self._leading_seen] = (fu, queue_half)
        self._leading_seen += 1

    def trailing_retired(self, fu: Optional[tuple],
                         queue_half: Optional[int]) -> None:
        index = self._trailing_seen
        self._trailing_seen += 1
        record = self._leading_records.pop(index, None)
        if record is None:
            return
        lead_fu, lead_half = record
        if lead_fu is None or fu is None:
            return
        self.stats.pairs += 1
        if lead_fu == fu:
            self.stats.same_unit += 1
        if lead_half is not None and lead_half == queue_half:
            self.stats.same_half += 1
