"""Run results and the paper's SMT-Efficiency metric (Section 6.4).

SMT-Efficiency of a thread = IPC of the thread in the evaluated
configuration divided by its IPC running alone, single-threaded, on the
base machine.  The figure-of-merit for a workload is the arithmetic mean
over its logical threads — Snavely & Tullsen's weighted speedup.
"""

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ThreadResult:
    """Measured outcome for one *logical* thread (program)."""

    name: str
    retired: int
    cycles: int              # cycle at which this thread hit its target

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0


@dataclass
class FaultEvent:
    """A detected redundancy violation (output mismatch / divergence)."""

    cycle: int
    kind: str
    thread: int
    detail: str = ""


@dataclass
class RunResult:
    """Everything a machine run produced."""

    kind: str                         # machine kind: base/srt/lockstep/crt
    cycles: int                       # total cycles simulated
    threads: List[ThreadResult]       # one per logical thread
    fault_events: List[FaultEvent] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)

    def ipc_of(self, name: str) -> float:
        for thread in self.threads:
            if thread.name == name:
                return thread.ipc
        raise KeyError(f"no logical thread named {name!r}")

    def ipc_per_logical_thread(self) -> Dict[str, float]:
        return {t.name: t.ipc for t in self.threads}

    @property
    def total_ipc(self) -> float:
        return sum(t.ipc for t in self.threads)

    @property
    def faults_detected(self) -> int:
        return len(self.fault_events)


def smt_efficiency(result: RunResult,
                   baseline_ipc: Dict[str, float]) -> Dict[str, float]:
    """Per-logical-thread SMT-Efficiency against single-thread base IPCs."""
    efficiencies: Dict[str, float] = {}
    for thread in result.threads:
        base = baseline_ipc.get(thread.name)
        if base is None:
            raise KeyError(f"no baseline IPC for {thread.name!r}")
        efficiencies[thread.name] = thread.ipc / base if base else 0.0
    return efficiencies


def mean_smt_efficiency(result: RunResult,
                        baseline_ipc: Dict[str, float]) -> float:
    """Arithmetic mean of per-thread efficiencies (weighted speedup)."""
    values = smt_efficiency(result, baseline_ipc)
    return sum(values.values()) / len(values) if values else 0.0


def arithmetic_mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0
