"""Run results and the paper's SMT-Efficiency metric (Section 6.4).

SMT-Efficiency of a thread = IPC of the thread in the evaluated
configuration divided by its IPC running alone, single-threaded, on the
base machine.  The figure-of-merit for a workload is the arithmetic mean
over its logical threads — Snavely & Tullsen's weighted speedup.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Termination(enum.Enum):
    """How a machine run ended (the robustness taxonomy).

    The paper's SRT/CRT designs are detection-only; a wedged pipeline is
    as real an outcome as a store mismatch, so every run carries an
    explicit termination class instead of silently truncating:

    - ``DONE``          — every measured thread reached its target (or
      halted) and the machine drained cleanly;
    - ``CYCLE_LIMIT``   — the cycle budget (or the post-halt drain grace
      window) expired before the targets were met;
    - ``HUNG``          — the forward-progress watchdog saw *no* retirement
      and no speculative activity across its window: a true deadlock
      (e.g. LVQ slack exhaustion, store-queue starvation);
    - ``LIVELOCK``      — no measured retirement, but the machine kept
      churning (squashes, misfetches, spinning unmeasured threads);
    - ``RECOVERED``     — one or more SRTR-style rollbacks occurred and
      the run still completed (transient fault corrected);
    - ``UNRECOVERABLE`` — rollback-and-replay kept re-detecting faults
      until the retry budget ran out (permanent fault or corrupted
      checkpoint).
    """

    DONE = "done"
    CYCLE_LIMIT = "cycle-limit"
    HUNG = "hung"
    LIVELOCK = "livelock"
    RECOVERED = "recovered"
    UNRECOVERABLE = "unrecoverable"

    @property
    def is_wedged(self) -> bool:
        return self in (Termination.HUNG, Termination.LIVELOCK)


@dataclass
class ThreadResult:
    """Measured outcome for one *logical* thread (program)."""

    name: str
    retired: int
    cycles: int              # cycle at which this thread hit its target

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0


@dataclass
class FaultEvent:
    """A detected redundancy violation (output mismatch / divergence)."""

    cycle: int
    kind: str
    thread: int
    detail: str = ""


@dataclass
class RunResult:
    """Everything a machine run produced."""

    kind: str                         # machine kind: base/srt/lockstep/crt
    cycles: int                       # total cycles simulated
    threads: List[ThreadResult]       # one per logical thread
    fault_events: List[FaultEvent] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)
    #: How the run ended (never silently truncated).
    termination: Termination = Termination.DONE
    #: Watchdog forensics (a plain dict, see repro.recovery.watchdog) —
    #: populated when the run ended HUNG/LIVELOCK.
    hang_report: Optional[Dict[str, object]] = None
    #: SRTR recovery summary (repro.recovery.checkpoint) when rollbacks
    #: happened or recovery mode was enabled.
    recovery: Optional[Dict[str, object]] = None
    #: True when the post-halt drain grace window expired with stores
    #: still queued (the final memory image may be incomplete).
    drain_truncated: bool = False

    def ipc_of(self, name: str) -> float:
        for thread in self.threads:
            if thread.name == name:
                return thread.ipc
        raise KeyError(f"no logical thread named {name!r}")

    def ipc_per_logical_thread(self) -> Dict[str, float]:
        return {t.name: t.ipc for t in self.threads}

    @property
    def total_ipc(self) -> float:
        return sum(t.ipc for t in self.threads)

    @property
    def faults_detected(self) -> int:
        return len(self.fault_events)

    @property
    def completed(self) -> bool:
        """Did every measured thread reach its target?"""
        return self.termination in (Termination.DONE, Termination.RECOVERED)

    def to_dict(self) -> Dict[str, object]:
        """JSON-able structured form (serve jobs, machine consumers).

        Deterministic by construction — no wall-clock fields — so the
        serve layer can cache it content-addressed.
        """
        return {
            "kind": self.kind,
            "cycles": self.cycles,
            "termination": self.termination.value,
            "threads": [
                {"name": t.name, "retired": t.retired, "cycles": t.cycles,
                 "ipc": t.ipc}
                for t in self.threads
            ],
            "fault_events": [
                {"cycle": e.cycle, "kind": e.kind, "thread": e.thread,
                 "detail": e.detail}
                for e in self.fault_events
            ],
            "stats": dict(self.stats),
            "hang_report": self.hang_report,
            "recovery": self.recovery,
            "drain_truncated": self.drain_truncated,
        }


def smt_efficiency(result: RunResult,
                   baseline_ipc: Dict[str, float]) -> Dict[str, float]:
    """Per-logical-thread SMT-Efficiency against single-thread base IPCs."""
    efficiencies: Dict[str, float] = {}
    for thread in result.threads:
        base = baseline_ipc.get(thread.name)
        if base is None:
            raise KeyError(f"no baseline IPC for {thread.name!r}")
        efficiencies[thread.name] = thread.ipc / base if base else 0.0
    return efficiencies


def mean_smt_efficiency(result: RunResult,
                        baseline_ipc: Dict[str, float]) -> float:
    """Arithmetic mean of per-thread efficiencies (weighted speedup)."""
    values = smt_efficiency(result, baseline_ipc)
    return sum(values.values()) / len(values) if values else 0.0


def arithmetic_mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ServiceCounters moved to the observability layer (repro.obs.metrics)
# when it grew a lock and atomic multi-field updates; re-exported here
# because this module is its historical home and the serve layer's
# public import path.
from repro.obs.metrics import ServiceCounters  # noqa: E402

__all__ = [
    "FaultEvent", "RunResult", "ServiceCounters", "Termination",
    "ThreadResult", "arithmetic_mean", "mean_smt_efficiency",
    "smt_efficiency",
]
