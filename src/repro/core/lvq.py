"""The load value queue (LVQ) — input replication for cached loads.

As each leading-thread load retires, its address and value are written
to the LVQ (protected by ECC — the LVQ is inside neither the data cache
nor the sphere, so fault injection never targets it).  Trailing-thread
loads bypass the load queue and data cache entirely and read the LVQ
instead.

Unlike the original SRT proposal's strict FIFO, our base processor
issues up to three loads per cycle out of order, so the LVQ supports
associative lookup by a *load correlation tag* — the program-order load
index assigned at rename, identical in both redundant threads
(Section 4.1).  Entries become visible to the trailing thread after the
QBOX-to-MBOX forwarding latency (plus the cross-core latency under CRT).
"""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class LvqStats:
    writes: int = 0
    reads: int = 0
    full_stalls: int = 0
    address_mismatches: int = 0
    peak_occupancy: int = 0


@dataclass
class LvqEntry:
    load_index: int
    addr: int
    value: int
    available_cycle: int


class LoadValueQueue:
    def __init__(self, capacity: int = 64, forward_latency: int = 2) -> None:
        self.capacity = capacity
        self.forward_latency = forward_latency
        self.stats = LvqStats()
        self._entries: Dict[int, LvqEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def has_room(self) -> bool:
        if self.full:
            self.stats.full_stalls += 1
            return False
        return True

    def write(self, load_index: int, addr: int, value: int, now: int) -> None:
        """Record a retiring leading-thread load."""
        if self.full:
            raise RuntimeError("LVQ overflow: caller must gate retirement "
                               "on has_room()")
        self._entries[load_index] = LvqEntry(
            load_index, addr, value, now + self.forward_latency)
        self.stats.writes += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy,
                                        len(self._entries))

    def probe(self, load_index: int, now: int) -> Optional[Tuple[int, int]]:
        """Associative lookup by tag; None until the entry has arrived."""
        entry = self._entries.get(load_index)
        if entry is None or now < entry.available_cycle:
            return None
        return entry.addr, entry.value

    def consume(self, load_index: int) -> None:
        self._entries.pop(load_index, None)
        self.stats.reads += 1

    def clear(self) -> None:
        self._entries.clear()
