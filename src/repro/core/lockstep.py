"""Lockstepped dual-core machine (Section 5, Figure 1b).

Both cores execute every logical thread, cycle-for-cycle.  Because the
two cores are deterministic and identically configured, each gets its
own *private* memory-path timing model (the checker forwards a single
miss request outside the sphere, so both cores observe identical miss
latencies) and its own architectural memory image (so a fault injected
into one core cannot leak into the other through memory).

The checker:

- charges ``checker_latency`` cycles on every L1 miss request — all
  signals leaving the sphere must be compared before being forwarded,
  which puts the checker on the critical path of cache misses (Lock0 is
  an idealised zero-cycle checker, Lock8 a realistic 8-cycle one);
- compares the two cores' drained-store streams per thread and flags
  mismatches as detected faults.
"""

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.core.config import MachineConfig
from repro.core.machine import Machine, partition
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.pipeline.hooks import CoreHooks
from repro.pipeline.thread import HwThread, ThreadRole
from repro.pipeline.uop import Uop


class LockstepChecker(CoreHooks):
    """Central checker comparing the two cores' output (store) streams."""

    def __init__(self, machine: "LockstepMachine") -> None:
        self.machine = machine
        # (core_id, tid) -> fifo of (op, addr, value)
        self._streams: Dict[Tuple[int, int], Deque[Tuple[str, int, int]]] = {}
        self.comparisons = 0
        self.mismatches = 0

    def on_store_drained(self, core: Core, thread: HwThread, uop: Uop,
                         now: int) -> None:
        key = (core.core_id, thread.tid)
        self._streams.setdefault(key, deque()).append(
            (uop.instr.op.name, uop.mem_addr, uop.store_value))
        self._compare(thread.tid, now)

    def _compare(self, tid: int, now: int) -> None:
        stream0 = self._streams.get((0, tid))
        stream1 = self._streams.get((1, tid))
        while stream0 and stream1:
            a = stream0.popleft()
            b = stream1.popleft()
            self.comparisons += 1
            if a != b:
                self.mismatches += 1
                self.machine.report_fault(
                    now, "lockstep-output-mismatch", tid,
                    detail=f"core0 {a} vs core1 {b}")


class LockstepMachine(Machine):
    kind = "lockstep"

    def __init__(self, config: MachineConfig, programs: List[Program],
                 checker_latency: int = None, mirrored: bool = False) -> None:
        """``mirrored`` simulates only core 0.

        The two lockstepped cores are deterministic and identically
        configured, so core 1 is an exact mirror: simulating it adds
        output comparison (needed for fault experiments) but no
        performance information.  Mirrored mode halves simulation time
        for long fault-free sweeps; tests assert both modes time
        identically.
        """
        super().__init__(config)
        if checker_latency is None:
            checker_latency = config.checker_latency
        self.checker_latency = checker_latency
        self.mirrored = mirrored
        self.checker = LockstepChecker(self)
        self.memories: List[Dict[int, int]] = [{}, {}]

        hw_count = len(programs)
        lq = partition(config.core.load_queue_entries, hw_count)
        sq = partition(config.core.store_queue_entries, hw_count)

        for core_id in range(1 if mirrored else 2):
            hier_config = type(config.hierarchy)(**vars(config.hierarchy))
            hier_config.checker_latency = checker_latency
            hierarchy = MemoryHierarchy(hier_config, num_cores=1)
            self.hierarchies.append(hierarchy)
            core = Core(core_id, config.core, hierarchy,
                        self.memories[core_id], hooks=self.checker,
                        trailing_priority=config.trailing_priority)
            # Stores, like all outputs, are compared before leaving the
            # sphere of replication.
            core.store_release_delay = checker_latency
            # Both cores report themselves as core 0 to their private
            # hierarchy but keep distinct ids for the checker.
            self.cores.append(core)
            for index, program in enumerate(programs):
                thread = core.add_thread(program, ThreadRole.SINGLE,
                                         asid=index, lq_capacity=lq,
                                         sq_capacity=sq)
                if core_id == 0:
                    self._register_logical_thread(program.name, thread)

        # memory property kept for interface parity; core 0's image.
        self.memory = self.memories[0]


    def machine_stats(self):
        stats = super().machine_stats()
        stats["checker.comparisons"] = self.checker.comparisons
        stats["checker.mismatches"] = self.checker.mismatches
        stats["checker.latency"] = self.checker_latency
        return stats
