"""The SRT machine: the base SMT core plus SRT extensions (Section 4).

Each logical thread becomes a leading/trailing hardware-thread pair on
the single core.  Resource partitioning follows the paper:

- Load queue: trailing loads bypass it, so each *leading* thread gets
  the full per-logical-thread share (64 entries for one program, 32
  each for two).
- Store queue: statically partitioned among all hardware threads (32/32
  for one program; 16 each for two programs), unless
  ``per_thread_store_queues`` (ptsq) gives every hardware thread its own
  64 entries.
- ``store_comparison=False`` (nosc) removes output comparison: leading
  stores release at retirement, an upper bound on SRT performance.
"""

from typing import List

from repro.core.config import MachineConfig
from repro.core.machine import Machine, partition
from repro.core.rmt import RmtController
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.pipeline.thread import ThreadRole


class SrtMachine(Machine):
    kind = "srt"

    def __init__(self, config: MachineConfig, programs: List[Program]) -> None:
        super().__init__(config)
        if 2 * len(programs) > config.core.num_thread_contexts:
            raise ValueError(
                f"{len(programs)} logical threads need "
                f"{2 * len(programs)} contexts, have "
                f"{config.core.num_thread_contexts}")
        hierarchy = MemoryHierarchy(config.hierarchy, num_cores=1)
        self.hierarchies.append(hierarchy)
        self.controller = RmtController(self, config)
        core = Core(0, config.core, hierarchy, self.memory,
                    hooks=self.controller,
                    trailing_priority=config.trailing_priority)
        self.cores.append(core)

        hw_count = 2 * len(programs)
        if config.per_thread_store_queues:
            sq = config.core.store_queue_entries
        else:
            sq = partition(config.core.store_queue_entries, hw_count)
        # Trailing threads free their load-queue share for the leading
        # thread (Section 4.1).
        lq = partition(config.core.load_queue_entries, len(programs))

        for index, program in enumerate(programs):
            leading = core.add_thread(program, ThreadRole.LEADING,
                                      asid=index, lq_capacity=lq,
                                      sq_capacity=sq)
            trailing = core.add_thread(program, ThreadRole.TRAILING,
                                       asid=index, lq_capacity=0,
                                       sq_capacity=sq)
            if config.trailing_fetch_mode == "predictors":
                trailing.fetch_via_lpq = False
            self.controller.create_pair(program.name, leading, trailing)
            self._register_logical_thread(program.name, leading)

        if config.recovery_enabled:
            from repro.recovery.checkpoint import RecoveryManager

            self.recovery = RecoveryManager(self, self.controller)

    def _post_tick(self) -> None:
        self.controller.tick(self.now)

    def machine_stats(self):
        stats = super().machine_stats()
        for pair in self.controller.pairs:
            prefix = f"pair.{pair.name}."
            stats[prefix + "lvq_peak"] = pair.lvq.stats.peak_occupancy
            stats[prefix + "lpq_chunk_len"] = pair.lpq.stats.mean_chunk_length
            stats[prefix + "lpq_rollbacks"] = pair.lpq.stats.rollbacks
            stats[prefix + "comparisons"] = pair.comparator.stats.comparisons
            stats[prefix + "same_unit_fraction"] = (
                pair.tracker.stats.same_unit_fraction)
            stats[prefix + "inputs_replicated"] = (
                pair.sphere.inputs_replicated)
        return stats
