"""The CRT machine: chip-level redundant threading (Section 5).

As in SRT, threads are loosely synchronised leading/trailing pairs; as
in lockstepping, the two copies run on physically separate cores.  The
cross-coupling is the key idea: with multiple logical threads, each core
runs the *leading* thread of one program and the *trailing* thread of
another, so the resources a trailing thread frees (no misspeculation, no
data-cache or load-queue use) are spent on the other program's
resource-hungry leading thread.

All forwarded traffic (line predictions, load values, store
comparisons) pays the cross-core latency, but those queues decouple the
threads and are not on the critical path of data accesses — unlike a
lockstep checker.
"""

from typing import List

from repro.core.config import MachineConfig
from repro.core.machine import Machine, partition
from repro.core.rmt import RmtController
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.pipeline.thread import ThreadRole


class CrtMachine(Machine):
    kind = "crt"

    def __init__(self, config: MachineConfig, programs: List[Program],
                 num_cores: int = 2) -> None:
        super().__init__(config)
        hierarchy = MemoryHierarchy(config.hierarchy, num_cores=num_cores)
        self.hierarchies.append(hierarchy)
        self.controller = RmtController(self, config)
        for core_id in range(num_cores):
            self.cores.append(Core(
                core_id, config.core, hierarchy, self.memory,
                hooks=self.controller,
                trailing_priority=config.trailing_priority))

        # Leading thread of program i on core i%2; its trailing thread on
        # the other core (Figure 5's cross-coupled arrangement).
        placements = []
        for index, program in enumerate(programs):
            lead_core = index % num_cores
            trail_core = (index + 1) % num_cores
            placements.append((index, program, lead_core, trail_core))

        # Per-core hardware-thread counts determine static partitions.
        threads_per_core = [0] * num_cores
        leads_per_core = [0] * num_cores
        for index, program, lead_core, trail_core in placements:
            threads_per_core[lead_core] += 1
            threads_per_core[trail_core] += 1
            leads_per_core[lead_core] += 1

        for index, program, lead_core, trail_core in placements:
            if config.per_thread_store_queues:
                sq_lead = sq_trail = config.core.store_queue_entries
            else:
                sq_lead = partition(config.core.store_queue_entries,
                                    threads_per_core[lead_core])
                sq_trail = partition(config.core.store_queue_entries,
                                     threads_per_core[trail_core])
            lq = partition(config.core.load_queue_entries,
                           max(leads_per_core[lead_core], 1))
            leading = self.cores[lead_core].add_thread(
                program, ThreadRole.LEADING, asid=index,
                lq_capacity=lq, sq_capacity=sq_lead)
            trailing = self.cores[trail_core].add_thread(
                program, ThreadRole.TRAILING, asid=index,
                lq_capacity=0, sq_capacity=sq_trail)
            if config.trailing_fetch_mode == "predictors":
                trailing.fetch_via_lpq = False
            self.controller.create_pair(
                program.name, leading, trailing,
                cross_latency=(config.crt_cross_latency
                               if lead_core != trail_core else 0))
            self._register_logical_thread(program.name, leading)

        if config.recovery_enabled:
            from repro.recovery.checkpoint import RecoveryManager

            self.recovery = RecoveryManager(self, self.controller)

    def _post_tick(self) -> None:
        self.controller.tick(self.now)

    def machine_stats(self):
        stats = super().machine_stats()
        for pair in self.controller.pairs:
            prefix = f"pair.{pair.name}."
            stats[prefix + "lvq_peak"] = pair.lvq.stats.peak_occupancy
            stats[prefix + "comparisons"] = pair.comparator.stats.comparisons
            stats[prefix + "same_unit_fraction"] = (
                pair.tracker.stats.same_unit_fraction)
        return stats
