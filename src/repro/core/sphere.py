"""Sphere-of-replication accounting (Section 2).

The sphere chosen in the paper (and here) contains the processor
pipeline(s) and register files but excludes the L1 instruction and data
caches.  Everything crossing the boundary is tallied: values entering
must be replicated (cached load values via the LVQ; instruction values
are read-only and need no replication), values leaving must be compared
(cacheable stores via the store comparator).

This bookkeeping is what the fault-coverage experiments reason about:
faults inside the sphere are detectable through output comparison;
structures outside it (caches, LVQ, forwarding wires) need ECC/parity.
"""

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SphereOfReplication:
    """Counters for one redundant thread pair's sphere boundary."""

    name: str = "sphere"
    inputs_replicated: int = 0       # LVQ writes (cached load values)
    outputs_compared: int = 0        # store comparisons
    outputs_forwarded: int = 0       # verified stores released outside
    mismatches: int = 0              # detected faults at the boundary
    uncovered: Dict[str, int] = field(default_factory=dict)

    def record_input(self, count: int = 1) -> None:
        self.inputs_replicated += count

    def record_comparison(self, matched: bool) -> None:
        self.outputs_compared += 1
        if not matched:
            self.mismatches += 1

    def record_forwarded(self) -> None:
        self.outputs_forwarded += 1

    def record_uncovered(self, kind: str) -> None:
        """An event outside the sphere that relies on information
        redundancy instead (e.g. an ECC-protected LVQ access)."""
        self.uncovered[kind] = self.uncovered.get(kind, 0) + 1

    def summary(self) -> Dict[str, int]:
        return {
            "inputs_replicated": self.inputs_replicated,
            "outputs_compared": self.outputs_compared,
            "outputs_forwarded": self.outputs_forwarded,
            "mismatches": self.mismatches,
        }
