"""Fault injection and detection-coverage classification.

The paper's motivation is detecting *transient* faults (particle
strikes) and, with preferential space redundancy, many *permanent*
faults (manufacturing defects, electromigration, stuck boot-time
latches).  The injector models both:

- :class:`TransientRegisterFault` — flip one bit of one physical
  register at one cycle (a struck latch);
- :class:`TransientResultFault` — flip one bit of the next result
  computed on a core at/after a cycle (a struck ALU/latch in flight);
- :class:`StuckFunctionalUnit` — a permanent fault: every result
  produced by one specific functional-unit instance is corrupted.
  Without preferential space redundancy, corresponding leading and
  trailing instructions frequently execute on the *same* unit, so both
  copies are corrupted identically and the fault escapes detection;
  PSR forces them apart (Section 4.5).

Outcomes are classified against the golden architectural model:

- ``DETECTED`` — the machine raised a fault event (store mismatch, LVQ
  address mismatch, control-flow divergence, lockstep mismatch);
- ``MASKED``   — no detection, and the retired instruction stream of the
  measured thread still matches the functional executor (the corrupted
  value was architecturally dead or overwritten);
- ``SDC``      — silent data corruption: no detection, wrong stream;
- ``HUNG``     — the run stopped making progress (fault corrupted
  control state beyond recovery); the forward-progress watchdog
  (:mod:`repro.recovery.watchdog`) renders the verdict and its
  forensics travel on the report;
- ``RECOVERED`` — detection fired *and* SRTR-style rollback-and-replay
  (:mod:`repro.recovery.checkpoint`) completed the run with a correct
  final state;
- ``UNRECOVERABLE`` — detection fired but every retained checkpoint
  replayed back into a detection (permanent fault, or corruption older
  than the checkpoint ring).
"""

import dataclasses
import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.machine import Machine
from repro.core.metrics import Termination
from repro.isa.executor import FunctionalExecutor
from repro.isa.instructions import FuClass
from repro.pipeline.uop import Uop
from repro.util.bits import flip_bit


class FaultOutcome(enum.Enum):
    DETECTED = "detected"
    MASKED = "masked"
    LATENT = "latent"             # execution diverged, but no wrong value
    SDC = "silent-data-corruption"  # has left the sphere undetected (yet)
    HUNG = "hung"
    RECOVERED = "recovered"          # detected + replayed clean (SRTR)
    UNRECOVERABLE = "unrecoverable"  # detected, checkpoint ring exhausted


class Fault:
    """Base class; faults attach themselves to a machine."""

    #: Cycle the fault actually struck (set by subclasses when they fire).
    struck_cycle: Optional[int] = None

    def attach(self, machine: Machine) -> None:
        raise NotImplementedError

    def tick(self, machine: Machine, now: int) -> None:
        """Called every cycle before the cores tick."""


@dataclass
class TransientRegisterFault(Fault):
    """Flip ``bit`` of physical register ``reg`` on ``core_index`` at
    ``cycle``."""

    cycle: int
    core_index: int
    reg: int
    bit: int
    fired: bool = False

    def attach(self, machine: Machine) -> None:
        pass

    def tick(self, machine: Machine, now: int) -> None:
        if self.fired or now < self.cycle:
            return
        regfile = machine.cores[self.core_index].regfile
        regfile.values[self.reg] = flip_bit(regfile.values[self.reg], self.bit)
        self.fired = True
        self.struck_cycle = now


@dataclass
class TransientResultFault(Fault):
    """Flip ``bit`` of the first result computed on ``core_index`` at or
    after ``cycle`` (optionally only for hardware thread ``thread``).

    Loads are skipped unless ``target_loads`` is set: a flip on a load's
    incoming value strikes *before* the load value queue captures it, so
    both redundant threads consume the identical wrong value — that path
    is outside the sphere of replication and is protected by ECC in the
    paper's design, not by redundant execution.  Setting ``target_loads``
    demonstrates exactly that coverage hole.
    """

    cycle: int
    core_index: int
    bit: int
    thread: Optional[int] = None
    target_loads: bool = False
    fired: bool = False

    def attach(self, machine: Machine) -> None:
        core = machine.cores[self.core_index]
        previous = core.result_corruptor

        def corrupt(uop: Uop, now: int) -> None:
            if previous is not None:
                previous(uop, now)
            if self.fired or now < self.cycle:
                return
            if self.thread is not None and uop.thread != self.thread:
                return
            if self._corrupt_uop(uop):
                self.fired = True
                self.struck_cycle = now

        core.result_corruptor = corrupt

    def _corrupt_uop(self, uop: Uop) -> bool:
        if uop.instr.is_load and not self.target_loads:
            return False
        if uop.instr.is_store:
            uop.store_value = flip_bit(uop.store_value, self.bit)
            return True
        if uop.result is not None:
            uop.result = flip_bit(uop.result, self.bit)
            return True
        return False


@dataclass
class StuckFunctionalUnit(Fault):
    """Permanent fault: every result from one functional-unit instance is
    corrupted by flipping ``bit``."""

    core_index: int
    fu_class: FuClass
    unit_index: int
    bit: int = 0
    corrupted: int = 0

    def attach(self, machine: Machine) -> None:
        core = machine.cores[self.core_index]
        previous = core.result_corruptor
        target = (self.fu_class, self.unit_index)

        def corrupt(uop: Uop, now: int) -> None:
            if previous is not None:
                previous(uop, now)
            if uop.fu != target:
                return
            if uop.instr.is_store and uop.store_value is not None:
                uop.store_value = flip_bit(uop.store_value, self.bit)
                self.corrupted += 1
            elif uop.result is not None:
                uop.result = flip_bit(uop.result, self.bit)
                self.corrupted += 1
            if self.corrupted and self.struck_cycle is None:
                self.struck_cycle = now

        core.result_corruptor = corrupt


# ---------------------------------------------------------------------------
# Wire format: JSON/pickle-safe fault descriptors.
#
# Campaign workers run in separate processes; faults cross the process
# boundary as plain dicts (model name + primitive site parameters), not
# as live objects carrying machine references.  ``fault_to_dict`` /
# ``fault_from_dict`` are the single source of truth for that format.
# ---------------------------------------------------------------------------

class ArchFault(Fault):
    """Base for *architectural* fault models.

    These are injected into the functional executor by
    :func:`run_arch_fault_experiment` (the oracle that cross-validates
    the static AVF analyzer), not into a pipeline machine: pipeline
    state is speculative and renamed, so "register r at step s" is only
    well-defined architecturally.  ``attach`` therefore refuses.
    """

    def attach(self, machine: Machine) -> None:
        raise TypeError(
            f"{type(self).__name__} is an architectural fault model; "
            "use run_arch_fault_experiment, not a machine injector")


@dataclass
class ArchRegisterFault(ArchFault):
    """Flip ``bit`` of architectural register ``reg`` just before the
    instruction at dynamic step ``step`` executes."""

    step: int
    reg: int
    bit: int
    fired: bool = False


@dataclass
class ArchMemoryFault(ArchFault):
    """Flip ``bit`` of the memory word holding ``addr`` just before
    dynamic step ``step``."""

    step: int
    addr: int
    bit: int
    fired: bool = False


@dataclass
class ArchDestFieldFault(ArchFault):
    """Flip ``bit`` (0..5) of the destination-register *field* of the
    instruction executed at dynamic step ``step`` — a decoded-opcode
    latch strike: the result is written to the wrong register."""

    step: int
    bit: int
    fired: bool = False


#: model-name -> fault class.  Keys are the public names used by the
#: campaign CLI (``--models``) and the JSONL artifact records.
FAULT_MODELS = {
    "transient-register": TransientRegisterFault,
    "transient-result": TransientResultFault,
    "stuck-unit": StuckFunctionalUnit,
    "arch-register": ArchRegisterFault,
    "arch-memory": ArchMemoryFault,
    "arch-destfield": ArchDestFieldFault,
}

#: The architectural models (classified by the AVF oracle, not a machine).
ARCH_FAULT_MODELS = ("arch-register", "arch-memory", "arch-destfield")

#: Transient state per fault instance that must never survive a round
#: trip (a deserialized fault is always un-fired).
_RUNTIME_FIELDS = {"fired", "corrupted"}


def fault_model_name(fault: Fault) -> str:
    """The registry name for a fault instance."""
    for name, cls in FAULT_MODELS.items():
        if type(fault) is cls:
            return name
    raise ValueError(f"unregistered fault type {type(fault).__name__}")


def fault_to_dict(fault: Fault) -> Dict[str, object]:
    """Serialize a fault's *site* (not its runtime state) to primitives."""
    data: Dict[str, object] = {"model": fault_model_name(fault)}
    for field_info in dataclasses.fields(fault):
        if field_info.name in _RUNTIME_FIELDS:
            continue
        value = getattr(fault, field_info.name)
        if isinstance(value, enum.Enum):
            value = value.value
        data[field_info.name] = value
    return data


def fault_from_dict(data: Dict[str, object]) -> Fault:
    """Rebuild a pristine (un-fired) fault from :func:`fault_to_dict`."""
    payload = dict(data)
    model = payload.pop("model", None)
    cls = FAULT_MODELS.get(model)
    if cls is None:
        raise ValueError(
            f"unknown fault model {model!r}; expected one of "
            f"{sorted(FAULT_MODELS)}")
    known = {f.name for f in dataclasses.fields(cls)
             if f.name not in _RUNTIME_FIELDS}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"unknown {model} fields: {unknown}")
    if cls is StuckFunctionalUnit and "fu_class" in payload:
        payload["fu_class"] = FuClass(payload["fu_class"])
    return cls(**payload)


class FaultInjector:
    """Drives a list of faults against a machine run."""

    def __init__(self, machine: Machine, faults: Iterable[Fault]) -> None:
        self.machine = machine
        self.faults: List[Fault] = list(faults)
        for fault in self.faults:
            fault.attach(machine)
        machine.injector = self

    def tick(self, now: int) -> None:
        for fault in self.faults:
            fault.tick(self.machine, now)


def golden_store_stream(program, instructions: int) -> List[tuple]:
    """The (op, addr, value) store stream of a fault-free execution."""
    executor = FunctionalExecutor(program)
    stores = []
    for step in executor.run(instructions):
        if step.store is not None:
            stores.append((step.instr.op.name, step.store[0], step.store[1]))
    return stores


def classify_outcome(machine: Machine, program, trace: List[Uop],
                     drained: List[tuple],
                     target_instructions: int,
                     termination: Optional[Termination] = None
                     ) -> FaultOutcome:
    """Classify a finished fault run (see module docstring).

    The decisive stream is what *left the sphere of replication*: the
    drained stores.  A retired-path divergence with no wrong drained
    store is LATENT — detection is still possible before damage is done.

    ``termination`` (the run's :class:`~repro.core.metrics.Termination`)
    refines the verdict: a watchdog HUNG/LIVELOCK is HUNG even if a
    detection fired first, and a recovery-enabled machine reports
    RECOVERED / UNRECOVERABLE instead of bare DETECTED.
    """
    if termination is Termination.UNRECOVERABLE:
        return FaultOutcome.UNRECOVERABLE
    if termination is not None and termination.is_wedged:
        return FaultOutcome.HUNG
    if termination is Termination.RECOVERED:
        return FaultOutcome.RECOVERED
    if machine.fault_events:
        return FaultOutcome.DETECTED
    if len(trace) < target_instructions:
        return FaultOutcome.HUNG
    golden = golden_store_stream(program, 4 * target_instructions)
    if drained != golden[:len(drained)]:
        return FaultOutcome.SDC
    reference = FunctionalExecutor(program).run(len(trace))
    for uop, ref in zip(trace, reference):
        if uop.pc != ref.pc:
            return FaultOutcome.LATENT
        if ref.load is not None and uop.result != ref.load[1]:
            return FaultOutcome.LATENT
    return FaultOutcome.MASKED


@dataclass
class FaultReport:
    """Outcome plus timing and robustness detail of one fault run."""

    outcome: FaultOutcome
    struck_cycle: Optional[int] = None
    detected_cycle: Optional[int] = None
    #: The run's Termination verdict value ("done", "hung", ...).
    termination: Optional[str] = None
    #: Cycles from rollback until the replay re-reached the detection
    #: point (recovery-enabled machines only).
    recovery_latency: Optional[int] = None
    #: Instructions rewound by the deepest rollback.
    rollback_depth: Optional[int] = None
    #: Last watchdog fingerprint / hang forensics for wedged runs.
    fingerprint: Optional[Dict[str, object]] = None

    @property
    def detection_latency(self) -> Optional[int]:
        """Cycles from strike to first detection (None if undetected)."""
        if self.struck_cycle is None or self.detected_cycle is None:
            return None
        return self.detected_cycle - self.struck_cycle

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (outcome by value, latency included)."""
        data: Dict[str, object] = {
            "outcome": self.outcome.value,
            "struck_cycle": self.struck_cycle,
            "detected_cycle": self.detected_cycle,
            "latency": self.detection_latency,
        }
        if self.termination is not None:
            data["termination"] = self.termination
        if self.recovery_latency is not None:
            data["recovery_latency"] = self.recovery_latency
        if self.rollback_depth is not None:
            data["rollback_depth"] = self.rollback_depth
        if self.fingerprint is not None:
            data["fingerprint"] = self.fingerprint
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultReport":
        return cls(outcome=FaultOutcome(data["outcome"]),
                   struck_cycle=data.get("struck_cycle"),
                   detected_cycle=data.get("detected_cycle"),
                   termination=data.get("termination"),
                   recovery_latency=data.get("recovery_latency"),
                   rollback_depth=data.get("rollback_depth"),
                   fingerprint=data.get("fingerprint"))


def run_fault_experiment_detailed(machine: Machine, program, fault: Fault,
                                  instructions: int = 1500,
                                  warmup: int = 5000) -> FaultReport:
    """Like :func:`run_fault_experiment`, also reporting detection latency."""
    measured = machine._measured[program.name]
    measured.core.retire_trace[measured.tid] = []
    measured.core.drain_log[measured.tid] = []
    FaultInjector(machine, [fault])
    result = machine.run(max_instructions=instructions, warmup=warmup)
    trace = measured.core.retire_trace[measured.tid]
    drained = measured.core.drain_log[measured.tid]
    outcome = classify_outcome(machine, program, trace, drained, instructions,
                               termination=result.termination)
    detected_cycle = (machine.fault_events[0].cycle
                      if machine.fault_events else None)
    report = FaultReport(outcome=outcome, struck_cycle=fault.struck_cycle,
                         detected_cycle=detected_cycle,
                         termination=result.termination.value)
    if result.recovery is not None:
        report.recovery_latency = int(
            result.recovery.get("recovery_latency_last", 0)) or None
        report.rollback_depth = int(
            result.recovery.get("rollback_depth_max", 0)) or None
    if result.hang_report is not None:
        report.fingerprint = result.hang_report
    elif (result.termination in (Termination.CYCLE_LIMIT,
                                 Termination.UNRECOVERABLE)
          and machine.watchdog is not None
          and machine.watchdog.last_fingerprint is not None):
        report.fingerprint = machine.watchdog.last_fingerprint.to_dict()
    return report


# ---------------------------------------------------------------------------
# Architectural oracle (AVF cross-validation)
# ---------------------------------------------------------------------------

def _arch_snapshot(executor: FunctionalExecutor) -> tuple:
    """Comparable end-state: pc, halt flag, registers, non-zero memory.

    Zero-valued words are dropped so a word that was never materialized
    compares equal to one explicitly holding zero, and ``r0`` is
    normalized (it is hardwired; its backing slot is unobservable).
    """
    state = executor.state
    regs = list(state.regs)
    regs[0] = 0
    memory = {addr: value for addr, value in state.memory.items() if value}
    return (state.pc, state.halted, regs, memory)


def _arch_golden(program, max_steps: int):
    """Golden stores [(step, op, addr, value)] + end snapshot."""
    executor = FunctionalExecutor(program)
    stores = []
    for step in range(max_steps):
        if executor.state.halted:
            break
        try:
            result = executor.step()
        except RuntimeError:
            break
        if result.store is not None:
            stores.append((step, result.instr.op.name,
                           result.store[0], result.store[1]))
    return stores, _arch_snapshot(executor)


def _inject_arch_fault(executor: FunctionalExecutor, fault: "ArchFault"
                       ) -> None:
    """Flip the fault's site in the architectural state (pre-step)."""
    state = executor.state
    if isinstance(fault, ArchRegisterFault):
        if fault.reg != 0:  # r0 has no architectural storage
            state.regs[fault.reg] = flip_bit(state.regs[fault.reg],
                                             fault.bit)
    elif isinstance(fault, ArchMemoryFault):
        from repro.isa.executor import align_word
        word = align_word(fault.addr)
        state.memory[word] = flip_bit(state.memory.get(word, 0), fault.bit)
    fault.fired = True
    fault.struck_cycle = fault.step


def run_arch_fault_experiment(program, fault: "ArchFault",
                              instructions: int = 1500) -> FaultReport:
    """Inject an architectural fault and classify against the golden run.

    DETECTED — the (op, addr, value) store stream diverges from the
    golden stream within the horizon, or the run crashes (control left
    the code region: an output comparator / watchdog catch).
    MASKED — stream identical *and* final architectural state identical.
    LATENT — stream identical but the flipped bit is still resident in
    the end state (it could still be consumed beyond the horizon).

    The static analyzer's soundness contract is one-directional: a site
    it predicts masked must never come back DETECTED here (LATENT is
    allowed — dead state legitimately retains the flip).
    """
    golden_stores, golden_end = _arch_golden(program, instructions)
    executor = FunctionalExecutor(program)
    faulty_stores = []
    detected_step: Optional[int] = None
    crashed = False
    for step in range(instructions):
        if executor.state.halted:
            break
        if step == fault.step and not fault.fired:
            _inject_arch_fault(executor, fault)
        swapped = None
        if (isinstance(fault, ArchDestFieldFault) and step == fault.step
                and program.in_range(executor.state.pc)):
            pc = executor.state.pc
            swapped = (pc, program.instructions[pc])
            original = swapped[1]
            program.instructions[pc] = dataclasses.replace(
                original, rd=original.rd ^ (1 << fault.bit))
        try:
            result = executor.step()
        except RuntimeError:
            crashed = True
            detected_step = step
            break
        finally:
            if swapped is not None:
                program.instructions[swapped[0]] = swapped[1]
        if result.store is not None:
            index = len(faulty_stores)
            faulty_stores.append((step, result.instr.op.name,
                                  result.store[0], result.store[1]))
            if detected_step is None and (
                    index >= len(golden_stores)
                    or golden_stores[index][1:] != faulty_stores[index][1:]):
                detected_step = step

    if detected_step is None and len(faulty_stores) < len(golden_stores):
        # Stream truncated: the missing store is the divergence point.
        detected_step = golden_stores[len(faulty_stores)][0]
    if crashed or detected_step is not None:
        outcome = FaultOutcome.DETECTED
    elif _arch_snapshot(executor) == golden_end:
        outcome = FaultOutcome.MASKED
    else:
        outcome = FaultOutcome.LATENT
    return FaultReport(outcome=outcome, struck_cycle=fault.struck_cycle,
                       detected_cycle=detected_step,
                       termination=Termination.DONE.value
                       if executor.state.halted
                       else Termination.CYCLE_LIMIT.value)


def run_fault_experiment(machine: Machine, program,
                         fault: Fault, instructions: int = 1500,
                         warmup: int = 5000) -> FaultOutcome:
    """Inject ``fault`` into ``machine`` running ``program`` and classify.

    The machine must have been built for exactly one logical thread of
    ``program``; the measured hardware thread's retired stream and
    drained-store stream are traced.
    """
    return run_fault_experiment_detailed(
        machine, program, fault, instructions=instructions,
        warmup=warmup).outcome
