"""Machine-level configuration: Table 1 plus the RMT design options the
paper evaluates."""

import dataclasses
import json
from dataclasses import dataclass, field

from repro.memory.hierarchy import HierarchyConfig
from repro.pipeline.config import CoreConfig


@dataclass
class MachineConfig:
    core: CoreConfig = field(default_factory=CoreConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    # -- SRT options (Sections 4.1-4.5, 7.1) ------------------------------
    #: Per-thread 64-entry store queues instead of statically partitioning
    #: one 64-entry queue (the paper's ptsq proposal).
    per_thread_store_queues: bool = False
    #: False disables output comparison: leading stores release at retire
    #: (the paper's "SRT + nosc" upper bound).
    store_comparison: bool = True
    #: Steer trailing instructions to the opposite instruction-queue half.
    preferential_space_redundancy: bool = True
    #: Give trailing threads fetch priority when LPQ data is available.
    trailing_priority: bool = True
    #: Load value queue entries (sized like the store queue, Section 4.1).
    lvq_entries: int = 64
    #: Line prediction queue entries (chunks).
    lpq_entries: int = 32
    #: QBOX-to-IBOX line-prediction forwarding latency (Section 6.3).
    srt_line_forward_latency: int = 4
    #: QBOX-to-MBOX load-value forwarding latency (Section 6.3).
    srt_load_forward_latency: int = 2
    #: Flush a partial LPQ aggregation chunk after this many idle cycles.
    lpq_flush_timeout: int = 24
    #: How trailing threads fetch: "lpq" (the paper's line prediction
    #: queue) or "predictors" (the rejected Section 4.4 alternative: the
    #: trailing thread fetches through the shared line/branch predictors,
    #: misfetching and mispredicting like any other thread).
    trailing_fetch_mode: str = "lpq"
    #: Explicit slack fetch (Section 2.3): minimum number of retired
    #: instructions the leading thread must be ahead before the trailing
    #: thread may fetch.  0 relies on the LPQ's natural gating, which the
    #: paper found sufficient (Section 4.4).
    srt_slack_instructions: int = 0

    # -- CMP options (Sections 5, 6.3) --------------------------------------
    #: Extra latency to cross between cores (CRT forwarding penalty).
    crt_cross_latency: int = 4
    #: Lockstep checker latency: 0 for Lock0, 8 for Lock8.
    checker_latency: int = 8

    # -- robustness / recovery (repro.recovery, docs/RECOVERY.md) ------------
    #: Cycles between forward-progress fingerprints (0 disables the
    #: watchdog entirely — runs may then truncate silently).
    watchdog_interval: int = 64
    #: Cycles with zero measured-thread retirement before the watchdog
    #: declares the machine HUNG/LIVELOCK.  Must comfortably exceed the
    #: longest legitimate stall (an L2 miss burst is O(100) cycles).
    watchdog_window: int = 4096
    #: Enable SRTR-style checkpoint/rollback recovery on SRT/CRT
    #: machines: detection events trigger rollback-and-replay instead of
    #: being terminal.
    recovery_enabled: bool = False
    #: Minimum cycles between architectural checkpoints (taken at the
    #: next verified-store boundary at or after the mark).
    checkpoint_interval: int = 400
    #: Checkpoints retained for escalating rollback; a fault that
    #: re-detects after every retained checkpoint is UNRECOVERABLE.
    recovery_max_attempts: int = 3

    # -- serialisation (experiment reproducibility) --------------------------
    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "MachineConfig":
        data = dict(data)
        core = CoreConfig(**data.pop("core", {}))
        hierarchy = HierarchyConfig(**data.pop("hierarchy", {}))
        unknown = sorted(set(data) - {f.name for f in dataclasses.fields(cls)})
        if unknown:
            raise ValueError(f"unknown MachineConfig fields: {unknown}")
        return cls(core=core, hierarchy=hierarchy, **data)

    @classmethod
    def from_json(cls, text: str) -> "MachineConfig":
        return cls.from_dict(json.loads(text))
