"""Set-associative caches with LRU replacement and MSHR-style miss merging.

Timing model: ``access`` returns the cycle at which the requested data is
available.  Hits are available after ``hit_latency``; misses are
forwarded to the next level and tracked in miss-status registers so that
concurrent requests to the same block merge onto one fill instead of
issuing duplicate next-level accesses (as the paper's trailing threads
rely on: a sufficiently delayed fetch finds the block already present).
"""

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    mshr_merges: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class NextLevel:
    """Interface of whatever sits below a cache (another cache or memory)."""

    def access(self, addr: int, now: int, write: bool = False) -> int:
        raise NotImplementedError


@dataclass
class MemoryController:
    """Flat-latency main memory with a simple multi-channel busy model.

    Approximates the base machine's 2 Rambus controllers x 10 channels
    (Table 1): requests are spread over ``channels`` by address hash and a
    busy channel queues the request behind its previous one.
    """

    latency: int = 80
    channels: int = 10
    channel_occupancy: int = 4  # cycles a request occupies its channel
    _busy_until: Dict[int, int] = field(default_factory=dict)
    requests: int = 0

    def access(self, addr: int, now: int, write: bool = False) -> int:
        self.requests += 1
        channel = (addr >> 6) % self.channels
        start = max(now, self._busy_until.get(channel, 0))
        self._busy_until[channel] = start + self.channel_occupancy
        return start + self.latency


class SetAssociativeCache(NextLevel):
    """A single cache level.

    ``extra_miss_latency`` implements the lockstep checker penalty: in a
    lockstepped pair every miss request leaving the sphere of replication
    must first be compared, adding checker latency to the miss path
    (paper Section 5's first advantage of CRT over lockstepping).
    """

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 block_bytes: int, hit_latency: int,
                 next_level: Optional[NextLevel] = None,
                 extra_miss_latency: int = 0) -> None:
        if size_bytes % (assoc * block_bytes) != 0:
            raise ValueError(f"{name}: size/assoc/block mismatch")
        if block_bytes & (block_bytes - 1):
            raise ValueError(f"{name}: block size must be a power of two")
        self.name = name
        self.block_bytes = block_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (assoc * block_bytes)
        self.hit_latency = hit_latency
        self.next_level = next_level
        self.extra_miss_latency = extra_miss_latency
        self.stats = CacheStats()
        # set index -> {tag: last-use stamp}; dict order + stamps give LRU.
        self._sets: Dict[int, Dict[int, int]] = {}
        # block address -> fill-ready cycle (miss status registers).
        self._mshrs: Dict[int, int] = {}
        self._use_stamp = 0

    # -- address helpers ------------------------------------------------
    def block_addr(self, addr: int) -> int:
        return addr & ~(self.block_bytes - 1)

    def _index_tag(self, addr: int) -> tuple:
        block = addr // self.block_bytes
        return block % self.num_sets, block // self.num_sets

    # -- lookup ----------------------------------------------------------
    def contains(self, addr: int) -> bool:
        index, tag = self._index_tag(addr)
        return tag in self._sets.get(index, {})

    def access(self, addr: int, now: int, write: bool = False) -> int:
        """Access ``addr``; return the cycle its data becomes available."""
        index, tag = self._index_tag(addr)
        ways = self._sets.setdefault(index, {})
        self._use_stamp += 1
        if tag in ways:
            ways[tag] = self._use_stamp
            self.stats.hits += 1
            return now + self.hit_latency

        self.stats.misses += 1
        block = self.block_addr(addr)
        pending = self._mshrs.get(block)
        if pending is not None and pending > now:
            # Merge with the outstanding fill for this block.
            self.stats.mshr_merges += 1
            return pending
        if self.next_level is not None:
            fill_ready = self.next_level.access(
                addr, now + self.extra_miss_latency, write)
        else:
            fill_ready = now + self.extra_miss_latency
        fill_ready += self.hit_latency
        self._mshrs[block] = fill_ready
        self._fill(index, tag)
        return fill_ready

    def _fill(self, index: int, ways_tag: int) -> None:
        ways = self._sets.setdefault(index, {})
        if len(ways) >= self.assoc:
            victim = min(ways, key=ways.get)
            del ways[victim]
            self.stats.writebacks += 1
        ways[ways_tag] = self._use_stamp

    def warm(self, addr: int) -> None:
        """Install a block without timing (used for warm-start runs)."""
        index, tag = self._index_tag(addr)
        self._use_stamp += 1
        self._fill(index, tag)
