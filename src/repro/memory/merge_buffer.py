"""The coalescing merge buffer between the store queue and the data cache.

Retired (and, under RMT, verified) stores land here; stores to the same
cache block coalesce into one entry, and entries drain to the data cache
at a bounded rate (Table 1: 16 entries of 64-byte blocks).
A full merge buffer back-pressures store-queue release.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.memory.cache import SetAssociativeCache


@dataclass
class MergeBufferStats:
    inserts: int = 0
    coalesced: int = 0
    drains: int = 0
    full_stalls: int = 0


class CoalescingMergeBuffer:
    def __init__(self, capacity: int = 16, block_bytes: int = 64,
                 dcache: Optional[SetAssociativeCache] = None,
                 drain_interval: int = 2) -> None:
        self.capacity = capacity
        self.block_bytes = block_bytes
        self.dcache = dcache
        self.drain_interval = drain_interval
        self.stats = MergeBufferStats()
        self._entries: Dict[int, int] = {}  # block addr -> insert cycle
        self._last_drain = -1

    def __len__(self) -> int:
        return len(self._entries)

    def _block(self, addr: int) -> int:
        return addr & ~(self.block_bytes - 1)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def try_insert(self, addr: int, now: int) -> bool:
        """Accept a retired store; False means the buffer is full (stall)."""
        block = self._block(addr)
        if block in self._entries:
            self.stats.coalesced += 1
            self.stats.inserts += 1
            return True
        if self.full:
            self.stats.full_stalls += 1
            return False
        self._entries[block] = now
        self.stats.inserts += 1
        return True

    def tick(self, now: int) -> None:
        """Drain the oldest entry every ``drain_interval`` cycles."""
        if not self._entries:
            return
        if now - self._last_drain < self.drain_interval:
            return
        oldest_block = min(self._entries, key=self._entries.get)
        del self._entries[oldest_block]
        self._last_drain = now
        self.stats.drains += 1
        if self.dcache is not None:
            self.dcache.access(oldest_block, now, write=True)
