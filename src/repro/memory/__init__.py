"""Memory-system substrate: caches, merge buffer, memory, on-chip router."""

from repro.memory.cache import (CacheStats, MemoryController, NextLevel,
                                SetAssociativeCache)
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.merge_buffer import CoalescingMergeBuffer, MergeBufferStats
from repro.memory.router import MeshRouter

__all__ = [
    "CacheStats",
    "MemoryController",
    "NextLevel",
    "SetAssociativeCache",
    "HierarchyConfig",
    "MemoryHierarchy",
    "CoalescingMergeBuffer",
    "MergeBufferStats",
    "MeshRouter",
]
