"""On-chip network latency model.

The base machine integrates a two-dimensional mesh router (Table 1,
"Network Router & Interface", like the Alpha 21364).  For the CMP
machines we only need the latency a message incurs crossing the chip:
CRT's forwarded line predictions, load values, and store comparisons all
ride these wires, as do lockstep's checker inputs.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class MeshRouter:
    """Per-hop latency model for a small on-chip 2D mesh."""

    hop_latency: int = 2
    router_overhead: int = 2

    def latency(self, src: int, dst: int) -> int:
        """Latency between two on-chip agents (core ids / checker id)."""
        if src == dst:
            return 0
        hops = abs(src - dst)  # cores laid out along one mesh dimension
        return self.router_overhead + hops * self.hop_latency
