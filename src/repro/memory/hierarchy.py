"""The full memory hierarchy of a single-chip device.

Per core: L1 instruction cache, L1 data cache, coalescing merge buffer.
Shared: L2 cache, memory controllers, mesh router.  Matches Table 1:
64 KB 2-way L1s with 64-byte blocks, a 3 MB 8-way L2, and two
Rambus-style memory controllers.

The ``checker_latency`` knob charges the lockstep checker penalty on
every L1-miss request (paper Section 5: in a lockstepped pair all cache
miss requests must be compared before leaving the sphere of
replication).
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.memory.cache import MemoryController, SetAssociativeCache
from repro.memory.merge_buffer import CoalescingMergeBuffer
from repro.memory.router import MeshRouter


@dataclass
class HierarchyConfig:
    l1i_size: int = 64 * 1024
    l1i_assoc: int = 2
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 2
    block_bytes: int = 64
    l1_hit_latency: int = 0      # L1 hit time is part of the MBOX stage
    l2_size: int = 3 * 1024 * 1024
    l2_assoc: int = 8
    l2_hit_latency: int = 12
    memory_latency: int = 80
    memory_channels: int = 10
    merge_buffer_entries: int = 16
    merge_drain_interval: int = 2
    checker_latency: int = 0     # lockstep checker penalty on miss requests


class MemoryHierarchy:
    """Caches and memory shared by the core(s) of one chip."""

    def __init__(self, config: HierarchyConfig, num_cores: int = 1) -> None:
        self.config = config
        self.num_cores = num_cores
        self.router = MeshRouter()
        self.memory = MemoryController(latency=config.memory_latency,
                                       channels=config.memory_channels)
        self.l2 = SetAssociativeCache(
            "L2", config.l2_size, config.l2_assoc, config.block_bytes,
            hit_latency=config.l2_hit_latency, next_level=self.memory)
        self.l1i: List[SetAssociativeCache] = []
        self.l1d: List[SetAssociativeCache] = []
        self.merge_buffers: List[CoalescingMergeBuffer] = []
        for core in range(num_cores):
            l1i = SetAssociativeCache(
                f"L1I.{core}", config.l1i_size, config.l1i_assoc,
                config.block_bytes, hit_latency=config.l1_hit_latency,
                next_level=self.l2,
                extra_miss_latency=config.checker_latency)
            l1d = SetAssociativeCache(
                f"L1D.{core}", config.l1d_size, config.l1d_assoc,
                config.block_bytes, hit_latency=config.l1_hit_latency,
                next_level=self.l2,
                extra_miss_latency=config.checker_latency)
            self.l1i.append(l1i)
            self.l1d.append(l1d)
            self.merge_buffers.append(CoalescingMergeBuffer(
                capacity=config.merge_buffer_entries,
                block_bytes=config.block_bytes, dcache=l1d,
                drain_interval=config.merge_drain_interval))

    # -- per-core access points -----------------------------------------
    # Core ids are taken modulo the hierarchy's core count so that a
    # machine with per-core private hierarchies (lockstep) can hand each
    # core a single-core hierarchy without renumbering.
    def fetch(self, core: int, addr: int, now: int) -> int:
        """Instruction fetch; returns availability cycle."""
        return self.l1i[core % self.num_cores].access(addr, now)

    def load(self, core: int, addr: int, now: int) -> int:
        """Data load; returns availability cycle."""
        return self.l1d[core % self.num_cores].access(addr, now)

    def store_drain(self, core: int, addr: int, now: int) -> bool:
        """Retired store enters the merge buffer; False = back-pressure."""
        return self.merge_buffers[core % self.num_cores].try_insert(addr, now)

    def tick(self, now: int) -> None:
        for buffer in self.merge_buffers:
            buffer.tick(now)

    # -- stats ------------------------------------------------------------
    def stats_summary(self) -> Dict[str, float]:
        summary: Dict[str, float] = {
            "l2_miss_rate": self.l2.stats.miss_rate,
            "memory_requests": self.memory.requests,
        }
        for core in range(self.num_cores):
            summary[f"l1i{core}_miss_rate"] = self.l1i[core].stats.miss_rate
            summary[f"l1d{core}_miss_rate"] = self.l1d[core].stats.miss_rate
        return summary
