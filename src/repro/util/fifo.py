"""Bounded FIFO used for hardware queues with fixed capacity."""

from collections import deque
from typing import Deque, Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


class FifoFullError(Exception):
    """Raised when pushing to a full :class:`BoundedFifo`."""


class BoundedFifo(Generic[T]):
    """A FIFO with a hard capacity, mirroring a hardware queue.

    ``push`` raises :class:`FifoFullError` when full so that callers
    model back-pressure explicitly (hardware stalls rather than drops).
    """

    def __init__(self, capacity: int, name: str = "fifo") -> None:
        if capacity <= 0:
            raise ValueError(f"{name}: capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item: T) -> None:
        if self.full:
            raise FifoFullError(f"{self.name} is full (capacity {self.capacity})")
        self._items.append(item)

    def try_push(self, item: T) -> bool:
        """Push unless full; return whether the push happened."""
        if self.full:
            return False
        self._items.append(item)
        return True

    def pop(self) -> T:
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        return self._items[0] if self._items else None

    def clear(self) -> None:
        self._items.clear()

    def remove_if(self, predicate) -> int:
        """Remove all entries matching ``predicate``; return count removed."""
        kept = [item for item in self._items if not predicate(item)]
        removed = len(self._items) - len(kept)
        self._items = deque(kept)
        return removed
