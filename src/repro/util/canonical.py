"""Canonical JSON encoding and content hashing.

One byte encoding to rule them all: sorted keys, no whitespace, UTF-8.
The campaign store keys its resumable artifact on the SHA-256 of the
spec's canonical JSON, the serve layer keys its result cache on the
canonical JSON of a job spec, and result records are appended in this
encoding so artifacts are byte-identical across processes and hosts.
Anything that hashes or compares JSON for identity must round through
these two functions — a second encoder is a cache-invalidation bug
waiting to happen.
"""

import hashlib
import json
from typing import Dict, Union

#: Truncated-hex length used for human-facing content hashes (the
#: campaign hash, serve cache keys).  64 bits of prefix is far beyond
#: birthday-collision range for any plausible corpus of specs.
HASH_PREFIX_LEN = 16


def canonical_json(data: object) -> str:
    """The one true byte encoding of a JSON-able value."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def content_hash(data: Union[str, Dict[str, object], list],
                 length: int = HASH_PREFIX_LEN) -> str:
    """Truncated SHA-256 of ``data``'s canonical encoding.

    Strings hash their UTF-8 bytes verbatim (callers that already hold
    a canonical encoding must not pay for — or risk — a re-encode);
    everything else is canonicalized first.
    """
    if not isinstance(data, str):
        data = canonical_json(data)
    digest = hashlib.sha256(data.encode("utf-8"))
    return digest.hexdigest()[:length]


def payload_digest(data: object) -> str:
    """Full SHA-256 of a payload's canonical encoding.

    Used by the serve result cache as an integrity seal: a cache entry
    whose stored digest no longer matches its stored payload was torn
    or tampered and must be evicted, not served.
    """
    return content_hash(data, length=64)
