"""Shared fan-out sizing for every process/thread pool in the tree.

The campaign engine, the per-figure experiment fan-out, and the serve
executor bridge all face the same trade-off: big chunks amortize IPC
and per-chunk setup (benchmark generation, Runner construction), small
chunks keep the pool busy near the tail and bound how much work a
cancellation has to wait out.  One helper, one policy: keep at least
``min_chunks_per_worker`` chunks in flight per worker, capped so a
chunk never grows unbounded.
"""

from typing import List, Sequence, TypeVar

T = TypeVar("T")

#: Minimum chunks in flight per worker — keeps the pool from starving
#: near the tail when chunk runtimes are uneven.
MIN_CHUNKS_PER_WORKER = 4

#: Hard cap on tasks per chunk — bounds both worker-side memory and the
#: latency of a cooperative cancellation (which lands on a chunk
#: boundary).
MAX_CHUNK_SIZE = 16


def auto_chunk_size(total: int, jobs: int,
                    min_chunks_per_worker: int = MIN_CHUNKS_PER_WORKER,
                    cap: int = MAX_CHUNK_SIZE) -> int:
    """Tasks per chunk for ``total`` tasks over ``jobs`` workers."""
    if total <= 0:
        return 1
    per_worker = max(1, jobs) * max(1, min_chunks_per_worker)
    return max(1, min(cap, total // per_worker or 1))


def chunked(items: Sequence[T], size: int) -> List[List[T]]:
    """Split ``items`` into contiguous slices of at most ``size``."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    return [list(items[start:start + size])
            for start in range(0, len(items), size)]
