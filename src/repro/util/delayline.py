"""Fixed-latency delay line modelling pipelined wires and queues."""

from collections import deque
from typing import Deque, Generic, List, Tuple, TypeVar

T = TypeVar("T")


class DelayLine(Generic[T]):
    """Items pushed at cycle ``c`` become visible at cycle ``c + latency``.

    Models pipeline-stage traversal and chip-crossing wires.  Items keep
    FIFO order; a latency of zero makes items available the same cycle.
    """

    def __init__(self, latency: int, name: str = "delayline") -> None:
        if latency < 0:
            raise ValueError(f"{name}: latency must be >= 0, got {latency}")
        self.latency = latency
        self.name = name
        self._items: Deque[Tuple[int, T]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def push(self, item: T, now: int) -> None:
        self._items.append((now + self.latency, item))

    def pop_ready(self, now: int) -> List[T]:
        """Pop and return every item whose delay has elapsed by ``now``."""
        ready: List[T] = []
        while self._items and self._items[0][0] <= now:
            ready.append(self._items.popleft()[1])
        return ready

    def peek_ready(self, now: int) -> List[T]:
        """Return (without removing) items available at ``now``."""
        return [item for when, item in self._items if when <= now]

    def clear(self) -> None:
        self._items.clear()

    def remove_if(self, predicate) -> int:
        """Drop in-flight items matching ``predicate`` (used on squash)."""
        kept = [(when, item) for when, item in self._items if not predicate(item)]
        removed = len(self._items) - len(kept)
        self._items = deque(kept)
        return removed
