"""64-bit integer helpers.

The simulated ISA operates on 64-bit two's-complement values.  Python
integers are unbounded, so every architectural value is kept masked to
64 bits and converted to/from signed form only where semantics demand
it (comparisons, sign extension).
"""

MASK64 = (1 << 64) - 1


def to_unsigned(value: int) -> int:
    """Clamp an arbitrary Python int to a 64-bit unsigned value."""
    return value & MASK64


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    value &= MASK64
    if value >= 1 << 63:
        return value - (1 << 64)
    return value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value`` to 64 bits."""
    if bits <= 0 or bits > 64:
        raise ValueError(f"bit width out of range: {bits}")
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value & MASK64


def flip_bit(value: int, bit: int) -> int:
    """Return ``value`` with bit index ``bit`` inverted (64-bit domain)."""
    if not 0 <= bit < 64:
        raise ValueError(f"bit index out of range: {bit}")
    return (value ^ (1 << bit)) & MASK64
