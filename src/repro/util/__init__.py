"""Small generic building blocks used across the simulator.

Everything here is deliberately free of microarchitectural knowledge:
delay lines, bounded FIFOs, a deterministic RNG wrapper, and 64-bit
integer helpers.
"""

from repro.util.bits import MASK64, flip_bit, sign_extend, to_signed, to_unsigned
from repro.util.canonical import canonical_json, content_hash, payload_digest
from repro.util.chunking import auto_chunk_size, chunked
from repro.util.delayline import DelayLine
from repro.util.fifo import BoundedFifo, FifoFullError
from repro.util.rng import DeterministicRng, seed_from

__all__ = [
    "DelayLine",
    "BoundedFifo",
    "FifoFullError",
    "DeterministicRng",
    "seed_from",
    "MASK64",
    "auto_chunk_size",
    "canonical_json",
    "chunked",
    "content_hash",
    "flip_bit",
    "payload_digest",
    "sign_extend",
    "to_signed",
    "to_unsigned",
]
