"""Deterministic random number generation.

Every stochastic choice in the simulator (program generation, fault
injection points) flows through a :class:`DeterministicRng` derived from
a named seed, so that any run is exactly reproducible from its
configuration alone.
"""

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def seed_from(*parts: object) -> int:
    """Derive a stable 64-bit seed from a sequence of printable parts."""
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_seed(parent_seed: int, *key: object) -> int:
    """Spawn-style sub-seed derivation (cross-process safe).

    Hashes the parent seed together with a spawn key, so a worker
    process can rebuild exactly the stream it owns from ``(root seed,
    key)`` alone — no shared ``random.Random`` state ever crosses a
    process boundary, and sibling streams are statistically independent
    regardless of how much any of them has been consumed.
    """
    return seed_from("spawn", parent_seed, *key)


class DeterministicRng:
    """Thin wrapper over :class:`random.Random` with named derivation."""

    def __init__(self, *seed_parts: object) -> None:
        self.seed = seed_from(*seed_parts)
        self._rng = random.Random(self.seed)

    def derive(self, *parts: object) -> "DeterministicRng":
        """Create an independent child stream, stable under reordering of use."""
        return DeterministicRng(self.seed, *parts)

    def spawn(self, *key: object) -> "DeterministicRng":
        """Spawn an independent child stream from a pure seed function.

        Unlike passing this RNG around, the child depends only on
        ``(self.seed, key)`` — never on how many values the parent has
        already drawn — so the same ``(root, key)`` pair rebuilds the
        identical stream inside any worker process.  This is the only
        derivation campaign workers may use.
        """
        return DeterministicRng.from_seed(spawn_seed(self.seed, *key))

    @classmethod
    def from_seed(cls, seed: int) -> "DeterministicRng":
        """Wrap an already-derived integer seed without re-hashing it."""
        rng = cls.__new__(cls)
        rng.seed = seed
        rng._rng = random.Random(seed)
        return rng

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, options: Sequence[T]) -> T:
        return self._rng.choice(options)

    def choices(self, options: Sequence[T], weights: Sequence[float], k: int = 1):
        return self._rng.choices(options, weights=weights, k=k)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def sample(self, options: Sequence[T], k: int):
        return self._rng.sample(options, k)
