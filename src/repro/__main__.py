"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro fig6 --instructions 2000 --warmup 15000
    python -m repro fig11 --instructions 1500 --jobs 8
    python -m repro run --kind srt --benchmark gcc --instructions 3000
    python -m repro campaign run --out runs/cov --jobs 8 --injections 500
    python -m repro analyze program.asm --strict
    python -m repro analyze --generated all-profiles --seeds 3
    python -m repro lint --strict
    python -m repro verify all --strict
"""

import argparse
import sys

from repro.harness.experiments import EXPERIMENT_REGISTRY as EXPERIMENTS
from repro.harness.reporting import render_table
from repro.harness.runner import Runner
from repro.isa.profiles import SPEC95_NAMES


def positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Detailed Design and Evaluation of "
                    "Redundant Multithreading Alternatives' (ISCA 2002)")
    parser.add_argument("command",
                        help="'list', an experiment id (e.g. fig6), or 'run'")
    parser.add_argument("--instructions", type=positive_int, default=1500,
                        help="committed instructions per thread")
    parser.add_argument("--warmup", type=non_negative_int, default=12_000,
                        help="architectural warm-up instructions")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload generation seed")
    parser.add_argument("--kind", default="srt",
                        help="machine kind for 'run' "
                             "(base/base2/srt/lockstep/crt)")
    parser.add_argument("--benchmark", action="append", default=None,
                        help="benchmark name(s) for 'run' (repeatable)")
    parser.add_argument("--jobs", type=positive_int, default=1,
                        help="fan per-workload experiment rows across N "
                             "worker processes (splittable drivers only)")
    return parser


def cmd_list() -> int:
    print("experiments:")
    for name, (_, description) in EXPERIMENTS.items():
        print(f"  {name:<18s} {description}")
    print("\nbenchmarks:")
    print("  " + ", ".join(SPEC95_NAMES))
    print("\ncampaigns:")
    print("  campaign           parallel, resumable fault-injection "
          "campaigns ('campaign --help')")
    print("\nrobustness:")
    print("  recovery           watchdog forensics + checkpoint-recovery "
          "demos ('recovery --help')")
    print("  chaos              deterministic infrastructure fault "
          "injection + resilience soak ('chaos --help')")
    print("\nobservability:")
    print("  obs                span-log reports, per-stage run "
          "profiles, bench-trajectory gate ('obs --help')")
    print("\nserving:")
    print("  serve              async simulation-as-a-service daemon "
          "('serve --help')")
    print("  submit             submit work to a running daemon "
          "('submit --help'; also status/fetch/cancel/metrics)")
    print("\nstatic analysis:")
    print("  analyze            dataflow verifier for RISC-R programs "
          "('analyze --help', '--rules')")
    print("  lint               determinism/sphere-layering linter for "
          "the simulator ('lint --help', '--rules')")
    print("  avf                static ACE/AVF vulnerability analyzer "
          "('avf --help'; cross-check with 'campaign validate-avf')")
    print("  verify             concurrency verifier: SRT/CRT queue-"
          "protocol model checker + lockset analysis ('verify --help')")
    return 0


def cmd_run(args: argparse.Namespace, runner: Runner) -> int:
    names = args.benchmark or ["gcc"]
    result = runner.run(args.kind, names)
    print(f"{args.kind} on {'+'.join(names)}: "
          f"{result.cycles} cycles, faults={result.faults_detected}")
    for name, ipc in result.ipc_per_logical_thread().items():
        efficiency = ipc / runner.baseline_ipc(name)
        print(f"  {name:<12s} IPC={ipc:.3f}  SMT-Efficiency={efficiency:.3f}")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        # Campaign verbs have their own subcommand grammar.
        from repro.campaign.cli import main as campaign_main
        return campaign_main(argv[1:])
    if argv and argv[0] == "recovery":
        # Robustness demos: watchdog forensics + checkpoint recovery.
        from repro.recovery.cli import main as recovery_main
        return recovery_main(argv[1:])
    if argv and argv[0] == "analyze":
        # Static dataflow verifier for RISC-R programs.
        from repro.analysis.cli import cmd_analyze
        return cmd_analyze(argv[1:])
    if argv and argv[0] == "lint":
        # Simulator-invariant linter (determinism / layering / pickle).
        from repro.analysis.cli import cmd_lint
        return cmd_lint(argv[1:])
    if argv and argv[0] == "verify":
        # Concurrency verifier: protocol model checker + lockset pass.
        from repro.verify.cli import cmd_verify
        return cmd_verify(argv[1:])
    if argv and argv[0] == "avf":
        # Static ACE/AVF vulnerability analyzer.
        from repro.avf.cli import cmd_avf
        return cmd_avf(argv[1:])
    if argv and argv[0] in ("serve", "submit", "status", "fetch",
                            "cancel", "metrics"):
        # Simulation-as-a-service daemon and its client verbs.
        from repro.serve.cli import main as serve_main
        return serve_main(argv)
    if argv and argv[0] == "chaos":
        # Deterministic infrastructure fault injection.
        from repro.chaos.cli import main as chaos_main
        return chaos_main(argv[1:])
    if argv and argv[0] == "obs":
        # Observability: span logs, stage profiles, bench gate.
        from repro.obs.cli import main as obs_main
        return obs_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    runner = Runner(instructions=args.instructions, warmup=args.warmup,
                    seed=args.seed)
    try:
        if args.command == "run":
            return cmd_run(args, runner)
        if args.command not in EXPERIMENTS:
            print(f"unknown command {args.command!r}; try 'list'",
                  file=sys.stderr)
            return 2
        driver, _ = EXPERIMENTS[args.command]
        if args.jobs > 1:
            from repro.harness.parallel import run_experiment_parallel
            result = run_experiment_parallel(
                driver.__name__,
                {"instructions": args.instructions, "warmup": args.warmup,
                 "seed": args.seed},
                jobs=args.jobs)
        else:
            result = driver(runner)
        print(render_table(result))
        return 0
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
