"""The SRT/CRT inter-thread queue protocol as a transition system.

The paper's leading/trailing threads communicate only through bounded
queues: the line-prediction queue (the branch-outcome-queue descendant,
``core/lpq.py``), the load value queue (``core/lvq.py``), the leading
store queue + store comparator (``core/store_comparator.py``), the
explicit slack gate (``core/rmt.py:_slack_satisfied``), and — with
recovery enabled — the checkpoint ring (``recovery/checkpoint.py``).
Mis-sizing or mis-ordering any hand-off deadlocks the pair or corrupts
the sphere of replication.  This module extracts that protocol into a
small explicit-state model that :mod:`repro.verify.explore` checks
exhaustively.

Model (one redundant pair; abstractions documented in docs/VERIFY.md):

- The program is a short string over ``L`` (load), ``S`` (store), and
  ``I`` (any other instruction); lengths exceed every queue capacity so
  full-queue dynamics are actually exercised.
- ``lead-retire`` — the leading thread retires the next instruction in
  program order.  Gates mirror ``RmtController.can_retire_load`` and
  the aggregator's ``has_room``: LPQ must have room (chunks are
  modelled one instruction long), a load also needs LVQ room, a store
  also needs a leading store-queue slot.  Retired instructions enter
  the LPQ; loads write their value (modelled as the program-order load
  ordinal) to the LVQ; stores enter the store queue unverified (or
  pre-verified under ``nosc``).
- ``trail-fetch`` — the trailing thread pops the LPQ head into its
  out-of-order window, subject to the explicit slack minimum.
- ``trail-exec`` — a load anywhere in the window executes, consuming
  its LVQ entry.  Disciplines: ``associative`` (the shipped design —
  lookup by load-correlation tag, Section 4.1), ``fifo-checked`` (the
  original SRT strict FIFO *with* the head ordering check: a younger
  load waits until the head is its own entry), ``fifo-unchecked`` (the
  seeded mutation: consume the head blind).
- ``trail-retire`` — the window head retires in program order; a store
  also needs a trailing store-queue slot and posts a comparator record.
- ``compare`` — the comparator matches a trailing record against the
  leading store-queue entry with the same store ordinal and marks it
  verified.
- ``drain`` — the leading store-queue head leaves the sphere of
  replication.  The shipped protocol requires it verified; the
  ``commit-before-verify`` mutation drops that requirement.
- ``checkpoint`` — recovery configurations only: at a verified-store
  boundary (both store-side queues empty) the bounded checkpoint ring
  advances, at most once per boundary.

Invariants checked at every reachable state:

- **deadlock-freedom** — every non-final state has an enabled
  transition (checked structurally by the explorer);
- **replication integrity** — each trailing load consumed the LVQ
  entry its own ordinal produced;
- **in-order verified commit** — stores leave the sphere in program
  order and only after output comparison verified them;
- **bounded slack** — retired-leading minus retired-trailing
  instructions never exceed the LPQ capacity plus the trailing window.
"""

import dataclasses
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Tuple

from repro.core.config import MachineConfig
from repro.verify.explore import (ExploreResult, TransitionSystem, explore)

LOAD, STORE, PLAIN = "L", "S", "I"
LVQ_DISCIPLINES = ("associative", "fifo-checked", "fifo-unchecked")

#: Queue capacities above this are clamped before exploration: the
#: protocol is capacity-symmetric once every queue can hold more than
#: the in-flight window, so small bounds explore the same hand-off
#: structure the 32/64-entry paper sizes ship (docs/VERIFY.md).
CAPACITY_CLAMP = 3


@dataclass(frozen=True)
class ProtocolConfig:
    """One (machine kind × queue sizing × options) point to verify."""

    name: str
    kind: str                     # "srt" | "crt"
    program: str
    lpq_capacity: int
    lvq_capacity: int
    sq_capacity: int              # leading store-queue entries
    trail_sq_capacity: int        # bounds unmatched comparator records
    window: int                   # trailing out-of-order window
    slack_min: int = 0            # explicit slack fetch threshold
    store_comparison: bool = True  # False = the paper's "nosc"
    lvq_discipline: str = "associative"
    commit_unverified: bool = False   # mutation: drain skips verification
    checkpoint_ring: int = 0      # recovery ring size; 0 = disabled

    def validate(self) -> "ProtocolConfig":
        if self.kind not in ("srt", "crt"):
            raise ValueError(f"unknown kind {self.kind!r}")
        if self.lvq_discipline not in LVQ_DISCIPLINES:
            raise ValueError(
                f"unknown LVQ discipline {self.lvq_discipline!r}")
        if not self.program or set(self.program) - {LOAD, STORE, PLAIN}:
            raise ValueError(f"bad program {self.program!r}")
        return self


class ProtocolState(NamedTuple):
    lead_pos: int                       # next instruction leading retires
    lpq: Tuple[int, ...]                # retired, not yet trailing-fetched
    window: Tuple[Tuple[int, bool], ...]  # (prog index, needs_exec)
    lvq: Tuple[int, ...]                # load ordinals, FIFO order
    sq: Tuple[Tuple[int, bool], ...]    # (store ordinal, verified)
    pending: Tuple[int, ...]            # trailing records awaiting compare
    committed: int                      # stores drained from the sphere
    ring: int                           # retained checkpoints
    ckpt_armed: bool                    # one checkpoint per boundary
    violation: Optional[str]            # sticky invariant break


class ProtocolSystem(TransitionSystem):
    """The queue protocol of one redundant pair, parameterised."""

    def __init__(self, config: ProtocolConfig) -> None:
        self.config = config.validate()
        program = config.program
        self._load_ordinal = []
        self._store_ordinal = []
        loads = stores = 0
        for op in program:
            self._load_ordinal.append(loads)
            self._store_ordinal.append(stores)
            loads += op == LOAD
            stores += op == STORE
        self.total_stores = stores
        self.name = f"protocol/{config.name}"

    # -- plumbing ----------------------------------------------------------
    def initial(self) -> ProtocolState:
        return ProtocolState(
            lead_pos=0, lpq=(), window=(), lvq=(), sq=(), pending=(),
            committed=0, ring=0, ckpt_armed=True, violation=None)

    def is_final(self, state: ProtocolState) -> bool:
        return (state.lead_pos == len(self.config.program)
                and not state.lpq and not state.window and not state.lvq
                and not state.sq and not state.pending)

    def check(self, state: ProtocolState) -> Optional[str]:
        if state.violation is not None:
            return state.violation
        config = self.config
        trail_retired = (state.lead_pos - len(state.lpq)
                         - len(state.window))
        slack = state.lead_pos - trail_retired
        bound = config.lpq_capacity + config.window
        if slack > bound:
            return (f"slack bound exceeded: leading is {slack} "
                    f"instructions ahead, queues hold only {bound}")
        if state.ring > max(1, config.checkpoint_ring):
            return (f"checkpoint ring overflow: {state.ring} retained, "
                    f"capacity {config.checkpoint_ring}")
        return None

    # -- transition relation ----------------------------------------------
    def enabled(self, s: ProtocolState) \
            -> List[Tuple[str, ProtocolState]]:
        if s.violation is not None:
            return []  # counterexamples end at the violating state
        config = self.config
        program = config.program
        out: List[Tuple[str, ProtocolState]] = []

        # lead-retire: gated on room in every queue the op lands in.
        if s.lead_pos < len(program):
            op = program[s.lead_pos]
            room = len(s.lpq) < config.lpq_capacity
            if room and op == LOAD:
                room = len(s.lvq) < config.lvq_capacity
            if room and op == STORE:
                room = len(s.sq) < config.sq_capacity
            if room:
                lvq = s.lvq
                sq = s.sq
                armed = s.ckpt_armed
                if op == LOAD:
                    lvq = lvq + (self._load_ordinal[s.lead_pos],)
                if op == STORE:
                    sq = sq + ((self._store_ordinal[s.lead_pos],
                                not config.store_comparison),)
                    armed = True  # store traffic re-arms the next boundary
                out.append((
                    f"lead-retire/{op}{s.lead_pos}",
                    s._replace(lead_pos=s.lead_pos + 1,
                               lpq=s.lpq + (s.lead_pos,),
                               lvq=lvq, sq=sq, ckpt_armed=armed)))

        # trail-fetch: LPQ head into the window, slack permitting.  The
        # slack gate lifts once the leading thread has retired its whole
        # program: real workloads wrap (rmt.py computes next_pc mod the
        # program length) so the leading thread never finishes; in the
        # finite-program abstraction the trailing thread must be allowed
        # to drain the residue.
        if s.lpq and len(s.window) < config.window:
            trail_retired = (s.lead_pos - len(s.lpq) - len(s.window))
            if (s.lead_pos >= len(program)
                    or s.lead_pos - trail_retired >= config.slack_min):
                index = s.lpq[0]
                needs_exec = program[index] == LOAD
                out.append((
                    f"trail-fetch/{program[index]}{index}",
                    s._replace(lpq=s.lpq[1:],
                               window=s.window + ((index, needs_exec),))))

        # trail-exec: any unexecuted load in the window may fire.
        for slot, (index, needs_exec) in enumerate(s.window):
            if not needs_exec:
                continue
            ordinal = self._load_ordinal[index]
            transition = self._exec_load(s, slot, index, ordinal)
            if transition is not None:
                out.append(transition)

        # trail-retire: the window head, in program order.
        if s.window:
            index, needs_exec = s.window[0]
            if not needs_exec:
                op = program[index]
                if op == STORE and config.store_comparison:
                    if len(s.pending) < config.trail_sq_capacity:
                        out.append((
                            f"trail-retire/S{index}",
                            s._replace(
                                window=s.window[1:],
                                pending=s.pending
                                + (self._store_ordinal[index],))))
                else:
                    out.append((f"trail-retire/{op}{index}",
                                s._replace(window=s.window[1:])))

        # compare: match the oldest pending record still in the queue.
        if s.pending:
            unverified = {ordinal for ordinal, verified in s.sq
                          if not verified}
            matchable = sorted(set(s.pending) & unverified)
            if matchable:
                ordinal = matchable[0]
                sq = tuple((o, True if o == ordinal else v)
                           for o, v in s.sq)
                pending = tuple(o for o in s.pending if o != ordinal)
                out.append((f"compare/S{ordinal}",
                            s._replace(sq=sq, pending=pending)))

        # drain: the store-queue head leaves the sphere.
        if s.sq:
            ordinal, verified = s.sq[0]
            if verified or config.commit_unverified:
                violation = None
                if not verified:
                    violation = (
                        f"store S{ordinal} left the sphere of "
                        f"replication before output comparison "
                        f"verified it")
                elif ordinal != s.committed:
                    violation = (
                        f"out-of-order commit: store S{ordinal} "
                        f"drained at commit position {s.committed}")
                out.append((f"drain/S{ordinal}",
                            s._replace(sq=s.sq[1:],
                                       committed=s.committed + 1,
                                       violation=violation)))

        # checkpoint: verified-store boundary, bounded ring, once per
        # boundary (re-armed by the next store retirement).
        if (config.checkpoint_ring and s.ckpt_armed
                and not s.sq and not s.pending):
            ring = min(s.ring + 1, config.checkpoint_ring)
            out.append(("checkpoint",
                        s._replace(ring=ring, ckpt_armed=False)))
        return out

    def _exec_load(self, s: ProtocolState, slot: int, index: int,
                   ordinal: int) -> Optional[Tuple[str, ProtocolState]]:
        config = self.config
        label = f"trail-exec/L{index}"
        if config.lvq_discipline == "associative":
            if ordinal not in s.lvq:
                return None  # value not forwarded yet
            consumed = ordinal
            lvq = tuple(o for o in s.lvq if o != ordinal)
        else:
            if not s.lvq:
                return None
            if (config.lvq_discipline == "fifo-checked"
                    and s.lvq[0] != ordinal):
                return None  # head check: wait for our own entry
            consumed = s.lvq[0]
            lvq = s.lvq[1:]
        violation = s.violation
        if consumed != ordinal:
            violation = (
                f"replication integrity: trailing load L{index} "
                f"(ordinal {ordinal}) consumed the LVQ entry of "
                f"ordinal {consumed}")
        window = (s.window[:slot] + ((index, False),)
                  + s.window[slot + 1:])
        return label, s._replace(window=window, lvq=lvq,
                                 violation=violation)

    # -- independence ------------------------------------------------------
    def footprint(self, label: str) -> FrozenSet[str]:
        verb = label.split("/", 1)[0]
        if verb == "lead-retire":
            # Reads/writes the leading position and every producer-side
            # queue; touches the checkpoint arm on stores.
            parts = {"lead", "lpq", "lvq", "sq", "ckpt"}
            return frozenset(parts)
        if verb == "trail-fetch":
            parts = {"lpq", "window"}
            if self.config.slack_min:
                parts.add("lead")  # slack gate reads the leading position
            return frozenset(parts)
        if verb == "trail-exec":
            return frozenset({"window", "lvq"})
        if verb == "trail-retire":
            return frozenset({"window", "pending"})
        if verb == "compare":
            return frozenset({"pending", "sq"})
        if verb == "drain":
            return frozenset({"sq", "committed"})
        if verb == "checkpoint":
            return frozenset({"sq", "pending", "ring", "ckpt"})
        return frozenset(("*",))


# -- configurations --------------------------------------------------------

def _clamp(value: int, cap: int = CAPACITY_CLAMP) -> int:
    return min(int(value), cap)


def _program_for(lpq: int, lvq: int, sq: int, window: int) -> str:
    """A deterministic workload long enough to fill every queue twice:
    a rotating L/S/I mix so loads, stores, and plain instructions all
    cross every hand-off."""
    length = max(6, 2 * max(lpq, lvq, sq, window, 1))
    length = min(length, 10)
    pattern = (LOAD, STORE, PLAIN, STORE)
    return "".join(pattern[i % len(pattern)] for i in range(length))


def from_machine_config(name: str, kind: str, config: MachineConfig,
                        hw_threads: int = 2,
                        lvq_discipline: str = "associative",
                        ) -> ProtocolConfig:
    """Extract one protocol point from a real :class:`MachineConfig`.

    Store-queue partitioning mirrors ``SrtMachine``/``CrtMachine``:
    static partition over the core's hardware threads unless the ptsq
    option gives every thread the full queue.  Capacities are clamped
    (:data:`CAPACITY_CLAMP`) before exploration.
    """
    if config.per_thread_store_queues:
        sq = config.core.store_queue_entries
    else:
        sq = max(1, config.core.store_queue_entries // max(1, hw_threads))
    lpq = _clamp(config.lpq_entries)
    lvq = _clamp(config.lvq_entries)
    sq = _clamp(sq)
    window = 2
    slack = min(config.srt_slack_instructions, 2)
    return ProtocolConfig(
        name=name, kind=kind,
        program=_program_for(lpq, lvq, sq, window),
        lpq_capacity=lpq, lvq_capacity=lvq, sq_capacity=sq,
        trail_sq_capacity=sq, window=window, slack_min=slack,
        store_comparison=config.store_comparison,
        lvq_discipline=lvq_discipline,
        checkpoint_ring=(config.recovery_max_attempts
                         if config.recovery_enabled else 0),
    ).validate()


def shipped_configurations() -> List[ProtocolConfig]:
    """Every (srt|crt) × queue-sizing point the shipped profiles use,
    plus a boundary sweep over the small-capacity cross-product.

    The named points mirror the experiment variants in
    ``harness/experiments.py`` (default, ptsq, nosc, two-program
    partitioning, explicit slack, strict-FIFO LVQ, recovery); the sweep
    walks every combination of clamped queue sizes so a hand-off that
    only deadlocks at a specific sizing cannot hide.
    """
    configs: List[ProtocolConfig] = []
    base = MachineConfig()
    ptsq = MachineConfig(per_thread_store_queues=True)
    nosc = MachineConfig(store_comparison=False)
    slack = MachineConfig(srt_slack_instructions=32)
    recovery = MachineConfig(recovery_enabled=True)
    for kind in ("srt", "crt"):
        configs.append(from_machine_config(f"{kind}-default", kind, base))
        configs.append(from_machine_config(f"{kind}-ptsq", kind, ptsq))
        configs.append(from_machine_config(f"{kind}-nosc", kind, nosc))
        configs.append(from_machine_config(
            f"{kind}-two-program", kind, base, hw_threads=4))
        configs.append(from_machine_config(
            f"{kind}-slack", kind, slack))
        configs.append(from_machine_config(
            f"{kind}-fifo-lvq", kind, base,
            lvq_discipline="fifo-checked"))
        configs.append(from_machine_config(
            f"{kind}-recovery", kind, recovery))
        for lpq in (1, 2):
            for lvq in (1, 2):
                for sq in (1, 2):
                    configs.append(ProtocolConfig(
                        name=f"{kind}-sweep-lpq{lpq}-lvq{lvq}-sq{sq}",
                        kind=kind,
                        program=_program_for(lpq, lvq, sq, 2),
                        lpq_capacity=lpq, lvq_capacity=lvq,
                        sq_capacity=sq, trail_sq_capacity=sq,
                        window=2).validate())
    return configs


def demo_configuration() -> ProtocolConfig:
    """The small fixed point the mutation fixtures are seeded on."""
    return ProtocolConfig(
        name="demo", kind="srt", program="LLSI",
        lpq_capacity=2, lvq_capacity=2, sq_capacity=2,
        trail_sq_capacity=2, window=2,
        lvq_discipline="fifo-checked").validate()


# -- mutations -------------------------------------------------------------

def _mutate_boq_zero(config: ProtocolConfig) -> ProtocolConfig:
    return dataclasses.replace(config, name=config.name + "+boq-zero",
                               lpq_capacity=0)


def _mutate_lvq_unchecked(config: ProtocolConfig) -> ProtocolConfig:
    return dataclasses.replace(config,
                               name=config.name + "+lvq-unchecked",
                               lvq_discipline="fifo-unchecked")


def _mutate_commit_before_verify(config: ProtocolConfig) -> ProtocolConfig:
    return dataclasses.replace(
        config, name=config.name + "+commit-before-verify",
        commit_unverified=True)


#: The three seeded protocol mutations (docs/VERIFY.md): each must
#: produce a golden-matched minimal counterexample, proving the
#: verifier actually discriminates.
MUTATIONS = {
    "boq-zero": _mutate_boq_zero,
    "lvq-unchecked": _mutate_lvq_unchecked,
    "commit-before-verify": _mutate_commit_before_verify,
}


def verify_protocol(config: ProtocolConfig, por: bool = True,
                    mutation: Optional[str] = None,
                    max_states: Optional[int] = None) -> ExploreResult:
    """Explore one configuration (optionally mutated) exhaustively."""
    if mutation is not None:
        config = MUTATIONS[mutation](config)
    kwargs: Dict[str, int] = {}
    if max_states is not None:
        kwargs["max_states"] = max_states
    return explore(ProtocolSystem(config), por=por, **kwargs)
