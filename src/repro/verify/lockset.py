"""Static lockset analysis for the threaded serve/campaign/chaos stack.

The serve layer mixes three concurrency domains: the asyncio event loop
(scheduler state is *loop-confined* — touched only from loop
callbacks), worker threads (the simulation executor, the result-cache
callers, the circuit breakers), and cross-domain hand-off objects
(``threading.Event`` flags crossed into executor threads).  The lock
discipline separating them was, before this pass, enforced only by
convention.

Engine B makes the convention checkable.  Each class (or module)
declares its discipline in a ``Concurrency:`` docstring block::

    Concurrency:
        guarded-by _lock: hits, misses, evictions
        loop-confined: jobs, _queued, _running
        unguarded-ok: cancel_event

and a flow-sensitive stdlib-``ast`` pass checks the code against it:

- **S501** — a ``guarded-by`` field accessed outside a ``with`` region
  holding its lock (``__init__`` excepted: the object is not yet
  shared).  A ``loop-confined`` field accessed from a method that runs
  off-loop (handed to ``run_in_executor``/``Executor.submit`` or a
  ``Thread(target=...)``) is the same defect.  When a class declares a
  contract, any field *written* outside ``__init__`` must appear in it
  — silent growth of undeclared shared state is flagged too.  Classes
  that own locks but declare nothing are checked in inference mode: a
  field written both under a lock and outside any lock is flagged.
- **S502** — lock acquisition-order cycles.  Acquiring lock B while
  holding lock A adds edge A→B (including one call level deep through
  ``self.method()`` and ``self.attr.method()`` receivers); any cycle
  in the resulting graph across every analyzed module is a potential
  deadlock.
- **S503** — blocking calls made while holding a lock: ``.wait()`` on
  anything but the held condition itself, thread/process ``.join()``,
  ``time.sleep``, socket reads, and ``Queue.get/.put``.

A method docstring containing ``Caller must hold <lock>.`` is trusted
as a precondition: the body is analyzed with that lock held (the claim
itself is the caller's obligation — the documented, greppable kind).

A class's locks are discovered two ways: constructed inline in
``__init__`` (``self._lock = threading.Lock()``) or *injected* — an
``__init__`` parameter annotated with a lock type assigned to self
(``def __init__(self, lock: threading.Lock): self._lock = lock``).
The metrics registry uses the injected form to share one lock across
every metric it creates, which is what makes its whole-set snapshot a
single consistent acquisition.

Findings reuse the simlint machinery (:class:`LintFinding`,
``# simlint: disable=`` / ``disable-file=`` pragmas, severity registry)
so ``repro verify lockset`` and ``repro lint`` speak one language.
"""

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.registry import LintFinding, SuppressionTable
from repro.analysis.simlint import package_root

#: Modules under the repro package root the shipped-tree analysis
#: covers: everything that owns a lock or runs threaded today.
LOCKSET_TARGETS = (
    "serve/scheduler.py",
    "serve/cache.py",
    "serve/api.py",
    "serve/client.py",
    "serve/pool.py",
    "campaign/store.py",
    "campaign/engine.py",
    "chaos/controller.py",
    "obs/metrics.py",
    "obs/trace.py",
)

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                   "BoundedSemaphore"}
_BLOCKING_ATTRS = {"wait", "recv", "recv_into", "accept", "urlopen",
                   "getresponse", "select"}
_CONTRACT_RE = re.compile(
    r"^\s*(?:(guarded-by)\s+(\w+)|(loop-confined)|(unguarded-ok))\s*:"
    r"\s*(.*)$")
_PRECONDITION_RE = re.compile(r"Caller must hold\s+`?(\w+)`?")


def _is_lock_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return (isinstance(func, ast.Attribute)
            and func.attr in _LOCK_FACTORIES)


def _is_queue_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else "")
    return name in {"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue"}


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` → ``"X"``, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


@dataclass
class Contract:
    """One class's declared concurrency discipline."""

    guards: Dict[str, str] = field(default_factory=dict)  # field -> lock
    loop_confined: Set[str] = field(default_factory=set)
    unguarded_ok: Set[str] = field(default_factory=set)
    declared: bool = False

    def mentions(self, name: str) -> bool:
        return (name in self.guards or name in self.loop_confined
                or name in self.unguarded_ok)

    @classmethod
    def from_docstring(cls, doc: Optional[str]) -> "Contract":
        contract = cls()
        if not doc:
            return contract
        in_block = False
        for raw in doc.splitlines():
            line = raw.strip()
            if line == "Concurrency:":
                in_block = True
                contract.declared = True
                continue
            if not in_block:
                continue
            match = _CONTRACT_RE.match(raw)
            if match is None:
                if line:  # a non-entry line ends the block
                    in_block = False
                continue
            fields = {part.strip() for part in match.group(5).split(",")
                      if part.strip()}
            if match.group(1):          # guarded-by <lock>:
                for name in fields:
                    contract.guards[name] = match.group(2)
            elif match.group(3):        # loop-confined:
                contract.loop_confined |= fields
            else:                       # unguarded-ok:
                contract.unguarded_ok |= fields
        return contract


@dataclass
class _ClassModel:
    name: str
    node: ast.ClassDef
    contract: Contract
    locks: Set[str] = field(default_factory=set)       # self.<lock> attrs
    queues: Set[str] = field(default_factory=set)      # Queue-typed attrs
    members: Dict[str, str] = field(default_factory=dict)  # attr -> class
    off_loop: Set[str] = field(default_factory=set)    # methods run off-loop
    #: method name -> lock nodes it acquires directly (for S502 edges
    #: one call level deep).
    acquired_by_method: Dict[str, Set[str]] = field(default_factory=dict)

    def lock_node(self, lockattr: str) -> str:
        return f"{self.name}.{lockattr}"


class _ModuleAnalysis:
    """Per-module pass; cross-module state (the lock-order graph) is
    accumulated by :class:`LocksetAnalyzer`."""

    def __init__(self, rel_path: str, source: str) -> None:
        self.rel = rel_path
        self.suppress = SuppressionTable.from_source(source)
        self.tree = ast.parse(source, filename=rel_path)
        self.findings: List[LintFinding] = []
        self.classes: Dict[str, _ClassModel] = {}
        self.module_locks: Set[str] = set()   # module-level lock globals
        self.module_contract = Contract.from_docstring(
            ast.get_docstring(self.tree))
        #: (holder, acquired, line) lock-order edges discovered here.
        self.edges: List[Tuple[str, str, int]] = []
        self._collect()
        #: Class registry for call-through edge resolution; widened to
        #: the whole analysis universe by :func:`analyze_modules` so
        #: holding a lock while calling into another module's class
        #: still contributes acquisition-order edges.
        self.all_classes: Dict[str, _ClassModel] = self.classes

    # -- pass 1: structure --------------------------------------------------
    def _collect(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Assign) and _is_lock_ctor(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.module_locks.add(target.id)
            if isinstance(stmt, ast.ClassDef):
                model = _ClassModel(
                    name=stmt.name, node=stmt,
                    contract=Contract.from_docstring(
                        ast.get_docstring(stmt)))
                self._collect_init(model)
                self._collect_off_loop(model)
                self._collect_acquisitions(model)
                self.classes[stmt.name] = model

    def _collect_init(self, model: _ClassModel) -> None:
        for item in model.node.body:
            if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "__init__"):
                # Parameter type annotations resolve member classes for
                # the dependency-injection idiom (self.cache = cache
                # where __init__ takes cache: ResultCache).
                params: Dict[str, str] = {}
                lock_params: Set[str] = set()
                for arg in item.args.args + item.args.kwonlyargs:
                    note = arg.annotation
                    if isinstance(note, ast.Name):
                        params[arg.arg] = note.id
                    elif (isinstance(note, ast.Constant)
                          and isinstance(note.value, str)):
                        params[arg.arg] = note.value.strip('"\'')
                    # Lock injection: `__init__(..., lock: threading.Lock)`
                    # assigned to self is as much this class's lock as an
                    # inline construction (the metrics registry shares one
                    # lock across every metric it creates this way).
                    note_name = (note.id if isinstance(note, ast.Name)
                                 else note.attr
                                 if isinstance(note, ast.Attribute)
                                 else None)
                    if note_name in _LOCK_FACTORIES:
                        lock_params.add(arg.arg)
                for node in ast.walk(item):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is None:
                            continue
                        if _is_lock_ctor(node.value):
                            model.locks.add(attr)
                        elif _is_queue_ctor(node.value):
                            model.queues.add(attr)
                        elif (isinstance(node.value, ast.Call)
                              and isinstance(node.value.func, ast.Name)):
                            model.members[attr] = node.value.func.id
                        elif (isinstance(node.value, ast.Name)
                              and node.value.id in lock_params):
                            model.locks.add(attr)
                        elif (isinstance(node.value, ast.Name)
                              and node.value.id in params):
                            model.members[attr] = params[node.value.id]

    def _collect_off_loop(self, model: _ClassModel) -> None:
        """Methods handed to executors or threads anywhere in the
        module run outside the event loop."""
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else "")
            candidates: List[ast.AST] = []
            if callee in ("run_in_executor", "submit"):
                candidates.extend(node.args)
            if callee == "Thread":
                candidates.extend(kw.value for kw in node.keywords
                                  if kw.arg == "target")
            for arg in candidates:
                attr = _self_attr(arg)
                if attr is not None:
                    model.off_loop.add(attr)

    def _collect_acquisitions(self, model: _ClassModel) -> None:
        for item in model.node.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            acquired: Set[str] = set()
            for node in ast.walk(item):
                if isinstance(node, ast.With):
                    for lock in self._locks_of_with(node, model):
                        acquired.add(lock)
            model.acquired_by_method[item.name] = acquired

    def _locks_of_with(self, node: ast.With,
                       model: Optional[_ClassModel]) -> List[str]:
        """Lock nodes a ``with`` statement acquires, in item order."""
        out: List[str] = []
        for item in node.items:
            expr = item.context_expr
            attr = _self_attr(expr)
            if (attr is not None and model is not None
                    and attr in model.locks):
                out.append(model.lock_node(attr))
            elif (isinstance(expr, ast.Name)
                  and expr.id in self.module_locks):
                out.append(f"{self.rel}::{expr.id}")
        return out

    # -- pass 2: flow-sensitive checks --------------------------------------
    def run(self) -> None:
        for model in self.classes.values():
            inference = bool(model.locks) and not model.contract.declared
            writes_locked: Dict[str, int] = {}
            writes_unlocked: Dict[str, int] = {}
            for item in model.node.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                held: Tuple[str, ...] = ()
                doc = ast.get_docstring(item)
                if doc:
                    for lockattr in _PRECONDITION_RE.findall(doc):
                        if lockattr in model.locks:
                            held = held + (model.lock_node(lockattr),)
                self._walk(item.body, model, item, held,
                           writes_locked, writes_unlocked)
            if inference:
                for name in sorted(set(writes_locked) &
                                   set(writes_unlocked)):
                    self._report(
                        "S501", writes_unlocked[name],
                        f"{model.name}.{name} is written under a lock "
                        f"at line {writes_locked[name]} but without "
                        f"one here; guard both or declare the field "
                        f"in a 'Concurrency:' docstring block")
        self._walk_module_scope()

    def _walk_module_scope(self) -> None:
        """Module-level functions against module-level locks/globals."""
        for item in self.tree.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            self._walk_stmts_module(item.body, ())

    def _walk_stmts_module(self, body: Sequence[ast.stmt],
                           held: Tuple[str, ...]) -> None:
        guards = self.module_contract.guards
        for stmt in body:
            if isinstance(stmt, ast.With):
                acquired = self._locks_of_with(stmt, None)
                for lock in acquired:
                    for holder in held:
                        if holder != lock:
                            self.edges.append((holder, lock, stmt.lineno))
                self._walk_stmts_module(stmt.body,
                                        held + tuple(acquired))
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for node in self._expr_nodes(stmt, header_only=False):
                if isinstance(node, ast.Name) and node.id in guards:
                    lock = f"{self.rel}::{guards[node.id]}"
                    if lock not in held:
                        self._report(
                            "S501", node.lineno,
                            f"global {node.id} is declared guarded-by "
                            f"{guards[node.id]} but accessed without it")
                if isinstance(node, ast.Call) and held:
                    self._check_blocking(node, held, None)
            for child_body in self._compound_bodies(stmt):
                self._walk_stmts_module(child_body, held)

    def _walk(self, body: Sequence[ast.stmt], model: _ClassModel,
              method: ast.AST, held: Tuple[str, ...],
              writes_locked: Dict[str, int],
              writes_unlocked: Dict[str, int],
              in_closure: bool = False) -> None:
        method_name = getattr(method, "name", "<lambda>")
        in_init = method_name == "__init__"
        for stmt in body:
            if isinstance(stmt, ast.With):
                acquired = self._locks_of_with(stmt, model)
                for lock in acquired:
                    for holder in held:
                        if holder != lock:
                            self.edges.append((holder, lock, stmt.lineno))
                self._scan_exprs(stmt, model, method_name, held,
                                 writes_locked, writes_unlocked,
                                 in_init, header_only=True)
                self._walk(stmt.body, model, method, held + tuple(acquired),
                           writes_locked, writes_unlocked, in_closure)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A closure's body runs later, possibly on another
                # thread: analyze it with an empty lockset.
                self._walk(stmt.body, model, stmt, (),
                           writes_locked, writes_unlocked, in_closure=True)
                continue
            if isinstance(stmt, ast.ClassDef):
                continue
            self._scan_exprs(stmt, model, method_name, held,
                             writes_locked, writes_unlocked, in_init)
            for child_body in self._compound_bodies(stmt):
                self._walk(child_body, model, method, held,
                           writes_locked, writes_unlocked, in_closure)

    @staticmethod
    def _compound_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
        bodies = []
        for name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, name, None)
            if isinstance(block, list) and block and \
                    isinstance(block[0], ast.stmt):
                bodies.append(block)
        for handler in getattr(stmt, "handlers", []):
            bodies.append(handler.body)
        return bodies

    def _scan_exprs(self, stmt: ast.stmt, model: _ClassModel,
                    method_name: str, held: Tuple[str, ...],
                    writes_locked: Dict[str, int],
                    writes_unlocked: Dict[str, int],
                    in_init: bool, header_only: bool = False) -> None:
        """S501 field accesses, S502 call-through edges, S503 blocking
        calls in the expressions of one statement (not child blocks)."""
        for node in self._expr_nodes(stmt, header_only):
            attr = _self_attr(node)
            if attr is not None and isinstance(node, ast.Attribute):
                is_write = isinstance(node.ctx, (ast.Store, ast.Del))
                self._check_field(node, attr, model, method_name, held,
                                  is_write, in_init)
                if is_write and not in_init:
                    target = (writes_locked if held else writes_unlocked)
                    target.setdefault(attr, node.lineno)
            if isinstance(node, ast.Call):
                if held:
                    self._check_blocking(node, held, model)
                self._call_through_edges(node, model, held)

    def _expr_nodes(self, stmt: ast.stmt,
                    header_only: bool) -> List[ast.AST]:
        """Expression-level nodes of ``stmt`` excluding nested
        statement blocks (walked separately with their own locksets)."""
        out: List[ast.AST] = []
        stack: List[ast.AST] = []
        if header_only:
            # With headers: only the context expressions.
            stack.extend(item.context_expr
                         for item in getattr(stmt, "items", []))
        else:
            for field_name, value in ast.iter_fields(stmt):
                if isinstance(value, ast.expr):
                    stack.append(value)
                elif isinstance(value, list):
                    stack.extend(v for v in value
                                 if isinstance(v, ast.expr))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Lambda,)):
                continue  # deferred execution; no lock context
            out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    def _check_field(self, node: ast.Attribute, attr: str,
                     model: _ClassModel, method_name: str,
                     held: Tuple[str, ...], is_write: bool,
                     in_init: bool) -> None:
        contract = model.contract
        if not contract.declared or in_init:
            return
        if attr in model.locks or attr in contract.unguarded_ok:
            return
        if attr in contract.guards:
            lock = model.lock_node(contract.guards[attr])
            if lock not in held:
                self._report(
                    "S501", node.lineno,
                    f"{model.name}.{attr} is declared guarded-by "
                    f"{contract.guards[attr]} but accessed without "
                    f"holding it (in {method_name})")
            return
        if attr in contract.loop_confined:
            if method_name in model.off_loop:
                self._report(
                    "S501", node.lineno,
                    f"{model.name}.{attr} is declared loop-confined "
                    f"but {method_name} runs off-loop (handed to an "
                    f"executor or thread)")
            return
        if is_write and not contract.mentions(attr):
            self._report(
                "S501", node.lineno,
                f"{model.name}.{attr} is written outside __init__ but "
                f"missing from the class 'Concurrency:' contract; "
                f"declare its guard (or loop-confined / unguarded-ok)")

    def _check_blocking(self, node: ast.Call, held: Tuple[str, ...],
                        model: Optional[_ClassModel]) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        blocking = None
        if attr in _BLOCKING_ATTRS:
            receiver = _self_attr(func.value)
            if (receiver is not None and model is not None
                    and model.lock_node(receiver) in held):
                return  # Condition.wait on the held condition itself
            blocking = f".{attr}()"
        elif attr == "join" and not node.args:
            blocking = ".join()"
        elif (attr == "sleep" and isinstance(func.value, ast.Name)
                and func.value.id == "time"):
            blocking = "time.sleep()"
        elif attr in ("get", "put"):
            receiver = _self_attr(func.value)
            if (receiver is not None and model is not None
                    and receiver in model.queues):
                blocking = f"Queue.{attr}()"
        if blocking is not None:
            locks = ", ".join(sorted(held))
            self._report(
                "S503", node.lineno,
                f"blocking call {blocking} while holding {locks}; "
                f"release the lock first or use a timeout-and-retry "
                f"outside the critical section")

    def _call_through_edges(self, node: ast.Call,
                            model: Optional[_ClassModel],
                            held: Tuple[str, ...]) -> None:
        """One-level interprocedural S502 edges: self.m() and
        self.member.m() receivers whose methods acquire locks."""
        if not held or model is None:
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver_attr = _self_attr(func.value)
        callee_locks: Set[str] = set()
        if receiver_attr is None:
            # self.m(...) — same class, one level deep.
            if _self_attr(func) is not None:
                callee_locks = model.acquired_by_method.get(func.attr,
                                                            set())
        else:
            member_class = model.members.get(receiver_attr)
            target = self.all_classes.get(member_class or "")
            if target is not None:
                callee_locks = target.acquired_by_method.get(func.attr,
                                                             set())
        for lock in callee_locks:
            for holder in held:
                if holder != lock:
                    self.edges.append((holder, lock, node.lineno))

    def _report(self, rule: str, line: int, message: str) -> None:
        if self.suppress.active(rule, line):
            return
        self.findings.append(LintFinding(rule, self.rel, line, message))


def _find_cycles(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles in the lock-order graph (DFS, deduplicated by
    rotation so each cycle reports once)."""
    cycles: List[List[str]] = []
    seen: Set[Tuple[str, ...]] = set()
    for start in sorted(edges):
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for succ in sorted(edges.get(node, ())):
                if succ == start:
                    rotation = min(
                        tuple(path[i:] + path[:i])
                        for i in range(len(path)))
                    if rotation not in seen:
                        seen.add(rotation)
                        cycles.append(path + [start])
                elif succ not in path and len(path) < 8:
                    stack.append((succ, path + [succ]))
    return cycles


def analyze_modules(modules: Sequence[Tuple[str, str]]) -> List[LintFinding]:
    """Analyze (rel_path, source) pairs as one lock-order universe."""
    analyses = [_ModuleAnalysis(rel, source) for rel, source in modules]
    universe: Dict[str, _ClassModel] = {}
    for analysis in analyses:
        universe.update(analysis.classes)
    findings: List[LintFinding] = []
    graph: Dict[str, Set[str]] = {}
    edge_site: Dict[Tuple[str, str], Tuple["_ModuleAnalysis", int]] = {}
    for analysis in analyses:
        analysis.all_classes = universe
        analysis.run()
        findings.extend(analysis.findings)
        for holder, acquired, line in analysis.edges:
            graph.setdefault(holder, set()).add(acquired)
            edge_site.setdefault((holder, acquired), (analysis, line))
    for cycle in _find_cycles(graph):
        analysis, line = edge_site[(cycle[0], cycle[1])]
        message = (f"lock acquisition-order cycle: "
                   f"{' -> '.join(cycle)}; impose a global order or "
                   f"merge the locks")
        if not analysis.suppress.active("S502", line):
            findings.append(
                LintFinding("S502", analysis.rel, line, message))
    findings.sort(key=LintFinding.sort_key)
    return findings


def analyze_source(source: str, rel_path: str) -> List[LintFinding]:
    """Single-module entry point (tests and tooling)."""
    return analyze_modules([(rel_path, source)])


def analyze_lockset(root: Optional[Path] = None,
                    targets: Sequence[str] = LOCKSET_TARGETS,
                    ) -> List[LintFinding]:
    """Analyze the shipped target modules under the package root."""
    base = root or package_root()
    modules: List[Tuple[str, str]] = []
    for rel in targets:
        path = base / rel
        if path.exists():  # targets may trail the tree during refactors
            modules.append((rel, path.read_text(encoding="utf-8")))
    return analyze_modules(modules)
