"""repro.verify — the concurrency verifier (see ``docs/VERIFY.md``).

Two engines, one CLI (``python -m repro verify <protocol|lockset|all>``):

- **Engine A** (:mod:`repro.verify.protocol` +
  :mod:`repro.verify.explore`): the SRT/CRT leading/trailing queue
  protocol — slack-gated fetch through the LPQ, LVQ input replication,
  store-comparator output verification, checkpoint ring — extracted
  into an explicit-state transition system and exhaustively explored
  over every interleaving (sleep-set partial-order reduction optional),
  proving deadlock-freedom, bounded slack, replication integrity, and
  in-order verified store commit; a seeded protocol mutation yields a
  minimal counterexample schedule instead.
- **Engine B** (:mod:`repro.verify.lockset`): a flow-sensitive static
  lockset pass over the threaded serve/campaign/chaos stack, checking
  the per-class ``Concurrency:`` docstring contracts (rules S501–S503,
  suppressible through the simlint pragma machinery).
"""

from repro.verify.explore import (Counterexample, ExploreResult,
                                  StateExplosion, explore)
from repro.verify.lockset import LOCKSET_TARGETS, analyze_lockset
from repro.verify.protocol import (MUTATIONS, ProtocolConfig,
                                   ProtocolSystem, demo_configuration,
                                   shipped_configurations, verify_protocol)

__all__ = [
    "Counterexample", "ExploreResult", "StateExplosion", "explore",
    "LOCKSET_TARGETS", "analyze_lockset",
    "MUTATIONS", "ProtocolConfig", "ProtocolSystem",
    "demo_configuration", "shipped_configurations", "verify_protocol",
]
