"""Explicit-state exploration: exhaustive BFS and sleep-set POR DFS.

The explorer is generic over a :class:`TransitionSystem`: hashable
states, a deterministic ``enabled(state)`` successor function, a
``check(state)`` invariant predicate, and a ``footprint(label)`` map
feeding the independence relation.  Two strategies share it:

- :func:`explore_bfs` — plain breadth-first search over the full
  interleaving graph.  Every reachable state is visited exactly once;
  because the frontier expands in schedule-length order, the first
  violation found is reached by a **minimal** (shortest, and among
  shortest the enumeration-order-first) schedule.  This is the engine
  behind golden counterexample traces.
- :func:`explore_por` — depth-first search with **sleep sets**
  (Godefroid).  After firing transition ``t`` from a state, every
  sibling explored *before* ``t`` that is independent of ``t`` goes to
  sleep in the successor: the interleaving that fires it there is a
  commutation of one already explored.  Sleep sets prune redundant
  *transitions*, never states — combined with the superset rule at
  re-visits (a state reached again with a sleep set that is not a
  superset of the stored one is re-expanded with the intersection),
  every reachable state is still visited, so invariant checks and
  deadlock detection remain sound (the argument is spelled out in
  ``docs/VERIFY.md``).

Determinism: both strategies iterate ``enabled`` in the order the
system produces it and use no hashing-order-sensitive structure for
scheduling, so states visited, transition counts, and counterexample
schedules are bit-stable run to run.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

State = Hashable

#: Default guard against state-space blowup (a mis-built model, not a
#: legitimate configuration: the shipped protocol configs stay far
#: below this).
DEFAULT_MAX_STATES = 2_000_000


class StateExplosion(RuntimeError):
    """The exploration exceeded its state budget."""


class TransitionSystem:
    """Duck-typed base: concrete systems override all four hooks."""

    name = "abstract"

    def initial(self) -> State:
        raise NotImplementedError

    def enabled(self, state: State) -> List[Tuple[str, State]]:
        """Deterministically ordered (label, successor) pairs."""
        raise NotImplementedError

    def is_final(self, state: State) -> bool:
        """True for states where quiescence is legitimate (run done)."""
        raise NotImplementedError

    def check(self, state: State) -> Optional[str]:
        """An invariant-violation message, or None."""
        return None

    def footprint(self, label: str) -> FrozenSet[str]:
        """Components the transition reads or writes.  Two transitions
        with disjoint footprints commute and cannot enable or disable
        each other — the (conservative) independence relation."""
        return frozenset(("*",))  # default: everything conflicts


@dataclass(frozen=True)
class Counterexample:
    kind: str                     # "deadlock" | "invariant"
    reason: str
    schedule: Tuple[str, ...]     # transition labels from the initial state
    minimal: bool                 # produced by BFS (shortest schedule)

    def render(self) -> str:
        lines = [f"{self.kind}: {self.reason}"]
        if self.schedule:
            lines.append(f"  schedule ({len(self.schedule)} steps):")
            for step, label in enumerate(self.schedule):
                lines.append(f"    {step + 1:>3d}. {label}")
        else:
            lines.append("  schedule: <empty — the initial state violates>")
        return "\n".join(lines)


@dataclass
class ExploreResult:
    system: str
    ok: bool
    states: int                   # distinct states visited
    transitions: int              # transitions fired (successors computed)
    por: bool
    sleep_skips: int = 0          # transitions pruned by sleep sets
    counterexample: Optional[Counterexample] = None
    final_states: int = 0

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "system": self.system,
            "ok": self.ok,
            "states": self.states,
            "transitions": self.transitions,
            "por": self.por,
            "sleep_skips": self.sleep_skips,
            "final_states": self.final_states,
        }
        if self.counterexample is not None:
            payload["counterexample"] = {
                "kind": self.counterexample.kind,
                "reason": self.counterexample.reason,
                "schedule": list(self.counterexample.schedule),
                "minimal": self.counterexample.minimal,
            }
        return payload


@dataclass
class _Independence:
    """Footprint-disjointness independence with per-pair memoization."""

    system: TransitionSystem
    _foot: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def footprint(self, label: str) -> FrozenSet[str]:
        cached = self._foot.get(label)
        if cached is None:
            cached = self.system.footprint(label)
            self._foot[label] = cached
        return cached

    def independent(self, a: str, b: str) -> bool:
        fa, fb = self.footprint(a), self.footprint(b)
        if "*" in fa or "*" in fb:
            return False
        return not (fa & fb)


def _violation(system: TransitionSystem, state: State,
               schedule: Tuple[str, ...],
               minimal: bool) -> Optional[Counterexample]:
    reason = system.check(state)
    if reason is not None:
        return Counterexample("invariant", reason, schedule, minimal)
    return None


def _deadlock(system: TransitionSystem, state: State, n_enabled: int,
              schedule: Tuple[str, ...],
              minimal: bool) -> Optional[Counterexample]:
    if n_enabled == 0 and not system.is_final(state):
        return Counterexample(
            "deadlock",
            "non-final state with no enabled transition", schedule, minimal)
    return None


def explore_bfs(system: TransitionSystem,
                max_states: int = DEFAULT_MAX_STATES) -> ExploreResult:
    """Exhaustive breadth-first search; minimal counterexamples."""
    initial = system.initial()
    parent: Dict[State, Optional[Tuple[State, str]]] = {initial: None}
    queue: deque = deque([initial])
    transitions = 0
    finals = 0

    def schedule_to(state: State) -> Tuple[str, ...]:
        labels: List[str] = []
        cursor: Optional[State] = state
        while parent[cursor] is not None:
            cursor, label = parent[cursor]  # type: ignore[misc]
            labels.append(label)
        return tuple(reversed(labels))

    while queue:
        state = queue.popleft()
        bad = _violation(system, state, schedule_to(state), minimal=True)
        if bad is not None:
            return ExploreResult(system.name, False, len(parent),
                                 transitions, por=False, counterexample=bad)
        successors = system.enabled(state)
        transitions += len(successors)
        dead = _deadlock(system, state, len(successors),
                         schedule_to(state), minimal=True)
        if dead is not None:
            return ExploreResult(system.name, False, len(parent),
                                 transitions, por=False, counterexample=dead)
        if not successors:
            finals += 1
        for label, successor in successors:
            if successor not in parent:
                if len(parent) >= max_states:
                    raise StateExplosion(
                        f"{system.name}: more than {max_states} states")
                parent[successor] = (state, label)
                queue.append(successor)
    return ExploreResult(system.name, True, len(parent), transitions,
                         por=False, final_states=finals)


def explore_por(system: TransitionSystem,
                max_states: int = DEFAULT_MAX_STATES) -> ExploreResult:
    """DFS with sleep sets.  Same verdict as :func:`explore_bfs`; the
    counterexample schedule (if any) is valid but not necessarily
    minimal — callers wanting the golden minimal trace re-run BFS."""
    indep = _Independence(system)
    initial = system.initial()
    #: state -> sleep set it was last expanded with (superset rule).
    expanded: Dict[State, FrozenSet[str]] = {}
    transitions = 0
    sleep_skips = 0
    finals = 0
    stack: List[Tuple[State, FrozenSet[str], Tuple[str, ...]]] = [
        (initial, frozenset(), ())]

    while stack:
        state, sleep, schedule = stack.pop()
        stored = expanded.get(state)
        if stored is not None:
            if sleep >= stored:
                continue  # already expanded at least this permissively
            sleep = sleep & stored
        expanded[state] = sleep
        if stored is None and len(expanded) > max_states:
            raise StateExplosion(
                f"{system.name}: more than {max_states} states")

        bad = _violation(system, state, schedule, minimal=False)
        if bad is not None:
            return ExploreResult(system.name, False, len(expanded),
                                 transitions, por=True,
                                 sleep_skips=sleep_skips, counterexample=bad)
        successors = system.enabled(state)
        dead = _deadlock(system, state, len(successors), schedule,
                         minimal=False)
        if dead is not None:
            return ExploreResult(system.name, False, len(expanded),
                                 transitions, por=True,
                                 sleep_skips=sleep_skips, counterexample=dead)
        if not successors:
            finals += 1
        explored_here: List[str] = []
        for label, successor in successors:
            if label in sleep:
                sleep_skips += 1
                continue
            transitions += 1
            successor_sleep = frozenset(
                t for t in (sleep | frozenset(explored_here))
                if indep.independent(t, label))
            stack.append((successor, successor_sleep, schedule + (label,)))
            explored_here.append(label)
    return ExploreResult(system.name, True, len(expanded), transitions,
                         por=True, sleep_skips=sleep_skips,
                         final_states=finals)


def explore(system: TransitionSystem, por: bool = True,
            max_states: int = DEFAULT_MAX_STATES) -> ExploreResult:
    """Verify ``system``; on violation, always report a minimal trace.

    POR proves the clean case fast; reduced search does not preserve
    shortest paths, so a violation found under POR triggers one
    unreduced BFS to reconstruct the minimal schedule (the mutated
    systems that need this are tiny — the expensive exhaustive runs
    are exactly the clean ones POR accelerates).
    """
    if not por:
        return explore_bfs(system, max_states=max_states)
    result = explore_por(system, max_states=max_states)
    if result.ok:
        return result
    minimal = explore_bfs(system, max_states=max_states)
    # Keep the POR accounting (it did the discovery) but serve the
    # minimal counterexample.
    result.counterexample = minimal.counterexample
    return result


def replay(system: TransitionSystem,
           schedule: Sequence[str]) -> Tuple[State, Optional[str]]:
    """Run ``schedule`` from the initial state; (final state, violation).

    Raises ValueError if a label is not enabled where the schedule
    demands it — a golden trace that stopped replaying exposes a model
    change that must re-bless the fixture.
    """
    state = system.initial()
    for position, label in enumerate(schedule):
        for candidate, successor in system.enabled(state):
            if candidate == label:
                state = successor
                break
        else:
            enabled_now = ", ".join(
                label for label, _ in system.enabled(state)) or "<none>"
            raise ValueError(
                f"schedule step {position + 1} ({label!r}) not enabled; "
                f"enabled: {enabled_now}")
    return state, system.check(state)
