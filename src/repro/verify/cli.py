"""CLI verb for the concurrency verifier.

``python -m repro verify <protocol|lockset|all>`` — run Engine A (the
SRT/CRT queue-protocol model checker), Engine B (the static lockset
analyzer), or both, with the unified JSON envelope the other analysis
verbs emit.

Exit codes follow the analysis convention: 0 clean, 1 findings at the
gating severity (protocol violations and S5xx errors always gate;
warnings too with ``--strict``), 2 usage error.

``--mutation NAME`` verifies the demo configuration with one of the
seeded protocol mutations applied — used by CI to prove the checker
actually rejects broken protocols (exit must be nonzero and the
counterexample schedule must match the golden fixture).
"""

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis import report as rpt
from repro.analysis.simlint import LintFinding
from repro.verify.explore import ExploreResult, StateExplosion
from repro.verify.lockset import analyze_lockset
from repro.verify.protocol import (MUTATIONS, demo_configuration,
                                   shipped_configurations, verify_protocol)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="Concurrency verifier: exhaustive model checking "
                    "of the SRT/CRT queue protocols + static lockset "
                    "analysis of the threaded serve/campaign stack")
    parser.add_argument("engine", nargs="?", default="all",
                        choices=("protocol", "lockset", "all"),
                        help="which engine to run (default: all)")
    parser.add_argument("--strict", action="store_true",
                        help="warnings also fail the run")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--config", default=None,
                        help="verify only the named protocol "
                             "configuration (default: all shipped)")
    parser.add_argument("--mutation", choices=sorted(MUTATIONS),
                        default=None,
                        help="apply a seeded protocol mutation to the "
                             "demo configuration (CI negative test)")
    parser.add_argument("--no-por", action="store_true",
                        help="plain BFS without sleep-set reduction")
    parser.add_argument("--max-states", type=int, default=None,
                        help="state-budget override per configuration")
    parser.add_argument("--rules", action="store_true",
                        help="print the S5xx rule catalogue and exit")
    return parser


def _protocol_results(args: argparse.Namespace) -> List[ExploreResult]:
    if args.mutation is not None:
        configs = [demo_configuration()]
    else:
        configs = shipped_configurations()
    if args.config is not None:
        configs = [c for c in configs if c.name == args.config]
        if not configs:
            raise KeyError(
                f"unknown protocol configuration {args.config!r}")
    kwargs: Dict[str, object] = {"por": not args.no_por}
    if args.max_states is not None:
        kwargs["max_states"] = args.max_states
    return [verify_protocol(config, mutation=args.mutation, **kwargs)
            for config in configs]


def _render_protocol(results: Sequence[ExploreResult]) -> str:
    lines = []
    for result in results:
        status = "ok" if result.ok else "VIOLATION"
        lines.append(
            f"{result.system:<44s} {status:<10s} "
            f"states={result.states:<6d} "
            f"transitions={result.transitions}")
        if result.counterexample is not None:
            for line in result.counterexample.render().splitlines():
                lines.append(f"    {line}")
    clean = sum(1 for r in results if r.ok)
    lines.append(f"\nprotocol: {clean}/{len(results)} "
                 f"configuration(s) verified")
    return "\n".join(lines)


def cmd_verify(argv: Sequence[str]) -> int:
    args = _build_parser().parse_args(list(argv))
    if args.rules:
        print(rpt.render_lint_rules())
        return 0
    if args.mutation is not None and args.engine == "lockset":
        print("error: --mutation applies to the protocol engine",
              file=sys.stderr)
        return 2

    protocol_results: List[ExploreResult] = []
    findings: List[LintFinding] = []
    try:
        if args.engine in ("protocol", "all"):
            protocol_results = _protocol_results(args)
        if args.engine in ("lockset", "all") and args.mutation is None:
            findings = analyze_lockset()
    except (KeyError, StateExplosion) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2

    protocol_bad = sum(1 for r in protocol_results if not r.ok)
    errors = sum(1 for f in findings if f.severity == "error")
    gating = protocol_bad + (len(findings) if args.strict else errors)

    if args.format == "json":
        detail = rpt.lint_to_dict(findings)
        payload = rpt.envelope(
            "verify", not gating, detail.pop("findings"),
            strict=args.strict,
            engine=args.engine,
            mutation=args.mutation,
            protocol=[r.to_dict() for r in protocol_results],
            protocol_violations=protocol_bad,
            **detail)
        print(rpt.to_json(payload))
    else:
        sections = []
        if protocol_results:
            sections.append(_render_protocol(protocol_results))
        if args.engine in ("lockset", "all") and args.mutation is None:
            sections.append(rpt.render_lint(findings))
        print("\n\n".join(sections))
    return 1 if gating else 0
