"""Text rendering for experiment results (the paper-style tables)."""

from typing import List

from repro.harness.experiments import ExperimentResult
from repro.harness.tracing import Histogram


def render_table(result: ExperimentResult, precision: int = 3,
                 width: int = 10) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    label_width = max([len(result.experiment)]
                      + [len(label) for label in result.rows]
                      + [len("arith.mean")])
    lines: List[str] = []
    lines.append(f"# {result.experiment}: {result.description}")
    header = " ".join([" " * label_width]
                      + [series.rjust(width) for series in result.series])
    lines.append(header)
    for label, row in result.rows.items():
        cells = []
        for series in result.series:
            value = row.get(series)
            if value is None:
                cells.append("-".rjust(width))
            elif isinstance(value, int):
                cells.append(str(value).rjust(width))
            else:
                cells.append(f"{value:.{precision}f}".rjust(width))
        lines.append(" ".join([label.ljust(label_width)] + cells))
    mean_cells = []
    for series in result.series:
        mean = result.summary.get(f"mean.{series}")
        mean_cells.append("-".rjust(width) if mean is None
                          else f"{mean:.{precision}f}".rjust(width))
    lines.append(" ".join(["arith.mean".ljust(label_width)] + mean_cells))
    for key, value in result.summary.items():
        if not key.startswith("mean."):
            lines.append(f"  {key} = {value:.{precision}f}")
    return "\n".join(lines)


def render_histogram(title: str, histogram: Histogram,
                     width: int = 40) -> str:
    """Render a :class:`~repro.harness.tracing.Histogram` as text bars.

    Each row is one bucket: ``[lo-hi)  count  ####``; bars are scaled so
    the fullest bucket spans ``width`` characters.
    """
    rows = histogram.rows()
    lines = [f"# {title} (n={histogram.total}, "
             f"mean={histogram.mean():.1f})"]
    if not rows:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(count for _, _, count in rows)
    label_width = max(len(f"[{low}-{high})") for low, high, _ in rows)
    count_width = len(str(peak))
    for low, high, count in rows:
        bar = "#" * max(1, round(width * count / peak)) if count else ""
        label = f"[{low}-{high})".ljust(label_width)
        lines.append(f"{label}  {str(count).rjust(count_width)}  {bar}")
    return "\n".join(lines)


def render_comparison(title: str, entries: List[tuple],
                      precision: int = 3) -> str:
    """Render simple (label, value) pairs."""
    width = max(len(label) for label, _ in entries)
    lines = [f"# {title}"]
    for label, value in entries:
        lines.append(f"{label.ljust(width)}  {value:.{precision}f}")
    return "\n".join(lines)
