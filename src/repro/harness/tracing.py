"""Run instrumentation: per-cycle occupancy sampling and pipe traces.

Two tools a simulator release needs:

- :class:`OccupancySampler` — samples structure occupancies (instruction
  queue, ROB, store queues, LVQ/LPQ, redundant-pair slack) every N
  cycles while a machine runs, producing the time series behind the
  paper's store-queue-pressure and slack analyses;
- :func:`format_pipetrace` — renders retired uops' stage timestamps
  (fetch/rename/queue/issue/complete/retire) as a text pipeline diagram
  for debugging and teaching.
"""

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.machine import Machine
from repro.pipeline.uop import Uop

#: All run-loop anomaly warnings (cycle-limit truncation, drain-grace
#: expiry, hang forensics) funnel through this logger so harnesses can
#: silence or redirect them in one place.
run_log = logging.getLogger("repro.run")


def log_run_warning(message: str) -> None:
    """One-line warning for a run that did not end the way it should.

    ``Machine._finish`` calls this instead of silently truncating: a
    cycle-limit hit, an expired drain grace period, or a watchdog
    verdict each leave an explicit trace in the log as well as in
    ``RunResult.termination``.
    """
    run_log.warning(message)


@dataclass
class OccupancySample:
    cycle: int
    values: Dict[str, int]


@dataclass
class Histogram:
    """Fixed-bucket histogram over non-negative integers."""

    bucket_width: int = 8
    counts: Dict[int, int] = field(default_factory=dict)
    total: int = 0

    def add(self, value: int) -> None:
        bucket = max(value, 0) // self.bucket_width
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.total += 1

    def mean(self) -> float:
        if not self.total:
            return 0.0
        weighted = sum((bucket * self.bucket_width + self.bucket_width / 2)
                       * count for bucket, count in self.counts.items())
        return weighted / self.total

    def percentile(self, fraction: float) -> int:
        """Upper edge of the bucket containing the given percentile."""
        if not self.total:
            return 0
        threshold = fraction * self.total
        running = 0
        for bucket in sorted(self.counts):
            running += self.counts[bucket]
            if running >= threshold:
                return (bucket + 1) * self.bucket_width
        return (max(self.counts) + 1) * self.bucket_width

    def rows(self) -> List[tuple]:
        return [(bucket * self.bucket_width,
                 (bucket + 1) * self.bucket_width,
                 count)
                for bucket, count in sorted(self.counts.items())]


class OccupancySampler:
    """Samples machine structure occupancies while it runs."""

    def __init__(self, machine: Machine, interval: int = 16) -> None:
        self.machine = machine
        self.interval = interval
        self.samples: List[OccupancySample] = []

    def _snapshot(self) -> Dict[str, int]:
        values: Dict[str, int] = {}
        for core in self.machine.cores:
            prefix = f"core{core.core_id}."
            values[prefix + "iq"] = (core.qbox.occupancy(0)
                                     + core.qbox.occupancy(1))
            for thread in core.threads:
                tprefix = f"{prefix}t{thread.tid}."
                values[tprefix + "rob"] = len(thread.rob)
                values[tprefix + "sq"] = len(thread.store_queue)
                values[tprefix + "lq"] = len(thread.load_queue)
        controller = getattr(self.machine, "controller", None)
        if controller is not None:
            for pair in controller.pairs:
                pprefix = f"pair.{pair.name}."
                values[pprefix + "lvq"] = len(pair.lvq)
                values[pprefix + "lpq"] = len(pair.lpq)
                values[pprefix + "slack"] = (pair.leading.stats.retired
                                             - pair.trailing.stats.retired)
        return values

    def run(self, max_instructions: int, warmup: int = 0,
            max_cycles: Optional[int] = None):
        """Like ``machine.run`` but sampling along the way."""
        machine = self.machine
        if warmup:
            machine.warm(warmup)
        if max_cycles is None:
            max_cycles = max_instructions * 60 + 20_000
        machine._arm(max_instructions)
        while machine.now < max_cycles:
            if machine._halted():
                break
            machine.step()
            if machine.now % self.interval == 0:
                self.samples.append(OccupancySample(machine.now,
                                                    self._snapshot()))
        return machine._finish(max_instructions, max_cycles)

    def series(self, key: str) -> List[int]:
        return [s.values[key] for s in self.samples if key in s.values]

    def histogram(self, key: str, bucket_width: int = 8) -> Histogram:
        histogram = Histogram(bucket_width=bucket_width)
        for value in self.series(key):
            histogram.add(value)
        return histogram

    def mean(self, key: str) -> float:
        values = self.series(key)
        return sum(values) / len(values) if values else 0.0

    def peak(self, key: str) -> int:
        values = self.series(key)
        return max(values) if values else 0


STAGES = [
    ("F", "fetch_cycle"),
    ("Q", "queue_cycle"),
    ("I", "issue_cycle"),
    ("C", "complete_cycle"),
    ("R", "retire_cycle"),
]


def format_pipetrace(uops: Sequence[Uop], width: int = 64) -> str:
    """Render uop stage timestamps as a text pipeline diagram.

    Each row is one uop; columns are cycles relative to the first fetch.
    Stage letters: F fetch, Q queue-insert, I issue, C complete,
    R retire.
    """
    live = [u for u in uops if u.fetch_cycle >= 0]
    if not live:
        return "(no uops)"
    origin = min(u.fetch_cycle for u in live)
    lines = []
    for uop in live:
        row = [" "] * width
        for letter, attr in STAGES:
            cycle = getattr(uop, attr)
            if cycle is None or cycle < 0:
                continue
            offset = cycle - origin
            if 0 <= offset < width:
                row[offset] = letter
        label = f"{uop.seq:>5} t{uop.thread} {str(uop.instr):<24.24}"
        lines.append(f"{label} |{''.join(row)}|")
    return "\n".join(lines)
