"""Experiment runner: builds machines, runs workloads, caches baselines.

All of the paper's figures are ratios against the single-thread base
machine (SMT-Efficiency, Section 6.4), so the runner caches those
baseline IPCs per benchmark instance — one base run per benchmark
regardless of how many configurations are evaluated against it.

Multiprogrammed workloads may repeat a benchmark (e.g. two copies of
gcc); ``program(name, copy=1)`` generates an independent instance with a
different seed so logical-thread names stay unique.
"""

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.config import MachineConfig
from repro.core.machine import Machine, make_machine
from repro.core.metrics import RunResult, arithmetic_mean
from repro.isa.generator import generate_benchmark
from repro.isa.program import Program

WorkloadSpec = Sequence[Union[str, Program]]


@dataclass
class Runner:
    """Runs machine configurations over the synthetic benchmark suite."""

    instructions: int = 2000
    warmup: int = 15_000
    seed: int = 0
    config: MachineConfig = field(default_factory=MachineConfig)
    _programs: Dict[tuple, Program] = field(default_factory=dict, repr=False)
    _by_name: Dict[str, Program] = field(default_factory=dict, repr=False)
    _baseline: Dict[str, float] = field(default_factory=dict, repr=False)

    # -- workloads ---------------------------------------------------------
    def program(self, name: str, copy_index: int = 0) -> Program:
        key = (name, copy_index)
        if key not in self._programs:
            program = generate_benchmark(name, seed=self.seed + copy_index)
            if copy_index:
                program.name = f"{name}#{self.seed + copy_index}"
            self._programs[key] = program
            self._by_name[program.name] = program
        return self._programs[key]

    def programs(self, spec: WorkloadSpec) -> List[Program]:
        """Resolve a mixed list of names/Programs, numbering duplicates."""
        resolved: List[Program] = []
        seen: Dict[str, int] = {}
        for item in spec:
            if isinstance(item, Program):
                self._by_name.setdefault(item.name, item)
                resolved.append(item)
                continue
            copy_index = seen.get(item, 0)
            seen[item] = copy_index + 1
            resolved.append(self.program(item, copy_index))
        return resolved

    # -- machine construction ------------------------------------------------
    def make(self, kind: str, spec: WorkloadSpec,
             config: Optional[MachineConfig] = None, **kwargs) -> Machine:
        return make_machine(kind, config or self.config,
                            self.programs(spec), **kwargs)

    def variant_config(self, **overrides) -> MachineConfig:
        """A deep copy of the runner's config with fields overridden."""
        variant = copy.deepcopy(self.config)
        for key, value in overrides.items():
            if not hasattr(variant, key):
                raise AttributeError(f"MachineConfig has no field {key!r}")
            setattr(variant, key, value)
        return variant

    # -- running ------------------------------------------------------------------
    def run(self, kind: str, spec: WorkloadSpec,
            config: Optional[MachineConfig] = None, **kwargs) -> RunResult:
        machine = self.make(kind, spec, config, **kwargs)
        return machine.run(max_instructions=self.instructions,
                           warmup=self.warmup)

    def run_structured(self, kind: str, spec: WorkloadSpec,
                       config: Optional[MachineConfig] = None,
                       **kwargs) -> Dict[str, object]:
        """Run and return a JSON-able result dict (serve `run` jobs).

        Extends :meth:`RunResult.to_dict` with the per-thread
        SMT-Efficiency ratios (and their single-thread baselines) that
        the print-only CLI path used to compute inline.
        """
        result = self.run(kind, spec, config, **kwargs)
        payload = result.to_dict()
        payload["efficiency"] = self.efficiency(result)
        payload["baseline_ipc"] = {
            thread.name: self.baseline_ipc(thread.name)
            for thread in result.threads
        }
        payload["mean_efficiency"] = self.mean_efficiency(result)
        return payload

    def baseline_ipc(self, program_name: str) -> float:
        """Single-thread base-machine IPC (the SMT-Efficiency denominator)."""
        if program_name not in self._baseline:
            program = self._by_name.get(program_name)
            if program is None:
                program = self.program(program_name)
            result = self.run("base", [program])
            self._baseline[program_name] = result.threads[0].ipc
        return self._baseline[program_name]

    # -- metrics --------------------------------------------------------------------
    def efficiency(self, result: RunResult) -> Dict[str, float]:
        return {thread.name: thread.ipc / self.baseline_ipc(thread.name)
                for thread in result.threads}

    def mean_efficiency(self, result: RunResult) -> float:
        return arithmetic_mean(list(self.efficiency(result).values()))

    # -- multi-seed statistics ---------------------------------------------------
    def efficiency_over_seeds(self, kind: str, names: Sequence[str],
                              seeds: Sequence[int],
                              config: Optional[MachineConfig] = None,
                              **kwargs) -> Dict[str, float]:
        """Mean SMT-Efficiency over several workload seeds.

        Each seed generates independent program instances (and their own
        single-thread baselines), giving confidence that a result is not
        an artifact of one particular generated program.  Returns
        ``{"mean": ..., "min": ..., "max": ...}``.
        """
        values = []
        for seed in seeds:
            sub = Runner(instructions=self.instructions, warmup=self.warmup,
                         seed=seed, config=self.config)
            result = sub.run(kind, names, config=config, **kwargs)
            values.append(sub.mean_efficiency(result))
        return {"mean": arithmetic_mean(values),
                "min": min(values), "max": max(values)}
