"""Process-parallel execution of the per-figure experiment drivers.

``python -m repro fig6 --jobs 8`` fans the driver's per-workload rows
across a process pool: each worker rebuilds a fresh
:class:`~repro.harness.runner.Runner` from the same (instructions,
warmup, seed) recipe, runs the driver on a one-workload slice, and
ships the resulting :class:`ExperimentResult` back to be merged in the
original workload order.  Because the simulator is deterministic and a
single-workload slice computes exactly the rows (and baselines) it
needs, the merged table is identical to the sequential one.

A driver is splittable when it takes one of the workload-list
parameters (``benchmarks`` / ``workloads`` / ``pairs``); drivers that
sweep a hardware parameter over a *single* workload (sq-sweep, the
latency ablations) have nothing to split and fall back to sequential
execution.
"""

import inspect
from typing import Dict, List, Optional, Tuple

from repro.harness import experiments
from repro.harness.experiments import (ExperimentResult, fig8_default_pairs,
                                       fig11_default_workloads)
from repro.harness.runner import Runner
from repro.isa.profiles import SPEC95_NAMES
from repro.util.chunking import auto_chunk_size, chunked

#: Parameter names (in priority order) through which a driver accepts
#: its workload list.
_SPLIT_PARAMS = ("benchmarks", "workloads", "pairs")

#: Default item lists for drivers whose ``None`` default is computed
#: internally from something other than SPEC95_NAMES.
_DEFAULT_ITEMS = {
    "fig8_srt_two_threads": fig8_default_pairs,
    "fig11_crt_multithread": fig11_default_workloads,
}


def split_param(driver) -> Optional[str]:
    """The workload-list parameter of ``driver``, or None."""
    for name in _SPLIT_PARAMS:
        if name in inspect.signature(driver).parameters:
            return name
    return None


def default_items(driver) -> Optional[List[object]]:
    """The items the driver would iterate by default, or None."""
    maker = _DEFAULT_ITEMS.get(driver.__name__)
    if maker is not None:
        return list(maker())
    if split_param(driver) == "benchmarks":
        return list(SPEC95_NAMES)
    return None


def _run_slice(payload: Tuple[str, Dict[str, object], str, List[object]]
               ) -> ExperimentResult:
    """Pool entry point: run one driver over a slice of its items."""
    driver_name, runner_kwargs, param, items = payload
    driver = getattr(experiments, driver_name)
    runner = Runner(**runner_kwargs)
    return driver(runner, **{param: items})


def merge_results(slices: List[ExperimentResult]) -> ExperimentResult:
    """Merge slice results (row order = submission order).

    ``mean.*`` summary scalars are recomputed over the merged rows;
    other scalars recombine by max for ``max.*`` keys and are dropped
    otherwise (nothing in the registry produces any other kind).
    """
    if not slices:
        raise ValueError("no slices to merge")
    first = slices[0]
    merged = ExperimentResult(first.experiment, first.description,
                              series=list(first.series))
    extremes: Dict[str, float] = {}
    for part in slices:
        for label, row in part.rows.items():
            merged.add_row(label, row)
        for key, value in part.summary.items():
            if key.startswith("max."):
                extremes[key] = max(extremes.get(key, value), value)
    merged.finish()
    merged.summary.update(extremes)
    return merged


def run_experiment_parallel(driver_name: str,
                            runner_kwargs: Dict[str, object],
                            jobs: int) -> ExperimentResult:
    """Run a registered driver with its rows fanned across ``jobs``
    processes; falls back to sequential for unsplittable drivers."""
    driver = getattr(experiments, driver_name)
    param = split_param(driver)
    items = default_items(driver) if param else None
    if jobs <= 1 or param is None or items is None or len(items) <= 1:
        return driver(Runner(**runner_kwargs))
    # Shared fan-out policy (repro.util.chunking): one slice per item
    # for the typical figure-sized lists, larger slices only when the
    # item count dwarfs the worker pool.
    size = auto_chunk_size(len(items), jobs)
    payloads = [(driver_name, runner_kwargs, param, chunk)
                for chunk in chunked(items, size)]
    from concurrent.futures import ProcessPoolExecutor
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        slices = list(pool.map(_run_slice, payloads))
    return merge_results(slices)
