"""One driver per paper table/figure (the DESIGN.md experiment index).

Every function takes a :class:`~repro.harness.runner.Runner` and returns
an :class:`ExperimentResult` whose rows mirror the series the paper
plots.  ``repro.harness.reporting`` renders them as text tables;
``benchmarks/`` regenerates and shape-checks each one.
"""

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.faults import (FaultOutcome, StuckFunctionalUnit,
                               TransientResultFault, run_fault_experiment)
from repro.core.metrics import arithmetic_mean
from repro.harness.runner import Runner
from repro.isa.instructions import FuClass
from repro.isa.profiles import FOUR_THREAD_POOL, SPEC95_NAMES, TWO_THREAD_POOL


@dataclass
class ExperimentResult:
    """Rows (one per workload) of named series, plus summary scalars."""

    experiment: str
    description: str
    series: List[str]
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    summary: Dict[str, float] = field(default_factory=dict)

    def add_row(self, label: str, values: Dict[str, float]) -> None:
        self.rows[label] = values

    def mean(self, series: str) -> float:
        values = [row[series] for row in self.rows.values() if series in row]
        return arithmetic_mean(values)

    def finish(self) -> "ExperimentResult":
        for series in self.series:
            self.summary[f"mean.{series}"] = self.mean(series)
        return self

    def to_dict(self) -> Dict[str, object]:
        """JSON-able structured form (serve jobs, machine consumers).

        Row and summary insertion order is the driver's deterministic
        iteration order, so the canonical encoding of this dict is
        byte-stable across runs — the serve cache relies on that.
        """
        return {
            "experiment": self.experiment,
            "description": self.description,
            "series": list(self.series),
            "rows": {label: dict(row) for label, row in self.rows.items()},
            "summary": dict(self.summary),
        }


def _benchmarks(subset: Optional[Sequence[str]]) -> List[str]:
    return list(subset) if subset else list(SPEC95_NAMES)


def fig8_default_pairs() -> List[List[str]]:
    """The two-program workloads Figure 8 evaluates by default.

    Exposed (rather than inlined in the driver) so the parallel
    experiment fan-out can enumerate and split them across workers.
    """
    return [list(pair) for pair in itertools.combinations(TWO_THREAD_POOL, 2)]


def fig11_default_workloads(include_quads: bool = True,
                            max_quads: int = 5) -> List[List[str]]:
    """The multiprogrammed workloads Figure 11 evaluates by default."""
    workloads = [list(pair)
                 for pair in itertools.combinations(TWO_THREAD_POOL, 2)]
    if include_quads:
        quads = [list(combo) for combo in
                 itertools.combinations(FOUR_THREAD_POOL, 4)]
        workloads += quads[:max_quads]
    return workloads


# ---------------------------------------------------------------------------
# Figure 6: SMT-Efficiency for one logical thread on the SRT variants.
# ---------------------------------------------------------------------------
def fig6_srt_one_thread(runner: Runner,
                        benchmarks: Optional[Sequence[str]] = None
                        ) -> ExperimentResult:
    """Base2 / SRT / SRT+ptsq / SRT+nosc efficiencies (paper Figure 6).

    Paper shape: every SRT variant is below Base2; SRT averages ~32%
    degradation; per-thread store queues recover ~2% on average with
    larger wins on store-heavy benchmarks; no-store-comparison is the
    upper bound.
    """
    result = ExperimentResult(
        "fig6", "SMT-Efficiency, one logical thread (SRT variants)",
        series=["base2", "srt", "srt_ptsq", "srt_nosc"])
    ptsq = runner.variant_config(per_thread_store_queues=True)
    nosc = runner.variant_config(store_comparison=False)
    for name in _benchmarks(benchmarks):
        base_ipc = runner.baseline_ipc(name)
        row = {
            "base2": runner.run("base2", [name]).ipc_of(name) / base_ipc,
            "srt": runner.run("srt", [name]).ipc_of(name) / base_ipc,
            "srt_ptsq": runner.run("srt", [name],
                                   config=ptsq).ipc_of(name) / base_ipc,
            "srt_nosc": runner.run("srt", [name],
                                   config=nosc).ipc_of(name) / base_ipc,
        }
        result.add_row(name, row)
    return result.finish()


# ---------------------------------------------------------------------------
# Figure 7: preferential space redundancy (same-functional-unit fraction).
# ---------------------------------------------------------------------------
def fig7_psr(runner: Runner,
             benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Fraction of corresponding instruction pairs on the same unit.

    Paper shape: ~65% without PSR, ~0.06% with PSR, at no performance
    cost.
    """
    result = ExperimentResult(
        "fig7", "Same-functional-unit fraction without/with PSR",
        series=["no_psr", "psr", "ipc_ratio"])
    no_psr = runner.variant_config(preferential_space_redundancy=False)
    for name in _benchmarks(benchmarks):
        machine_off = runner.make("srt", [name], config=no_psr)
        off = machine_off.run(max_instructions=runner.instructions,
                              warmup=runner.warmup)
        machine_on = runner.make("srt", [name])
        on = machine_on.run(max_instructions=runner.instructions,
                            warmup=runner.warmup)
        frac_off = machine_off.controller.pairs[0].tracker.stats.same_unit_fraction
        frac_on = machine_on.controller.pairs[0].tracker.stats.same_unit_fraction
        ipc_ratio = (on.ipc_of(name) / off.ipc_of(name)
                     if off.ipc_of(name) else 0.0)
        result.add_row(name, {"no_psr": frac_off, "psr": frac_on,
                              "ipc_ratio": ipc_ratio})
    return result.finish()


# ---------------------------------------------------------------------------
# Figure 8: SMT-Efficiency for two logical threads on SRT.
# ---------------------------------------------------------------------------
def fig8_srt_two_threads(runner: Runner,
                         pairs: Optional[Sequence[Sequence[str]]] = None
                         ) -> ExperimentResult:
    """Two logical threads → four hardware contexts on one SRT core.

    Paper shape: ~40% degradation, recovered to ~32% by per-thread store
    queues.
    """
    if pairs is None:
        pairs = fig8_default_pairs()
    result = ExperimentResult(
        "fig8", "SMT-Efficiency, two logical threads (SRT)",
        series=["base", "srt", "srt_ptsq"])
    ptsq = runner.variant_config(per_thread_store_queues=True)
    for pair in pairs:
        label = "+".join(pair)
        row = {
            "base": runner.mean_efficiency(runner.run("base", pair)),
            "srt": runner.mean_efficiency(runner.run("srt", pair)),
            "srt_ptsq": runner.mean_efficiency(
                runner.run("srt", pair, config=ptsq)),
        }
        result.add_row(label, row)
    return result.finish()


# ---------------------------------------------------------------------------
# Section 7.1: store lifetimes and store-queue size sensitivity.
# ---------------------------------------------------------------------------
def fig9_store_lifetime(runner: Runner,
                        benchmarks: Optional[Sequence[str]] = None
                        ) -> ExperimentResult:
    """Average leading-store store-queue residency, base vs SRT.

    Paper shape: SRT lengthens the average store lifetime by roughly 39
    cycles, which is why store-queue size matters so much.
    """
    result = ExperimentResult(
        "fig9", "Average store lifetime in the store queue (cycles)",
        series=["base", "srt", "delta"])
    for name in _benchmarks(benchmarks):
        base_machine = runner.make("base", [name])
        base_machine.run(max_instructions=runner.instructions,
                         warmup=runner.warmup)
        srt_machine = runner.make("srt", [name])
        srt_machine.run(max_instructions=runner.instructions,
                        warmup=runner.warmup)

        def lifetime(machine, tid=0):
            stats = machine.cores[0].threads[tid].stats
            if not stats.store_lifetime_count:
                return 0.0
            return stats.store_lifetime_sum / stats.store_lifetime_count

        base_life = lifetime(base_machine)
        srt_life = lifetime(srt_machine)
        result.add_row(name, {"base": base_life, "srt": srt_life,
                              "delta": srt_life - base_life})
    return result.finish()


def slack_distribution(runner: Runner, benchmark: str = "gcc",
                       bucket_width: int = 32) -> ExperimentResult:
    """Distribution of the leading-trailing slack (retired instructions).

    Paper context (Section 2.3 / 4.4): the LPQ's gating of trailing
    fetch on leading retirement produces the slack that absorbs cache
    misses — without any explicit slack-fetch mechanism.  The histogram
    shows the slack the machine settles into.
    """
    from repro.harness.tracing import OccupancySampler

    machine = runner.make("srt", [benchmark])
    sampler = OccupancySampler(machine, interval=8)
    sampler.run(runner.instructions, warmup=runner.warmup)
    histogram = sampler.histogram(f"pair.{benchmark}.slack",
                                  bucket_width=bucket_width)
    result = ExperimentResult(
        "slack_dist", f"Leading-trailing slack distribution ({benchmark})",
        series=["samples"])
    for low, high, count in histogram.rows():
        result.add_row(f"{low}-{high}", {"samples": count})
    result.finish()
    result.summary["mean_slack"] = histogram.mean()
    result.summary["p90_slack"] = histogram.percentile(0.9)
    return result


def store_queue_occupancy(runner: Runner,
                          benchmarks: Optional[Sequence[str]] = None
                          ) -> ExperimentResult:
    """Mean/peak leading store-queue occupancy, base vs SRT.

    The occupancy view behind Section 7.1: longer store lifetimes
    translate into higher store-queue occupancy and, eventually, map
    stalls when the partition fills.
    """
    from repro.harness.tracing import OccupancySampler

    result = ExperimentResult(
        "sq_occupancy", "Store-queue occupancy (mean / peak)",
        series=["base_mean", "srt_mean", "srt_peak"])
    for name in _benchmarks(benchmarks):
        base_sampler = OccupancySampler(runner.make("base", [name]),
                                        interval=8)
        base_sampler.run(runner.instructions, warmup=runner.warmup)
        srt_sampler = OccupancySampler(runner.make("srt", [name]),
                                       interval=8)
        srt_sampler.run(runner.instructions, warmup=runner.warmup)
        result.add_row(name, {
            "base_mean": base_sampler.mean("core0.t0.sq"),
            "srt_mean": srt_sampler.mean("core0.t0.sq"),
            "srt_peak": srt_sampler.peak("core0.t0.sq"),
        })
    return result.finish()


def store_queue_sweep(runner: Runner, benchmark: str = "mgrid",
                      sizes: Sequence[int] = (16, 32, 48, 64, 96, 128)
                      ) -> ExperimentResult:
    """SRT efficiency as a function of the per-thread store-queue size."""
    result = ExperimentResult(
        "sq_sweep", f"SRT efficiency vs store-queue size ({benchmark})",
        series=["efficiency"])
    base_ipc = runner.baseline_ipc(benchmark)
    for size in sizes:
        config = runner.variant_config(per_thread_store_queues=True)
        config.core.store_queue_entries = size
        ipc = runner.run("srt", [benchmark], config=config).ipc_of(benchmark)
        result.add_row(str(size), {"efficiency": ipc / base_ipc})
    return result.finish()


# ---------------------------------------------------------------------------
# Section 8: one logical thread on the CMP machines.
# ---------------------------------------------------------------------------
def fig10_crt_one_thread(runner: Runner,
                         benchmarks: Optional[Sequence[str]] = None
                         ) -> ExperimentResult:
    """Lock0 / Lock8 / CRT efficiencies for single-program runs.

    Paper shape: CRT performs similarly to lockstepping on one logical
    thread (its leading thread behaves like a lockstepped thread), while
    Lock8 pays the checker latency on every cache miss.
    """
    result = ExperimentResult(
        "fig10", "SMT-Efficiency, one logical thread (CMP machines)",
        series=["lock0", "lock8", "crt"])
    for name in _benchmarks(benchmarks):
        base_ipc = runner.baseline_ipc(name)
        row = {
            "lock0": runner.run("lockstep", [name],
                                checker_latency=0).ipc_of(name) / base_ipc,
            "lock8": runner.run("lockstep", [name],
                                checker_latency=8).ipc_of(name) / base_ipc,
            "crt": runner.run("crt", [name]).ipc_of(name) / base_ipc,
        }
        result.add_row(name, row)
    return result.finish()


# ---------------------------------------------------------------------------
# Section 8: multithreaded lockstep vs CRT (the paper's headline result).
# ---------------------------------------------------------------------------
def fig11_crt_multithread(runner: Runner,
                          workloads: Optional[Sequence[Sequence[str]]] = None,
                          include_quads: bool = True,
                          max_quads: int = 5) -> ExperimentResult:
    """Lock0 / Lock8 / CRT on two- and four-program workloads.

    Paper shape: CRT outperforms lockstepping by ~13% on average (max
    ~22%) on multithreaded workloads, because each core spends the
    resources its trailing threads free on another program's leading
    thread.
    """
    if workloads is None:
        workloads = fig11_default_workloads(include_quads=include_quads,
                                            max_quads=max_quads)
    result = ExperimentResult(
        "fig11", "SMT-Efficiency, multithreaded (lockstep vs CRT)",
        series=["lock0", "lock8", "crt", "crt_vs_lock8"])
    for workload in workloads:
        label = "+".join(workload)
        lock0 = runner.mean_efficiency(
            runner.run("lockstep", workload, checker_latency=0))
        lock8 = runner.mean_efficiency(
            runner.run("lockstep", workload, checker_latency=8))
        crt = runner.mean_efficiency(runner.run("crt", workload))
        result.add_row(label, {
            "lock0": lock0, "lock8": lock8, "crt": crt,
            "crt_vs_lock8": crt / lock8 if lock8 else 0.0,
        })
    result.finish()
    advantages = [row["crt_vs_lock8"] for row in result.rows.values()]
    result.summary["max.crt_vs_lock8"] = max(advantages) if advantages else 0.0
    return result


# ---------------------------------------------------------------------------
# Section 4.4: line-predictor behaviour.
# ---------------------------------------------------------------------------
def line_predictor_rates(runner: Runner,
                         benchmarks: Optional[Sequence[str]] = None
                         ) -> ExperimentResult:
    """Line-predictor misprediction rates, and trailing-thread misfetches.

    Paper shape: the line predictor mispredicts 14-28% of the time for
    the base machine, which is why the branch outcome queue had to
    become a line prediction queue; with the LPQ the trailing thread
    never misfetches.
    """
    result = ExperimentResult(
        "line_pred", "Line predictor misprediction rate / trailing misfetches",
        series=["base_rate", "trailing_misfetches"])
    for name in _benchmarks(benchmarks):
        base_machine = runner.make("base", [name])
        base_machine.run(max_instructions=runner.instructions,
                         warmup=runner.warmup)
        rate = base_machine.cores[0].line_predictor.stats.misprediction_rate
        srt_machine = runner.make("srt", [name])
        srt_machine.run(max_instructions=runner.instructions,
                        warmup=runner.warmup)
        trailing = srt_machine.cores[0].threads[1]
        result.add_row(name, {"base_rate": rate,
                              "trailing_misfetches": trailing.stats.misfetches})
    return result.finish()


# ---------------------------------------------------------------------------
# Section 4.5 motivation: fault-detection coverage.
# ---------------------------------------------------------------------------
def fault_coverage(runner: Runner, benchmark: str = "gcc",
                   injections: int = 12) -> ExperimentResult:
    """Transient-fault outcome distribution per machine kind.

    Shape: the base machine is the only one that lets corrupted stores
    escape (SDC); SRT/CRT/lockstep detect everything that propagates.
    """
    result = ExperimentResult(
        "fault_coverage", f"Transient fault outcomes on {benchmark}",
        series=[outcome.value for outcome in FaultOutcome])
    program = runner.program(benchmark)
    for kind in ("base", "srt", "crt", "lockstep"):
        outcomes = Counter()
        for index in range(injections):
            machine = runner.make(kind, [benchmark])
            cycle = 100 + 73 * index
            bit = (5 * index + 1) % 64
            core_index = 1 if (kind == "lockstep" and index % 2) else 0
            outcome = run_fault_experiment(
                machine, program,
                TransientResultFault(cycle=cycle, core_index=core_index,
                                     bit=bit),
                instructions=runner.instructions, warmup=runner.warmup)
            outcomes[outcome.value] += 1
        result.add_row(kind, {key: outcomes.get(key, 0)
                              for key in result.series})
    return result.finish()


def detection_latency(runner: Runner, benchmark: str = "gcc",
                      injections: int = 10) -> ExperimentResult:
    """Mean cycles from fault strike to detection, per machine kind.

    SRT/CRT detect at the store comparator (after the trailing twin
    retires — so latency includes the inter-thread slack); lockstep
    detects when the drained store streams are compared.
    """
    from repro.core.faults import run_fault_experiment_detailed

    result = ExperimentResult(
        "detect_latency", f"Fault detection latency on {benchmark} (cycles)",
        series=["detected", "mean_latency", "max_latency"])
    program = runner.program(benchmark)
    for kind in ("srt", "crt", "lockstep"):
        latencies = []
        for index in range(injections):
            machine = runner.make(kind, [benchmark])
            core_index = 1 if (kind == "lockstep" and index % 2) else 0
            report = run_fault_experiment_detailed(
                machine, program,
                TransientResultFault(cycle=90 + 67 * index,
                                     core_index=core_index,
                                     bit=(3 * index + 1) % 64),
                instructions=runner.instructions, warmup=runner.warmup)
            if report.detection_latency is not None:
                latencies.append(report.detection_latency)
        result.add_row(kind, {
            "detected": len(latencies),
            "mean_latency": (sum(latencies) / len(latencies)
                             if latencies else 0.0),
            "max_latency": max(latencies) if latencies else 0,
        })
    return result.finish()


def psr_permanent_fault_coverage(runner: Runner, benchmark: str = "gcc",
                                 units: Sequence[int] = (0, 1, 2, 3)
                                 ) -> ExperimentResult:
    """Stuck-functional-unit detection with and without PSR.

    Shape: with PSR the corresponding instructions are guaranteed
    distinct units, so a stuck unit corrupts only one copy and is caught;
    without PSR many pairs share the faulty unit and corruption can
    escape or linger undetected far longer.
    """
    result = ExperimentResult(
        "psr_faults", f"Stuck-unit outcomes on {benchmark} (SRT)",
        series=[outcome.value for outcome in FaultOutcome])
    program = runner.program(benchmark)
    for psr in (True, False):
        outcomes = Counter()
        config = runner.variant_config(preferential_space_redundancy=psr)
        for unit in units:
            machine = runner.make("srt", [benchmark], config=config)
            outcome = run_fault_experiment(
                machine, program,
                StuckFunctionalUnit(core_index=0, fu_class=FuClass.INT,
                                    unit_index=unit, bit=1),
                instructions=runner.instructions, warmup=runner.warmup)
            outcomes[outcome.value] += 1
        result.add_row("psr" if psr else "no_psr",
                       {key: outcomes.get(key, 0) for key in result.series})
    return result.finish()


# ---------------------------------------------------------------------------
# Ablations called out in DESIGN.md.
# ---------------------------------------------------------------------------
def ablation_fetch_policy(runner: Runner,
                          benchmarks: Optional[Sequence[str]] = None
                          ) -> ExperimentResult:
    """Trailing-thread fetch priority vs plain ICOUNT (Section 4.4.1)."""
    result = ExperimentResult(
        "ablation_fetch", "SRT efficiency: trailing priority vs ICOUNT",
        series=["priority", "icount"])
    icount = runner.variant_config(trailing_priority=False)
    for name in _benchmarks(benchmarks):
        base_ipc = runner.baseline_ipc(name)
        result.add_row(name, {
            "priority": runner.run("srt", [name]).ipc_of(name) / base_ipc,
            "icount": runner.run("srt", [name],
                                 config=icount).ipc_of(name) / base_ipc,
        })
    return result.finish()


def ablation_cross_latency(runner: Runner, benchmark: str = "swim",
                           latencies: Sequence[int] = (0, 2, 4, 8, 16, 32)
                           ) -> ExperimentResult:
    """CRT sensitivity to the cross-core forwarding latency."""
    result = ExperimentResult(
        "ablation_cross", f"CRT efficiency vs cross-core latency ({benchmark})",
        series=["efficiency"])
    base_ipc = runner.baseline_ipc(benchmark)
    for latency in latencies:
        config = runner.variant_config(crt_cross_latency=latency)
        ipc = runner.run("crt", [benchmark], config=config).ipc_of(benchmark)
        result.add_row(str(latency), {"efficiency": ipc / base_ipc})
    return result.finish()


def ablation_checker_latency(runner: Runner, benchmark: str = "swim",
                             latencies: Sequence[int] = (0, 4, 8, 16, 32)
                             ) -> ExperimentResult:
    """Lockstep sensitivity to checker latency (Lock0 ... LockN)."""
    result = ExperimentResult(
        "ablation_checker",
        f"Lockstep efficiency vs checker latency ({benchmark})",
        series=["efficiency"])
    base_ipc = runner.baseline_ipc(benchmark)
    for latency in latencies:
        ipc = runner.run("lockstep", [benchmark],
                         checker_latency=latency).ipc_of(benchmark)
        result.add_row(str(latency), {"efficiency": ipc / base_ipc})
    return result.finish()


def ablation_slack_fetch(runner: Runner, benchmark: str = "swim",
                         slacks: Sequence[int] = (0, 8, 16, 32, 48)
                         ) -> ExperimentResult:
    """Explicit slack fetch on top of the LPQ (Section 4.4.1).

    Paper shape: once the LPQ gates trailing fetch on leading
    retirement, adding explicit slack buys nothing.
    """
    result = ExperimentResult(
        "ablation_slack", f"SRT efficiency vs explicit slack ({benchmark})",
        series=["efficiency"])
    base_ipc = runner.baseline_ipc(benchmark)
    for slack in slacks:
        config = runner.variant_config(srt_slack_instructions=slack)
        ipc = runner.run("srt", [benchmark], config=config).ipc_of(benchmark)
        result.add_row(str(slack), {"efficiency": ipc / base_ipc})
    return result.finish()


def ablation_trailing_fetch_mode(runner: Runner,
                                 workloads: Optional[Sequence[Sequence[str]]]
                                 = None) -> ExperimentResult:
    """LPQ vs shared-predictor trailing fetch (Section 4.4's rejected
    alternative).

    Paper shape: with the LPQ the trailing thread never misfetches; when
    it fetches through the shared line predictor instead, misfetches
    reappear — and multiprogrammed interference makes it worse.
    """
    if workloads is None:
        workloads = [["gcc"], ["swim"], ["gcc", "swim"], ["go", "fpppp"]]
    result = ExperimentResult(
        "ablation_lpq", "Trailing fetch: LPQ vs shared predictors",
        series=["lpq_eff", "pred_eff", "lpq_misfetch", "pred_misfetch"])
    predictors = runner.variant_config(trailing_fetch_mode="predictors")
    for workload in workloads:
        label = "+".join(workload)
        lpq_machine = runner.make("srt", workload)
        lpq_result = lpq_machine.run(max_instructions=runner.instructions,
                                     warmup=runner.warmup)
        pred_machine = runner.make("srt", workload, config=predictors)
        pred_result = pred_machine.run(max_instructions=runner.instructions,
                                       warmup=runner.warmup)

        def trailing_misfetches(machine):
            return sum(t.stats.misfetches for t in machine.cores[0].threads
                       if t.is_trailing)

        result.add_row(label, {
            "lpq_eff": runner.mean_efficiency(lpq_result),
            "pred_eff": runner.mean_efficiency(pred_result),
            "lpq_misfetch": trailing_misfetches(lpq_machine),
            "pred_misfetch": trailing_misfetches(pred_machine),
        })
    return result.finish()


def ablation_lvq_size(runner: Runner, benchmark: str = "swim",
                      sizes: Sequence[int] = (4, 8, 16, 32, 64)
                      ) -> ExperimentResult:
    """SRT sensitivity to load value queue capacity."""
    result = ExperimentResult(
        "ablation_lvq", f"SRT efficiency vs LVQ size ({benchmark})",
        series=["efficiency"])
    base_ipc = runner.baseline_ipc(benchmark)
    for size in sizes:
        config = runner.variant_config(lvq_entries=size)
        ipc = runner.run("srt", [benchmark], config=config).ipc_of(benchmark)
        result.add_row(str(size), {"efficiency": ipc / base_ipc})
    return result.finish()


# ---------------------------------------------------------------------------
# Registry: one entry per paper table/figure.  The CLI (`python -m repro
# fig6`), the parallel fan-out, and the serve layer's `experiment` jobs
# all dispatch through this table, so a new driver becomes reachable
# from every entry point by adding one line here.
# ---------------------------------------------------------------------------
EXPERIMENT_REGISTRY = {
    "fig6": (fig6_srt_one_thread,
             "SMT-Efficiency, one logical thread (SRT variants)"),
    "fig7": (fig7_psr, "Preferential space redundancy"),
    "fig8": (fig8_srt_two_threads,
             "SMT-Efficiency, two logical threads (SRT)"),
    "fig9": (fig9_store_lifetime, "Store lifetimes, base vs SRT"),
    "fig10": (fig10_crt_one_thread,
              "One logical thread on the CMP machines"),
    "fig11": (fig11_crt_multithread,
              "Multithreaded lockstep vs CRT"),
    "line-pred": (line_predictor_rates, "Line predictor rates"),
    "faults": (fault_coverage, "Transient fault coverage"),
    "detect-latency": (detection_latency,
                       "Fault detection latency per machine kind"),
    "psr-faults": (psr_permanent_fault_coverage,
                   "Stuck-unit coverage with/without PSR"),
    "sq-sweep": (store_queue_sweep, "Store-queue size sweep"),
    "sq-occupancy": (store_queue_occupancy,
                     "Store-queue occupancy, base vs SRT"),
    "slack": (slack_distribution,
              "Leading-trailing slack distribution"),
    "ablation-fetch": (ablation_fetch_policy,
                       "Trailing priority vs ICOUNT"),
    "ablation-cross": (ablation_cross_latency,
                       "CRT cross-core latency sweep"),
    "ablation-checker": (ablation_checker_latency,
                         "Lockstep checker latency sweep"),
    "ablation-lvq": (ablation_lvq_size, "LVQ size sweep"),
    "ablation-slack": (ablation_slack_fetch, "Explicit slack fetch"),
    "ablation-lpq": (ablation_trailing_fetch_mode,
                     "LPQ vs shared-predictor trailing fetch"),
}
