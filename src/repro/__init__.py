"""repro — reproduction of "Detailed Design and Evaluation of Redundant
Multithreading Alternatives" (Mukherjee, Kontz & Reinhardt, ISCA 2002).

The package provides:

- ``repro.isa`` — the RISC-R instruction set and synthetic SPEC CPU95-like
  workloads;
- ``repro.memory`` / ``repro.predictors`` / ``repro.pipeline`` — a
  cycle-level SMT processor model resembling the paper's EV8-like base
  machine;
- ``repro.core`` — the paper's contributions: SRT, lockstepping, and CRT
  machines, preferential space redundancy, and fault injection;
- ``repro.harness`` — runners and per-figure experiment drivers.

Quickstart::

    from repro import make_machine, generate_benchmark, MachineConfig

    program = generate_benchmark("gcc")
    machine = make_machine("srt", MachineConfig(), [program])
    result = machine.run(max_instructions=5000)
    print(result.ipc_per_logical_thread())
"""

__version__ = "1.0.0"

from repro.core import (FaultOutcome, MachineConfig, RunResult,
                        StuckFunctionalUnit, TransientRegisterFault,
                        TransientResultFault, make_machine,
                        run_fault_experiment)
from repro.harness import Runner, render_table
from repro.isa import (SPEC95_NAMES, Program, assemble, generate_benchmark,
                       generate_program, get_profile)

__all__ = [
    "__version__",
    # Workloads.
    "Program",
    "assemble",
    "generate_benchmark",
    "generate_program",
    "get_profile",
    "SPEC95_NAMES",
    # Machines.
    "MachineConfig",
    "make_machine",
    "RunResult",
    # Faults.
    "FaultOutcome",
    "TransientResultFault",
    "TransientRegisterFault",
    "StuckFunctionalUnit",
    "run_fault_experiment",
    # Harness.
    "Runner",
    "render_table",
]
