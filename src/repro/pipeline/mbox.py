"""MBOX: load/store disambiguation, data-cache access, store drain.

Loads probe the store queue and data cache; stores record themselves in
the store queue at dispatch and check the load queue for order
violations when their address resolves (Section 3.4).  Retired stores
drain in program order through the coalescing merge buffer — but only
once verified when the thread is a leading RMT thread, which is the
store-queue-pressure effect at the heart of the paper's Section 7.1
results.

Trailing-thread loads bypass the load queue, store queue, and data
cache entirely and read the load value queue instead (Section 4.1).
"""

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.isa.executor import align_word, merge_partial_store
from repro.pipeline.thread import HwThread
from repro.pipeline.uop import Uop, UopState
from repro.util.bits import MASK64

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import Core


@dataclass
class LoadPlan:
    """How an issuing load will get its data."""

    raw_addr: int
    addr: int
    value: int
    extra_latency: int              # beyond the MBOX stage latency
    forwarded_from: Optional[int] = None
    lvq_entry: bool = False
    lvq_addr: Optional[int] = None  # address recorded by the leading thread


class MBox:
    def __init__(self, core: "Core") -> None:
        self.core = core
        self.config = core.config

    # -- address computation ------------------------------------------------
    def effective_address(self, uop: Uop) -> tuple:
        base = self.core.regfile.read(uop.phys_srcs[0])
        raw = (base + uop.instr.imm) & MASK64
        return raw, align_word(raw)

    # -- load planning ---------------------------------------------------------
    def plan_load(self, thread: HwThread, uop: Uop, now: int) -> Optional[LoadPlan]:
        """Decide whether the load can issue this cycle and how.

        Returns None when the load must wait (forwarding data not ready,
        partial-store overlap, store-set dependence, or a missing LVQ
        entry for a trailing load).
        """
        raw, addr = self.effective_address(uop)
        if thread.is_trailing:
            return self._plan_trailing_load(thread, uop, raw, addr, now)

        if (uop.memdep_seq is not None
                and self._store_pending(thread, uop.memdep_seq)):
            return None

        for store in reversed(thread.store_queue):
            if store.seq >= uop.seq:
                continue
            if store.mem_addr is None:
                continue  # unknown address: speculate past it
            if store.mem_addr != addr:
                continue
            if store.instr.is_partial_store:
                # Partial forwarding is not supported: the store must drain
                # to the cache first (Section 4.4.2's chunk-termination case).
                thread.stats.partial_store_block_cycles += 1
                self.core.hooks.on_partial_store_block(
                    self.core, thread, store, now)
                return None
            if now < store.data_ready_cycle:
                return None  # store data not yet available to forward
            return LoadPlan(raw_addr=raw, addr=addr, value=store.store_value,
                            extra_latency=0, forwarded_from=store.seq)

        value = self.read_memory(thread, addr)
        t0 = now + self.config.rbox_latency
        avail = self.core.hierarchy.load(
            self.core.core_id, thread.phys_addr(addr), t0)
        return LoadPlan(raw_addr=raw, addr=addr, value=value,
                        extra_latency=avail - t0)

    def _plan_trailing_load(self, thread: HwThread, uop: Uop, raw: int,
                            addr: int, now: int) -> Optional[LoadPlan]:
        entry = self.core.hooks.trailing_load_probe(self.core, thread, uop, now)
        if entry is None:
            return None  # LVQ entry not yet arrived (CRT cross-core delay)
        entry_addr, entry_value = entry
        return LoadPlan(raw_addr=raw, addr=addr, value=entry_value,
                        extra_latency=0, lvq_entry=True, lvq_addr=entry_addr)

    def _store_pending(self, thread: HwThread, seq: int) -> bool:
        """Is the store-set dependence target still unexecuted?"""
        for store in thread.store_queue:
            if store.seq == seq:
                return store.mem_addr is None
        return False

    # -- store execution --------------------------------------------------------
    def execute_store(self, thread: HwThread, uop: Uop, now: int) -> None:
        """Resolve a store's address and data; check for order violations."""
        raw, addr = self.effective_address(uop)
        uop.raw_addr = raw
        uop.mem_addr = addr
        uop.store_value = self.core.regfile.read(uop.phys_srcs[1])
        uop.data_ready_cycle = now + self.config.store_data_delay
        self.core.store_sets.store_completed(thread.tid, uop.pc, uop.seq)
        self._check_violations(thread, uop, now)

    def _check_violations(self, thread: HwThread, store: Uop, now: int) -> None:
        """Squash younger loads that read stale data past this store."""
        victim: Optional[Uop] = None
        for load in thread.load_queue:
            if load.seq <= store.seq or load.mem_addr != store.mem_addr:
                continue
            if load.state not in (UopState.ISSUED, UopState.EXECUTED,
                                  UopState.RETIRED):
                continue
            if (load.forwarded_from is not None
                    and load.forwarded_from >= store.seq):
                continue  # got its value from this store or a younger one
            if victim is None or load.seq < victim.seq:
                victim = load
        if victim is not None:
            thread.stats.memory_violations += 1
            self.core.store_sets.record_violation(victim.pc, store.pc)
            self.core.squash_from(thread, victim.seq, now,
                                  redirect_pc=victim.pc,
                                  reason="memory-order violation")

    # -- architectural memory ------------------------------------------------
    def read_memory(self, thread: HwThread, addr: int) -> int:
        return self.core.memory.get(thread.phys_addr(addr), 0)

    def commit_store(self, thread: HwThread, uop: Uop) -> None:
        """Write a draining store's value to the architectural memory image."""
        key = thread.phys_addr(uop.mem_addr)
        if self.core.memory_journal is not None:
            # Undo log for SRTR rollback: old value (None = key absent).
            self.core.memory_journal(key, self.core.memory.get(key))
        if uop.instr.is_partial_store:
            old = self.core.memory.get(key, 0)
            self.core.memory[key] = merge_partial_store(
                uop.raw_addr, old, uop.store_value)
        else:
            self.core.memory[key] = uop.store_value

    # -- store drain ----------------------------------------------------------
    def drain_stores(self, now: int) -> None:
        """Move verified/retired stores into the merge buffer, in order."""
        budget = 4
        for thread in self.core.threads:
            while budget and thread.store_queue:
                head = thread.store_queue[0]
                if head.state is not UopState.RETIRED:
                    break
                if now < head.retire_cycle + self.core.store_release_delay:
                    break  # central checker holds the store (lockstep)
                if (self.core.hooks.store_needs_verification(thread)
                        and not head.verified):
                    break
                if not self.core.hierarchy.store_drain(
                        self.core.core_id, thread.phys_addr(head.mem_addr), now):
                    break  # merge buffer full: back-pressure
                thread.store_queue.pop(0)
                self.commit_store(thread, head)
                log = self.core.drain_log.get(thread.tid)
                if log is not None:
                    # Record the committed memory word (merged for partial
                    # stores) so the stream compares against the golden
                    # model's architectural store effects.
                    committed = self.core.memory[thread.phys_addr(head.mem_addr)]
                    log.append((head.instr.op.name, head.mem_addr, committed))
                thread.stats.store_lifetime_sum += now - head.retire_cycle
                thread.stats.store_lifetime_count += 1
                self.core.hooks.on_store_drained(self.core, thread, head, now)
                budget -= 1
