"""IBOX: thread chooser, line-prediction-driven fetch, chunk building.

Per cycle the IBOX fetches up to two 8-instruction chunks from a single
thread (Table 1).  The thread chooser approximates ICOUNT by picking the
thread with the fewest instructions in its rate-matching buffer
(Section 3.1); under RMT, trailing threads with line-prediction-queue
data available get priority, which the paper found performed best
(Section 4.4).

Leading/single threads fetch down the line predictor's predicted path,
verified by the branch/jump/return predictors (a disagreement is a
misfetch: the line predictor is retrained and fetch re-initiated).
Trailing threads fetch the exact retired path of their leading
counterpart out of the line prediction queue and therefore never
misfetch or mispredict.
"""

from typing import TYPE_CHECKING, List, Optional

from repro.pipeline.thread import HwThread
from repro.pipeline.uop import FetchChunk, Uop

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import Core


class IBox:
    def __init__(self, core: "Core") -> None:
        self.core = core
        self.config = core.config
        self._rotation = 0

    # -- thread chooser ---------------------------------------------------
    def _fetchable(self, thread: HwThread, now: int) -> bool:
        if thread.done or thread.fetch_halted:
            return False
        if now < thread.fetch_stalled_until:
            return False
        if thread.rmb_load() >= thread.rmb.capacity - 1:
            return False
        if thread.is_trailing:
            if thread.fetch_via_lpq:
                return self.core.hooks.trailing_fetch_ready(
                    self.core, thread, now)
            return self.core.hooks.trailing_may_fetch(self.core, thread, now)
        return True

    def _chooser_load(self, thread: HwThread) -> int:
        """Occupancy metric for the thread chooser.

        The base machine approximates ICOUNT with the rate-matching-
        buffer occupancy; the "icount" policy counts every pre-issue
        instruction (RMB chunks plus queue residents).
        """
        if self.config.fetch_policy == "icount":
            buffered = sum(len(chunk) for chunk in thread.rmb)
            buffered += thread.rmb_inflight * self.config.chunk_size
            return buffered + thread.iq_occupancy
        return thread.rmb_load()

    def choose_thread(self, now: int) -> Optional[HwThread]:
        threads = self.core.threads
        candidates = [t for t in threads if self._fetchable(t, now)]
        if not candidates:
            return None
        if self.core.trailing_priority:
            trailing = [t for t in candidates if t.is_trailing]
            if trailing:
                candidates = trailing
        self._rotation += 1
        return min(candidates,
                   key=lambda t: (self._chooser_load(t),
                                  (t.tid + self._rotation) % len(threads)))

    # -- per-cycle fetch ---------------------------------------------------
    def fetch(self, now: int) -> None:
        thread = self.choose_thread(now)
        if thread is None:
            return
        if thread.is_trailing and thread.fetch_via_lpq:
            self._fetch_trailing(thread, now)
        else:
            self._fetch_leading(thread, now)

    # -- leading / single-thread fetch --------------------------------------
    def _fetch_leading(self, thread: HwThread, now: int) -> None:
        pc = thread.fetch_pc
        for _ in range(self.config.fetch_chunks_per_cycle):
            if thread.fetch_halted or thread.rmb_load() >= thread.rmb.capacity:
                break
            avail = self.core.hierarchy.fetch(
                self.core.core_id, thread.code_addr(pc), now)
            if avail > now:
                thread.fetch_stalled_until = avail
                thread.stats.fetch_icache_stall_cycles += avail - now
                break
            proposal = self.core.line_predictor.predict(pc)
            thread.stats.line_predictions += 1
            chunk = self._build_chunk(thread, pc, now)
            self._push_chunk(thread, chunk, now)
            pc = chunk.next_pc
            if not self.core.line_predictor.verify(
                    chunk.start_pc, proposal, chunk.next_pc):
                # Misfetch: retrained above; re-initiate fetch after a bubble.
                thread.stats.misfetches += 1
                thread.fetch_stalled_until = now + self.config.misfetch_penalty
                break
        thread.fetch_pc = pc

    def _build_chunk(self, thread: HwThread, pc: int, now: int) -> FetchChunk:
        """Fetch up to ``chunk_size`` instructions, stopping at the first
        predicted-taken control instruction (or HALT)."""
        program = thread.program
        wrap = len(program)
        core = self.core
        uops: List[Uop] = []
        cur = pc % wrap
        next_pc = cur
        for _ in range(self.config.chunk_size):
            instr = program.fetch(cur)
            uop = Uop(seq=core.next_seq(), thread=thread.tid, pc=cur,
                      instr=instr, fetch_cycle=now)
            taken = False
            if instr.is_control:
                taken = self._predict_control(thread, uop, cur)
            uops.append(uop)
            if instr.is_halt:
                thread.fetch_halted = True
                next_pc = cur
                break
            if taken:
                next_pc = uop.pred_target
                break
            cur = (cur + 1) % wrap
            next_pc = cur
        return FetchChunk(thread=thread.tid, start_pc=pc % wrap, uops=uops,
                          next_pc=next_pc, fetch_cycle=now)

    def _predict_control(self, thread: HwThread, uop: Uop, pc: int) -> bool:
        """Fill the uop's prediction; returns predicted-taken."""
        core = self.core
        instr = uop.instr
        wrap = len(thread.program)
        fallthrough = (pc + 1) % wrap
        if instr.is_conditional:
            taken = core.branch_predictor.predict_conditional(thread.tid, pc)
            target = instr.target if taken else fallthrough
        elif instr.is_call:
            ras = core.ras[thread.tid]
            uop.ras_snapshot = list(ras._stack)
            ras.push(fallthrough)
            taken, target = True, instr.target
        elif instr.is_return:
            ras = core.ras[thread.tid]
            uop.ras_snapshot = list(ras._stack)
            predicted = ras.predict_pop()
            taken = True
            target = predicted if predicted is not None else fallthrough
        elif instr.is_indirect:  # JMP
            predicted = core.jump_predictor.predict(pc)
            taken = True
            target = predicted if predicted is not None else fallthrough
        else:  # BR
            taken, target = True, instr.target
        uop.pred_taken = taken
        uop.pred_target = target % wrap
        return taken

    # -- trailing-thread fetch -----------------------------------------------
    def _fetch_trailing(self, thread: HwThread, now: int) -> None:
        """Fetch exact chunks from the line prediction queue."""
        core = self.core
        for _ in range(self.config.fetch_chunks_per_cycle):
            if thread.rmb_load() >= thread.rmb.capacity:
                break
            spec = core.hooks.trailing_peek_chunk(core, thread, now)
            if spec is None:
                break
            start_pc, pcs, next_pc, half_hints = spec
            # The address driver accepts the prediction (active head moves),
            # then probes the cache; on a miss the LPQ rolls the active head
            # back to the recovery head and re-sends after the fill.
            core.hooks.trailing_ack_chunk(core, thread, now)
            avail = core.hierarchy.fetch(
                core.core_id, thread.code_addr(start_pc), now)
            if avail > now:
                core.hooks.trailing_rollback_chunk(core, thread, now)
                thread.fetch_stalled_until = avail
                thread.stats.fetch_icache_stall_cycles += avail - now
                break
            core.hooks.trailing_commit_chunk(core, thread, now)
            chunk = self._build_trailing_chunk(
                thread, start_pc, pcs, next_pc, half_hints, now)
            self._push_chunk(thread, chunk, now)

    def _build_trailing_chunk(self, thread: HwThread, start_pc: int,
                              pcs: List[int], next_pc: int,
                              half_hints: Optional[List[Optional[int]]],
                              now: int) -> FetchChunk:
        core = self.core
        program = thread.program
        uops: List[Uop] = []
        for position, pc in enumerate(pcs):
            instr = program.fetch(pc)
            uop = Uop(seq=core.next_seq(), thread=thread.tid, pc=pc,
                      instr=instr, fetch_cycle=now, outcome_known=True)
            if instr.is_control:
                follower = (pcs[position + 1] if position + 1 < len(pcs)
                            else next_pc)
                uop.pred_target = follower
                uop.pred_taken = follower != (pc + 1) % len(program)
            if half_hints is not None:
                uop.lpq_half_hint = half_hints[position]
            if instr.is_halt:
                thread.fetch_halted = True
            uops.append(uop)
        return FetchChunk(thread=thread.tid, start_pc=start_pc, uops=uops,
                          next_pc=next_pc, fetch_cycle=now,
                          half_hints=half_hints)

    # -- shared ---------------------------------------------------------------
    def _push_chunk(self, thread: HwThread, chunk: FetchChunk, now: int) -> None:
        thread.rmb_inflight += 1
        self.core.fetch_pipe.push((thread.tid, chunk), now)
