"""Per-hardware-thread-context state.

A hardware thread context holds everything the paper makes per-thread to
avoid inter-thread deadlock (Section 4.3): the rate-matching buffer, the
rename map and PBOX structures, load/store-queue partitions, and the
in-order completion (ROB) state.
"""

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.isa.instructions import NUM_ARCH_REGS
from repro.isa.program import Program
from repro.pipeline.regfile import PhysicalRegisterFile, RenameMap
from repro.pipeline.uop import FetchChunk, Uop
from repro.util.fifo import BoundedFifo


class ThreadRole(enum.Enum):
    SINGLE = "single"     # no redundancy (base machine)
    LEADING = "leading"   # RMT leading thread
    TRAILING = "trailing"  # RMT trailing thread


@dataclass
class ThreadStats:
    retired: int = 0
    done_cycle: Optional[int] = None
    branch_mispredicts: int = 0
    misfetches: int = 0
    line_predictions: int = 0
    squashed_uops: int = 0
    memory_violations: int = 0
    fetch_icache_stall_cycles: int = 0
    map_stall_sq_full: int = 0
    map_stall_lq_full: int = 0
    map_stall_iq_full: int = 0
    store_lifetime_sum: int = 0    # retire -> drain, leading/single stores
    store_lifetime_count: int = 0
    lvq_writes: int = 0
    lvq_reads: int = 0
    # Head-of-ROB blocking, sampled every cycle the head cannot retire —
    # the watchdog's hang-forensics counters (repro.recovery.watchdog).
    membar_block_cycles: int = 0       # barrier waiting on store drain
    partial_store_block_cycles: int = 0  # load blocked on partial forward
    retire_stall_cycles: int = 0       # hooks vetoed retirement (LVQ full)


class HwThread:
    """One hardware thread context of an SMT core."""

    def __init__(self, tid: int, program: Program, regfile: PhysicalRegisterFile,
                 role: ThreadRole = ThreadRole.SINGLE, asid: int = 0,
                 rmb_chunks: int = 4, lq_capacity: int = 64,
                 sq_capacity: int = 64) -> None:
        self.tid = tid
        self.program = program
        self.role = role
        self.asid = asid
        # Distinct address spaces live in distinct high bits; the low-bit
        # stagger models physical-page placement so that co-scheduled
        # programs with identical virtual layouts don't collide on the
        # same cache sets (without it, four programs fetching the same
        # virtual PC range livelock a 2-way L1I set).
        self.addr_offset = (asid << 33) + asid * 161 * 64
        self.partner: Optional["HwThread"] = None  # redundant counterpart
        self.pair_id: Optional[int] = None         # logical thread id
        self.core = None                           # owning Core (set on add)
        self.rename = RenameMap(regfile)
        self.stats = ThreadStats()

        # Fetch state.
        self.fetch_pc = program.entry
        self.fetch_stalled_until = 0
        self.fetch_halted = False
        #: Trailing threads normally fetch the exact retired path from the
        #: line prediction queue; clearing this reverts to the paper's
        #: rejected alternative (Section 4.4): the trailing thread fetches
        #: through the shared line/branch predictors like any other thread.
        self.fetch_via_lpq = role is ThreadRole.TRAILING
        self.done = False
        self.target_instructions: Optional[int] = None

        # Rate-matching buffer (per-thread, Section 3.1).
        self.rmb: BoundedFifo[FetchChunk] = BoundedFifo(
            rmb_chunks, name=f"rmb.t{tid}")
        self.rmb_inflight = 0   # chunks in the IBOX pipe headed for the RMB

        # Completion unit view: every renamed uop in program order.
        self.rob: Deque[Uop] = deque()

        # Memory queues (partitioned or per-thread, Section 4.2).
        self.lq_capacity = lq_capacity
        self.sq_capacity = sq_capacity
        self.load_queue: List[Uop] = []    # program order, dealloc at retire
        self.store_queue: List[Uop] = []   # program order, dealloc at drain

        # Program-order indices for input replication / output comparison.
        self.next_load_index = 0
        self.next_store_index = 0

        # Committed (retirement-boundary) architectural view, maintained
        # by the completion unit.  This is what an SRTR-style checkpoint
        # snapshots: the next PC the retired path will execute, the
        # retired load/store counts, and the committed register values —
        # all exact at instruction granularity, independent of any
        # in-flight speculation (repro.recovery.checkpoint).
        self.committed_pc = program.entry
        self.committed_load_index = 0
        self.committed_store_index = 0
        self.arch_regs: List[int] = [0] * NUM_ARCH_REGS

        # IQ occupancy accounting (reservation happens at rename time).
        self.iq_occupancy = 0

    # -- address translation ---------------------------------------------
    def phys_addr(self, addr: int) -> int:
        """Map a program virtual address to the machine physical space."""
        return addr + self.addr_offset

    def code_addr(self, pc: int) -> int:
        return self.phys_addr(self.program.pc_to_addr(pc))

    # -- helpers -----------------------------------------------------------
    @property
    def is_trailing(self) -> bool:
        return self.role is ThreadRole.TRAILING

    @property
    def is_leading(self) -> bool:
        return self.role is ThreadRole.LEADING

    def rmb_load(self) -> int:
        """Occupancy metric for the ICOUNT-like thread chooser."""
        return len(self.rmb) + self.rmb_inflight

    def sq_free(self) -> int:
        return self.sq_capacity - len(self.store_queue)

    def lq_free(self) -> int:
        return self.lq_capacity - len(self.load_queue)

    def __repr__(self) -> str:
        return f"<hwthread {self.tid} {self.role.value} {self.program.name}>"
