"""Extension points the RMT machinery plugs into the base pipeline.

The base core calls these hooks at well-defined points; the default
implementation is a no-op base machine.  ``repro.core`` provides SRT and
CRT controllers implementing input replication (load value queue, line
prediction queue) and output comparison (store comparator) on top of
them.  Keeping the pipeline free of RMT knowledge mirrors the paper's
framing: SRT is a set of *extensions* to an existing commercial design.
"""

from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.pipeline.core import Core
    from repro.pipeline.thread import HwThread
    from repro.pipeline.uop import Uop


class CoreHooks:
    """No-op hooks: a plain (non-redundant) base machine."""

    # -- retirement-side (QBOX completion unit) -------------------------
    def on_uop_retired(self, core: "Core", thread: "HwThread", uop: "Uop",
                       now: int) -> None:
        """Called for every retiring uop (LPQ chunk aggregation point)."""

    def on_membar_blocked(self, core: "Core", thread: "HwThread",
                          now: int) -> None:
        """ROB head is a memory barrier that cannot retire yet."""

    def on_partial_store_block(self, core: "Core", thread: "HwThread",
                               store_uop: "Uop", now: int) -> None:
        """A load is blocked by partial forwarding from ``store_uop``."""

    def can_retire_load(self, core: "Core", thread: "HwThread", uop: "Uop",
                        now: int) -> bool:
        """False stalls retirement (e.g. the load value queue is full)."""
        return True

    def on_load_retired(self, core: "Core", thread: "HwThread", uop: "Uop",
                        now: int) -> None:
        """A leading/single-thread load retired (LVQ write point)."""

    def store_needs_verification(self, thread: "HwThread") -> bool:
        """True when retired stores must wait for output comparison."""
        return False

    def on_store_retired(self, core: "Core", thread: "HwThread", uop: "Uop",
                         now: int) -> None:
        """A store retired (trailing stores trigger the comparator here)."""

    def on_store_drained(self, core: "Core", thread: "HwThread", uop: "Uop",
                         now: int) -> None:
        """A store left the store queue for the merge buffer."""

    # -- fetch-side (IBOX) -------------------------------------------------
    def trailing_fetch_ready(self, core: "Core", thread: "HwThread",
                             now: int) -> bool:
        """Does the line prediction queue have a chunk for ``thread``?"""
        return False

    def trailing_may_fetch(self, core: "Core", thread: "HwThread",
                           now: int) -> bool:
        """Gate for predictor-mode trailing threads (slack fetch)."""
        return True

    def trailing_peek_chunk(self, core: "Core", thread: "HwThread",
                            now: int) -> Optional[tuple]:
        """Next LPQ chunk spec: (start_pc, pcs, next_pc, half_hints)."""
        return None

    def trailing_ack_chunk(self, core: "Core", thread: "HwThread",
                           now: int) -> None:
        """The address driver accepted the prediction (advance the LPQ
        active head)."""

    def trailing_commit_chunk(self, core: "Core", thread: "HwThread",
                              now: int) -> None:
        """The chunk's instructions were fetched from the cache (advance
        the LPQ recovery head)."""

    def trailing_rollback_chunk(self, core: "Core", thread: "HwThread",
                                now: int) -> None:
        """Instruction-cache miss: roll the LPQ active head back to the
        recovery head so the predictions are re-sent."""

    # -- execute-side (MBOX / EBOX) ----------------------------------------
    def trailing_load_probe(self, core: "Core", thread: "HwThread",
                            uop: "Uop", now: int) -> Optional[Tuple[int, int]]:
        """LVQ associative lookup; returns (address, value) or None."""
        return None

    def trailing_load_consume(self, core: "Core", thread: "HwThread",
                              uop: "Uop", now: int) -> None:
        """Deallocate the LVQ entry the load just read."""

    def on_trailing_divergence(self, core: "Core", thread: "HwThread",
                               uop: "Uop", kind: str, now: int) -> None:
        """Redundant threads disagreed (fault detected)."""

    def queue_half_for(self, core: "Core", thread: "HwThread",
                       uop: "Uop", default_half: int) -> int:
        """Instruction-queue half steering (preferential space redundancy)."""
        return default_half

    # -- bookkeeping ---------------------------------------------------------
    def on_squash(self, core: "Core", thread: "HwThread", from_seq: int,
                  now: int) -> None:
        """Uops of ``thread`` younger than ``from_seq`` were squashed."""
