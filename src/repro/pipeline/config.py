"""Base-processor core parameters (Table 1 of the paper).

The pipeline segments and default latencies follow Figure 2:
I (IBOX) = 4, P (PBOX) = 2, Q (QBOX) = 4, R (RBOX) = 4, E (EBOX) = 1,
M (MBOX) = 2 cycles.
"""

from dataclasses import dataclass


@dataclass
class CoreConfig:
    # Widths.
    fetch_chunks_per_cycle: int = 2      # 2 x 8-instruction chunks, 1 thread
    chunk_size: int = 8
    map_width_chunks: int = 1            # PBOX maps one chunk per cycle
    issue_width: int = 8                 # 4 per queue half
    retire_width: int = 8
    # Structure sizes.
    num_thread_contexts: int = 4
    iq_entries: int = 128                # two 64-entry halves
    iq_reserved_per_thread: int = 8      # one chunk per thread (deadlock rule)
    load_queue_entries: int = 64
    store_queue_entries: int = 64
    physical_registers: int = 512
    rate_matching_buffer_chunks: int = 4  # per-thread RMB capacity
    # Pipeline latencies (Figure 2).
    ibox_latency: int = 4
    pbox_latency: int = 2
    qbox_latency: int = 4                # minimum queue traversal
    rbox_latency: int = 4
    mbox_latency: int = 2                # L1D hit / store-queue forward
    # Penalties.
    misfetch_penalty: int = 2            # line-predictor retrain bubble
    redirect_penalty: int = 2            # extra cycles to steer fetch on squash
    # Memory issue limits per cycle (Section 3.4).
    max_mem_issue: int = 4
    max_load_issue: int = 3
    max_store_issue: int = 2
    store_data_delay: int = 2            # data follows address by 2 cycles
    # Thread chooser policy: "rmb" approximates ICOUNT by rate-matching-
    # buffer occupancy (the base machine's policy, Section 3.1); "icount"
    # counts every pre-issue instruction as in Tullsen et al.
    fetch_policy: str = "rmb"
    # Predictor sizes (Table 1).
    line_predictor_entries: int = 28 * 1024
    branch_counter_bits: int = 16
    branch_history_bits: int = 12
    jump_predictor_entries: int = 4096
    ras_depth: int = 32
    store_sets_entries: int = 4096

    def __post_init__(self) -> None:
        if self.iq_entries % 2:
            raise ValueError("instruction queue must split into two halves")
        if self.max_load_issue + self.max_store_issue < self.max_mem_issue - 1:
            raise ValueError("memory issue limits inconsistent")
