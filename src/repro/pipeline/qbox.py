"""QBOX: the 128-entry instruction queue, split into two 64-entry halves.

Each half can issue up to four instructions per cycle to its own subset
of functional units (Section 3.3).  A uop's default half follows from
its position in the map chunk; the RMT hooks can override this, which is
how preferential space redundancy steers trailing instructions to the
half opposite their leading counterparts (Section 4.5).

Memory issue is limited to four operations per cycle, at most three
loads and two stores (Section 3.4).
"""

from typing import TYPE_CHECKING, List

from repro.isa.executor import alu_result, branch_taken
from repro.isa.instructions import FuClass, Op
from repro.pipeline.thread import HwThread
from repro.pipeline.uop import Uop, UopState

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import Core

class QBox:
    def __init__(self, core: "Core") -> None:
        self.core = core
        self.config = core.config
        self.half_capacity = self.config.iq_entries // 2
        # Half of the QBOX traversal (Figure 2's Q = 4) is the minimum
        # insertion-to-issue wait; the other half overlaps with wakeup
        # and select.
        self.min_queue_wait = self.config.qbox_latency // 2
        self.halves: List[List[Uop]] = [[], []]

    # -- occupancy -------------------------------------------------------
    def occupancy(self, half: int) -> int:
        return len(self.halves[half])

    # -- insertion ---------------------------------------------------------
    def insert_chunk(self, thread: HwThread, uops: List[Uop], now: int) -> None:
        for position, uop in enumerate(uops):
            if uop.state is UopState.SQUASHED:
                continue
            default_half = position % 2
            half = self.core.hooks.queue_half_for(
                self.core, thread, uop, default_half)
            if len(self.halves[half]) >= self.half_capacity:
                half = 1 - half
            uop.queue_half = half
            uop.state = UopState.QUEUED
            uop.queue_cycle = now
            self.halves[half].append(uop)

    # -- issue ----------------------------------------------------------------
    def issue(self, now: int) -> None:
        core = self.core
        mem_issued = loads_issued = stores_issued = 0
        for half in (0, 1):
            entries = [u for u in self.halves[half]
                       if u.state is UopState.QUEUED]
            self.halves[half] = entries
            issued_this_half = 0
            for uop in entries:
                if issued_this_half >= self.config.issue_width // 2:
                    break
                if uop.state is not UopState.QUEUED:
                    continue  # squashed by a violation earlier this cycle
                if now < uop.queue_cycle + self.min_queue_wait:
                    continue
                if not self._sources_ready(uop):
                    continue
                instr = uop.instr
                is_mem = instr.fu_class is FuClass.MEM
                if is_mem:
                    if mem_issued >= self.config.max_mem_issue:
                        continue
                    if instr.is_load and loads_issued >= self.config.max_load_issue:
                        continue
                    if instr.is_store and stores_issued >= self.config.max_store_issue:
                        continue
                thread = core.threads[uop.thread]
                plan = None
                if instr.is_load:
                    plan = core.mbox.plan_load(thread, uop, now)
                    if plan is None:
                        continue  # must wait; retries next cycle
                fu = core.fus.acquire(instr.fu_class, half, now)
                if fu is None:
                    continue  # structural hazard on this half's units
                self._do_issue(thread, uop, fu, plan, now)
                issued_this_half += 1
                if is_mem:
                    mem_issued += 1
                    loads_issued += int(instr.is_load)
                    stores_issued += int(instr.is_store)
            # Remove issued uops from the queue (they move to the
            # in-flight table).
            self.halves[half] = [u for u in self.halves[half]
                                 if u.state is UopState.QUEUED]

    def _sources_ready(self, uop: Uop) -> bool:
        regfile = self.core.regfile
        return all(regfile.is_ready(reg) for reg in uop.phys_srcs)

    # -- execution (value computation happens here; sources are final) ------
    def _do_issue(self, thread: HwThread, uop: Uop, fu: tuple, plan, now: int) -> None:
        core = self.core
        instr = uop.instr
        uop.state = UopState.ISSUED
        uop.issue_cycle = now
        uop.fu = fu
        thread.iq_occupancy -= 1
        # Dependents wake up after the execute latency alone (results are
        # bypassed around the RBOX register-read stages); the instruction
        # itself completes — resolves branches, becomes retire-eligible —
        # only after the full RBOX+EBOX traversal.
        bypass_latency = instr.exec_latency

        if instr.is_load:
            uop.raw_addr = plan.raw_addr
            uop.mem_addr = plan.addr
            uop.result = plan.value
            uop.forwarded_from = plan.forwarded_from
            if plan.lvq_entry:
                # The entry is consumed (and its address cross-checked) at
                # retirement, so wrong-path trailing loads in predictor
                # fetch mode neither deallocate nor falsely flag entries.
                uop.lvq_addr_check = plan.lvq_addr
            bypass_latency = self.config.mbox_latency + plan.extra_latency
        elif instr.is_store:
            core.mbox.execute_store(thread, uop, now + 1)
            bypass_latency = 1
        elif instr.is_control:
            self._resolve_control_values(thread, uop)
        elif instr.writes_reg:
            values = [core.regfile.read(reg) for reg in uop.phys_srcs]
            if instr.op is Op.FMA:
                uop.result = alu_result(instr, values[0], values[1], values[2])
            elif len(values) == 1:
                uop.result = alu_result(instr, values[0], 0)
            elif len(values) == 0:
                uop.result = alu_result(instr, 0, 0)
            else:
                uop.result = alu_result(instr, values[0], values[1])

        if core.result_corruptor is not None:
            core.result_corruptor(uop, now)
        core.schedule(now + bypass_latency, "bypass", uop)
        core.schedule(now + bypass_latency + self.config.rbox_latency,
                      "complete", uop)

    def _resolve_control_values(self, thread: HwThread, uop: Uop) -> None:
        """Compute a control uop's actual outcome from register values."""
        core = self.core
        instr = uop.instr
        wrap = len(thread.program)
        value = (core.regfile.read(uop.phys_srcs[0])
                 if uop.phys_srcs else 0)
        taken = branch_taken(instr, value)
        if instr.is_call:
            target = instr.target
            uop.result = (uop.pc + 1) % wrap  # return address into rd
        elif instr.is_indirect:  # JMP / RET
            target = value % wrap
        elif taken:
            target = instr.target
        else:
            target = (uop.pc + 1) % wrap
        uop.actual_taken = taken
        uop.actual_target = target % wrap
