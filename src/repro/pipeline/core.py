"""One SMT core: the boxes wired together, plus rename, completion,
retirement, and squash.

Cycle phases (``tick``), youngest-information-first so each phase sees
the machine state its hardware counterpart would:

1. writeback/complete events (EBOX results, branch resolution)
2. retirement (QBOX completion unit) and store drain (MBOX)
3. issue (QBOX scheduler)
4. instruction-queue insertion (PBOX output pipe)
5. rename/map (PBOX; one chunk per cycle)
6. fetch delivery and fetch (IBOX)
"""

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CoreConfig
from repro.pipeline.ebox import FunctionalUnitPools
from repro.pipeline.hooks import CoreHooks
from repro.pipeline.ibox import IBox
from repro.pipeline.mbox import MBox
from repro.pipeline.qbox import QBox
from repro.pipeline.regfile import PhysicalRegisterFile
from repro.pipeline.thread import HwThread, ThreadRole
from repro.pipeline.uop import FetchChunk, Uop, UopState
from repro.predictors import (GshareBranchPredictor, JumpTargetPredictor,
                              LinePredictor, ReturnAddressStack, StoreSets)
from repro.util.delayline import DelayLine

# Cycles between a result completing and the instruction becoming
# retire-eligible ("additional cycles to retire beyond the MBOX").
RETIRE_MARGIN = 2


@dataclass
class CoreStats:
    cycles: int = 0
    retired_total: int = 0
    squashes: int = 0
    rename_stalls: int = 0


class Core:
    def __init__(self, core_id: int, config: CoreConfig,
                 hierarchy: MemoryHierarchy, memory: Dict[int, int],
                 hooks: Optional[CoreHooks] = None,
                 trailing_priority: bool = True) -> None:
        self.core_id = core_id
        self.config = config
        self.hierarchy = hierarchy
        self.memory = memory
        self.hooks = hooks or CoreHooks()
        self.trailing_priority = trailing_priority

        self.regfile = PhysicalRegisterFile(config.physical_registers)
        self.threads: List[HwThread] = []

        self.line_predictor = LinePredictor(config.line_predictor_entries,
                                            config.chunk_size)
        self.branch_predictor = GshareBranchPredictor(
            config.branch_counter_bits, config.branch_history_bits,
            config.num_thread_contexts)
        self.jump_predictor = JumpTargetPredictor(config.jump_predictor_entries)
        self.ras = [ReturnAddressStack(config.ras_depth)
                    for _ in range(config.num_thread_contexts)]
        self.store_sets = StoreSets(config.store_sets_entries,
                                    config.num_thread_contexts)
        self.fus = FunctionalUnitPools()

        self.ibox = IBox(self)
        self.qbox = QBox(self)
        self.mbox = MBox(self)

        #: Optional fault-injection hook: called as f(uop, now) right after
        #: a uop's result/address/store value is computed at issue; may
        #: mutate the uop in place (see repro.core.faults).
        self.result_corruptor = None
        #: Optional undo-log hook: called as f(key, old_value_or_None)
        #: just before a draining store overwrites the architectural
        #: memory image (see repro.recovery.checkpoint).
        self.memory_journal = None
        #: Extra cycles a retired store waits before draining (lockstep
        #: machines set this to the checker latency: every output signal
        #: is compared before being forwarded outside the sphere).
        self.store_release_delay = 0

        # (thread id, FetchChunk) in the IBOX pipe.
        self.fetch_pipe: DelayLine[Tuple[int, FetchChunk]] = DelayLine(
            config.ibox_latency, "fetch-pipe")
        # (thread id, uops) in the PBOX pipe headed for the queue.
        self.map_pipe: DelayLine[Tuple[int, List[Uop]]] = DelayLine(
            config.pbox_latency, "map-pipe")

        self._events: List[Tuple[int, int, str, Uop]] = []
        #: When set (per thread id), retiring uops are appended for
        #: architectural cross-checking against the functional executor.
        self.retire_trace: Dict[int, List[Uop]] = {}
        #: When set (per thread id), draining stores are appended as
        #: (op name, address, value) — the stream leaving the sphere.
        self.drain_log: Dict[int, List[Tuple[str, int, int]]] = {}
        self._seq = 0
        self._rename_rotation = 0
        self._retire_rotation = 0
        self.stats = CoreStats()
        self.now = 0

    # -- setup -----------------------------------------------------------
    def add_thread(self, program: Program, role: ThreadRole = ThreadRole.SINGLE,
                   asid: int = 0, lq_capacity: int = 64,
                   sq_capacity: int = 64) -> HwThread:
        if len(self.threads) >= self.config.num_thread_contexts:
            raise ValueError("no free hardware thread context")
        thread = HwThread(tid=len(self.threads), program=program,
                          regfile=self.regfile, role=role, asid=asid,
                          rmb_chunks=self.config.rate_matching_buffer_chunks,
                          lq_capacity=lq_capacity, sq_capacity=sq_capacity)
        thread.core = self
        self.threads.append(thread)
        # Seed the architectural memory image (idempotent across the
        # redundant pair, which shares an address space).
        for addr, value in program.initial_memory.items():
            self.memory.setdefault(thread.phys_addr(addr), value)
        return thread

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def schedule(self, cycle: int, kind: str, uop: Uop) -> None:
        heapq.heappush(self._events, (cycle, uop.seq, kind, uop))

    # -- main loop ----------------------------------------------------------
    def tick(self, now: int) -> None:
        self.now = now
        self._process_events(now)
        self._retire(now)
        self.mbox.drain_stores(now)
        self.qbox.issue(now)
        self._insert_queue(now)
        self._rename(now)
        self._deliver_fetch(now)
        self.ibox.fetch(now)
        self.stats.cycles += 1

    # -- phase 1: writeback ----------------------------------------------------
    def _process_events(self, now: int) -> None:
        while self._events and self._events[0][0] <= now:
            _, _, kind, uop = heapq.heappop(self._events)
            if kind == "bypass":
                self._bypass(uop, now)
            elif kind == "complete":
                self._complete(uop, now)

    def _bypass(self, uop: Uop, now: int) -> None:
        """Result available on the bypass network: wake dependents."""
        if uop.state is not UopState.ISSUED:
            return  # squashed while in flight
        if uop.phys_dest is not None:
            self.regfile.write(uop.phys_dest, uop.result or 0)

    def _complete(self, uop: Uop, now: int) -> None:
        if uop.state is not UopState.ISSUED:
            return  # squashed while in flight
        uop.state = UopState.EXECUTED
        uop.complete_cycle = now
        thread = self.threads[uop.thread]
        if uop.instr.is_control:
            self._resolve_control(thread, uop, now)

    def _resolve_control(self, thread: HwThread, uop: Uop, now: int) -> None:
        instr = uop.instr
        mispredicted = (uop.actual_taken != uop.pred_taken
                        or uop.actual_target != uop.pred_target)
        # Train predictors (LPQ-fed trailing threads train nothing: their
        # stream comes from the line prediction queue, not the predictors).
        if not (thread.is_trailing and thread.fetch_via_lpq):
            if instr.is_conditional:
                self.branch_predictor.update_conditional(
                    thread.tid, uop.pc, uop.actual_taken, uop.pred_taken)
            elif instr.is_indirect and not instr.is_return:
                self.jump_predictor.update(uop.pc, uop.actual_target,
                                           uop.pred_target)
        if not mispredicted:
            return
        if uop.outcome_known:
            # The LPQ promised this outcome; disagreement means a fault.
            self.hooks.on_trailing_divergence(
                self, thread, uop, "control-flow-divergence", now)
            return
        thread.stats.branch_mispredicts += 1
        self.squash_from(thread, uop.seq + 1, now,
                         redirect_pc=uop.actual_target,
                         reason="branch misprediction")

    # -- phase 2: retire ----------------------------------------------------------
    def _retire(self, now: int) -> None:
        budget = self.config.retire_width
        n = len(self.threads)
        if n == 0:
            return
        self._retire_rotation = (self._retire_rotation + 1) % n
        order = (self.threads[self._retire_rotation:]
                 + self.threads[:self._retire_rotation])
        for thread in order:
            while budget > 0 and thread.rob:
                uop = thread.rob[0]
                if not self._retire_eligible(thread, uop, now):
                    break
                self._do_retire(thread, uop, now)
                budget -= 1

    def _retire_eligible(self, thread: HwThread, uop: Uop, now: int) -> bool:
        if uop.state is not UopState.EXECUTED:
            return False
        if now < uop.complete_cycle + RETIRE_MARGIN:
            return False
        instr = uop.instr
        if instr.is_membar:
            # A barrier retires only once every *older* store has drained
            # (the store queue also holds younger, not-yet-retired stores).
            if thread.store_queue and thread.store_queue[0].seq < uop.seq:
                thread.stats.membar_block_cycles += 1
                self.hooks.on_membar_blocked(self, thread, now)
                return False
        if instr.is_store and now < uop.data_ready_cycle:
            return False
        if instr.is_load and not thread.is_trailing:
            if not self.hooks.can_retire_load(self, thread, uop, now):
                thread.stats.retire_stall_cycles += 1
                return False
        return True

    def _do_retire(self, thread: HwThread, uop: Uop, now: int) -> None:
        uop.state = UopState.RETIRED
        uop.retire_cycle = now
        thread.rob.popleft()
        if uop.prev_phys_dest is not None:
            self.regfile.release(uop.prev_phys_dest)
        instr = uop.instr
        if instr.is_load:
            if thread.is_trailing:
                # Input-replication cross-check and LVQ deallocation.
                if (uop.lvq_addr_check is not None
                        and uop.lvq_addr_check != uop.mem_addr):
                    self.hooks.on_trailing_divergence(
                        self, thread, uop, "lvq-address-mismatch", now)
                self.hooks.trailing_load_consume(self, thread, uop, now)
                thread.stats.lvq_reads += 1
            else:
                thread.load_queue.remove(uop)
                self.hooks.on_load_retired(self, thread, uop, now)
        elif instr.is_store:
            if thread.is_trailing:
                # Trailing stores exist only to be compared; they free
                # their store-queue entry at retirement.
                thread.store_queue.remove(uop)
            self.hooks.on_store_retired(self, thread, uop, now)
        elif instr.is_halt:
            thread.done = True
        # Committed architectural view (checkpoint/forensics substrate).
        if instr.writes_reg and uop.phys_dest is not None:
            thread.arch_regs[instr.rd] = self.regfile.read(uop.phys_dest)
        if instr.is_load:
            thread.committed_load_index = uop.load_index + 1
        elif instr.is_store:
            thread.committed_store_index = uop.store_index + 1
        if instr.is_control:
            thread.committed_pc = uop.actual_target
        else:
            thread.committed_pc = (uop.pc + 1) % len(thread.program)
        trace = self.retire_trace.get(thread.tid)
        if trace is not None:
            trace.append(uop)
        thread.stats.retired += 1
        self.stats.retired_total += 1
        if (thread.target_instructions is not None
                and thread.stats.retired >= thread.target_instructions
                and thread.stats.done_cycle is None):
            thread.stats.done_cycle = now
        self.hooks.on_uop_retired(self, thread, uop, now)

    # -- phase 4: queue insertion ------------------------------------------------
    def _insert_queue(self, now: int) -> None:
        for tid, uops in self.map_pipe.pop_ready(now):
            self.qbox.insert_chunk(self.threads[tid], uops, now)

    # -- phase 5: rename ------------------------------------------------------------
    def _rename(self, now: int) -> None:
        n = len(self.threads)
        if n == 0:
            return
        self._rename_rotation = (self._rename_rotation + 1) % n
        order = (self.threads[self._rename_rotation:]
                 + self.threads[:self._rename_rotation])
        for thread in order:
            chunk = thread.rmb.peek()
            if chunk is None:
                continue
            if not self._can_map(thread, chunk):
                continue
            thread.rmb.pop()
            self._map_chunk(thread, chunk, now)
            return  # PBOX maps one chunk per cycle

    def _can_map(self, thread: HwThread, chunk: FetchChunk) -> bool:
        uops = chunk.uops
        writes = sum(1 for u in uops if u.instr.writes_reg)
        loads = sum(1 for u in uops if u.instr.is_load)
        stores = sum(1 for u in uops if u.instr.is_store)
        if self.regfile.free_count < writes:
            self.stats.rename_stalls += 1
            return False
        if not thread.is_trailing and thread.lq_free() < loads:
            thread.stats.map_stall_lq_full += 1
            return False
        if thread.sq_free() < stores:
            thread.stats.map_stall_sq_full += 1
            return False
        if not self._iq_space_for(thread, len(uops)):
            thread.stats.map_stall_iq_full += 1
            return False
        return True

    def _iq_space_for(self, thread: HwThread, count: int) -> bool:
        """Global occupancy check honouring the one-reserved-chunk-per-
        thread deadlock rule (Section 4.3)."""
        total = sum(t.iq_occupancy for t in self.threads)
        reserve = sum(
            max(0, self.config.iq_reserved_per_thread - t.iq_occupancy)
            for t in self.threads if t is not thread and not t.done)
        return total + count + reserve <= self.config.iq_entries

    def _map_chunk(self, thread: HwThread, chunk: FetchChunk, now: int) -> None:
        live: List[Uop] = []
        for uop in chunk.uops:
            if uop.state is UopState.SQUASHED:
                continue
            instr = uop.instr
            uop.phys_srcs = [thread.rename.lookup(reg)
                             for reg in instr.source_regs]
            if instr.writes_reg:
                uop.phys_dest, uop.prev_phys_dest = (
                    thread.rename.rename_dest(instr.rd))
            uop.state = UopState.RENAMED
            thread.rob.append(uop)
            thread.iq_occupancy += 1
            if instr.is_load:
                uop.load_index = thread.next_load_index
                thread.next_load_index += 1
                if not thread.is_trailing:
                    thread.load_queue.append(uop)
                    # Store-sets dependence is read at dispatch, so it can
                    # only name an older store.
                    uop.memdep_seq = self.store_sets.load_dependence(
                        thread.tid, uop.pc)
            elif instr.is_store:
                uop.store_index = thread.next_store_index
                thread.next_store_index += 1
                thread.store_queue.append(uop)
                self.store_sets.store_dispatched(thread.tid, uop.pc, uop.seq)
            live.append(uop)
        if live:
            self.map_pipe.push((thread.tid, live), now)

    # -- phase 6: fetch delivery -----------------------------------------------------
    def _deliver_fetch(self, now: int) -> None:
        for tid, chunk in self.fetch_pipe.pop_ready(now):
            thread = self.threads[tid]
            thread.rmb_inflight -= 1
            thread.rmb.push(chunk)

    # -- squash ------------------------------------------------------------------------
    def squash_from(self, thread: HwThread, from_seq: int, now: int,
                    redirect_pc: int, reason: str) -> None:
        """Squash every uop of ``thread`` with seq >= ``from_seq`` and
        redirect fetch to ``redirect_pc``."""
        self.stats.squashes += 1
        ras_restore = None
        while thread.rob and thread.rob[-1].seq >= from_seq:
            uop = thread.rob.pop()
            if uop.phys_dest is not None:
                thread.rename.undo_rename(uop.instr.rd, uop.phys_dest,
                                          uop.prev_phys_dest)
            instr = uop.instr
            if instr.is_load:
                thread.next_load_index = uop.load_index
                if not thread.is_trailing and uop in thread.load_queue:
                    thread.load_queue.remove(uop)
            elif instr.is_store:
                thread.next_store_index = uop.store_index
                if uop in thread.store_queue:
                    thread.store_queue.remove(uop)
            if uop.state in (UopState.RENAMED, UopState.QUEUED):
                thread.iq_occupancy -= 1
            if uop.ras_snapshot is not None:
                ras_restore = uop.ras_snapshot
            uop.state = UopState.SQUASHED
            thread.stats.squashed_uops += 1
        if ras_restore is not None:
            self.ras[thread.tid]._stack = list(ras_restore)

        # Everything still in the front end is younger: drop it all.
        removed = self.fetch_pipe.remove_if(lambda item: item[0] == thread.tid)
        thread.rmb_inflight -= removed
        for chunk in thread.rmb:
            for uop in chunk.uops:
                uop.state = UopState.SQUASHED
        thread.rmb.clear()

        thread.fetch_pc = redirect_pc
        thread.fetch_stalled_until = max(
            thread.fetch_stalled_until, now + self.config.redirect_penalty)
        thread.fetch_halted = False
        self.hooks.on_squash(self, thread, from_seq, now)

    # -- introspection -------------------------------------------------------------------
    def thread_ipc(self, tid: int) -> float:
        thread = self.threads[tid]
        cycles = thread.stats.done_cycle or self.stats.cycles
        return thread.stats.retired / cycles if cycles else 0.0
