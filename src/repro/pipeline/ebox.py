"""Functional-unit pools (EBOX integer/logic, FBOX floating point, MBOX
memory ports).

Table 1: 8 integer units, 8 logic units, 4 memory units, 4 floating
point units; 8 operations issue per cycle.  Units are partitioned
between the two instruction-queue halves (each half can issue 4 per
cycle to its own unit subset), which is the structural basis for
preferential space redundancy: steering a trailing uop to the opposite
queue half guarantees it a physically different unit instance.

Per-instance occupancy is tracked so the paper's Figure 7 statistic
(fraction of corresponding instruction pairs executing on the *same*
unit) can be measured directly.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.isa.instructions import FuClass

POOL_SIZES = {
    FuClass.INT: 8,
    FuClass.LOGIC: 8,
    FuClass.MEM: 4,
    FuClass.FP: 4,
}


@dataclass
class FunctionalUnitStats:
    issues: int = 0
    structural_stalls: int = 0
    per_unit_issues: Dict[Tuple[FuClass, int], int] = field(default_factory=dict)


class FunctionalUnitPools:
    """Busy-until tracking for every individual unit instance."""

    def __init__(self, pool_sizes: Optional[Dict[FuClass, int]] = None) -> None:
        self.pool_sizes = dict(pool_sizes or POOL_SIZES)
        self._busy_until: Dict[Tuple[FuClass, int], int] = {}
        self.stats = FunctionalUnitStats()

    def units_for_half(self, fu_class: FuClass, half: int) -> range:
        """Unit indices of ``fu_class`` reachable from queue half ``half``."""
        size = self.pool_sizes[fu_class]
        per_half = size // 2
        start = half * per_half
        return range(start, start + per_half)

    def acquire(self, fu_class: FuClass, half: int, now: int,
                busy_cycles: int = 1) -> Optional[Tuple[FuClass, int]]:
        """Claim a free unit of ``fu_class`` in ``half``'s partition.

        Returns the (class, index) actually used, or None when every unit
        in the partition is busy this cycle (a structural stall).
        """
        for index in self.units_for_half(fu_class, half):
            key = (fu_class, index)
            if self._busy_until.get(key, 0) <= now:
                self._busy_until[key] = now + busy_cycles
                self.stats.issues += 1
                self.stats.per_unit_issues[key] = (
                    self.stats.per_unit_issues.get(key, 0) + 1)
                return key
        self.stats.structural_stalls += 1
        return None

    def is_free(self, fu_class: FuClass, half: int, now: int) -> bool:
        return any(self._busy_until.get((fu_class, index), 0) <= now
                   for index in self.units_for_half(fu_class, half))
