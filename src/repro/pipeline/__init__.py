"""The base SMT processor pipeline (Section 3 of the paper)."""

from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core, CoreStats
from repro.pipeline.ebox import FunctionalUnitPools
from repro.pipeline.hooks import CoreHooks
from repro.pipeline.regfile import (OutOfPhysicalRegisters,
                                    PhysicalRegisterFile, RenameMap)
from repro.pipeline.thread import HwThread, ThreadRole, ThreadStats
from repro.pipeline.uop import FetchChunk, Uop, UopState

__all__ = [
    "CoreConfig",
    "Core",
    "CoreStats",
    "CoreHooks",
    "FunctionalUnitPools",
    "PhysicalRegisterFile",
    "RenameMap",
    "OutOfPhysicalRegisters",
    "HwThread",
    "ThreadRole",
    "ThreadStats",
    "FetchChunk",
    "Uop",
    "UopState",
]
