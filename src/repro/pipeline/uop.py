"""Dynamic instructions (uops) and fetch chunks."""

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.instructions import Instruction


class UopState(enum.Enum):
    FETCHED = enum.auto()    # in the fetch pipe / rate-matching buffer
    RENAMED = enum.auto()    # mapped, travelling to the instruction queue
    QUEUED = enum.auto()     # waiting in the QBOX instruction queue
    ISSUED = enum.auto()     # issued to RBOX/EBOX, executing
    EXECUTED = enum.auto()   # result produced, waiting to retire
    RETIRED = enum.auto()
    SQUASHED = enum.auto()


@dataclass
class Uop:
    """One dynamic instance of an instruction."""

    seq: int                     # core-wide age (rename order)
    thread: int                  # hardware thread context id
    pc: int
    instr: Instruction
    state: UopState = UopState.FETCHED

    # Control-flow prediction (filled at fetch).
    pred_taken: bool = False
    pred_target: Optional[int] = None
    # For trailing threads: the outcome promised by the line prediction
    # queue; a divergence at execute is a detected fault, not a mispredict.
    outcome_known: bool = False

    # Rename state.
    phys_srcs: List[int] = field(default_factory=list)
    phys_dest: Optional[int] = None
    prev_phys_dest: Optional[int] = None
    ras_snapshot: Optional[list] = None

    # Queue / execute state.
    queue_half: Optional[int] = None
    fu: Optional[tuple] = None        # (FuClass, unit index) actually used
    result: Optional[int] = None
    actual_taken: bool = False
    actual_target: Optional[int] = None

    # Memory state.
    mem_addr: Optional[int] = None    # word-aligned effective address
    raw_addr: Optional[int] = None    # pre-alignment (selects STH half)
    store_value: Optional[int] = None
    data_ready_cycle: int = -1        # store data trails its address
    verified: bool = False            # output comparison done (RMT stores)
    forwarded_from: Optional[int] = None  # seq of the store forwarded from
    memdep_seq: Optional[int] = None  # store-sets dependence (set at rename)
    load_index: Optional[int] = None   # program-order load number (LVQ tag)
    lvq_addr_check: Optional[int] = None  # address the LVQ entry recorded
    store_index: Optional[int] = None  # program-order store number
    lpq_half_hint: Optional[int] = None  # PSR: leading counterpart's half

    # Timing.
    fetch_cycle: int = -1
    queue_cycle: int = -1
    issue_cycle: int = -1
    complete_cycle: int = -1
    retire_cycle: int = -1

    @property
    def alive(self) -> bool:
        return self.state not in (UopState.SQUASHED, UopState.RETIRED)

    def __repr__(self) -> str:  # compact, for debugging traces
        return (f"<uop#{self.seq} t{self.thread} pc={self.pc} "
                f"{self.instr.op.name} {self.state.name}>")


@dataclass
class FetchChunk:
    """Up to eight contiguous instructions fetched together."""

    thread: int
    start_pc: int
    uops: List[Uop]
    next_pc: int                 # predicted (leading) / exact (trailing)
    fetch_cycle: int = -1
    # PSR hints for trailing-thread chunks, one per uop.
    half_hints: Optional[List[Optional[int]]] = None

    def __len__(self) -> int:
        return len(self.uops)
