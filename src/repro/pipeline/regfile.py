"""Physical register file and per-thread register renaming.

Table 1: 512 physical registers backing 256 architectural registers
(64 per hardware thread context).  Values are held in the physical
registers themselves, which is what makes the simulation value-true:
redundant threads really compute, wrong-path uops really execute, and
injected bit flips really propagate.
"""

from collections import deque
from typing import Deque, List

from repro.isa.instructions import NUM_ARCH_REGS, ZERO_REG


class OutOfPhysicalRegisters(Exception):
    """No free physical register at rename time (caller must stall)."""


class PhysicalRegisterFile:
    def __init__(self, num_regs: int = 512) -> None:
        self.num_regs = num_regs
        self.values: List[int] = [0] * num_regs
        self.ready: List[bool] = [True] * num_regs
        self._free: Deque[int] = deque(range(num_regs))

    @property
    def free_count(self) -> int:
        return len(self._free)

    def allocate(self) -> int:
        if not self._free:
            raise OutOfPhysicalRegisters()
        reg = self._free.popleft()
        self.ready[reg] = False
        return reg

    def release(self, reg: int) -> None:
        self.ready[reg] = True
        self._free.append(reg)

    def write(self, reg: int, value: int) -> None:
        self.values[reg] = value
        self.ready[reg] = True

    def read(self, reg: int) -> int:
        return self.values[reg]

    def is_ready(self, reg: int) -> bool:
        return self.ready[reg]


class RenameMap:
    """One hardware thread's architectural-to-physical mapping."""

    def __init__(self, regfile: PhysicalRegisterFile) -> None:
        self.regfile = regfile
        self.map: List[int] = []
        for _ in range(NUM_ARCH_REGS):
            reg = regfile.allocate()
            regfile.write(reg, 0)
            self.map.append(reg)

    def lookup(self, arch_reg: int) -> int:
        return self.map[arch_reg]

    def rename_dest(self, arch_reg: int) -> tuple:
        """Allocate a new physical register for ``arch_reg``.

        Returns ``(new_phys, prev_phys)``; the previous mapping is freed
        when the renaming uop retires, or restored if it squashes.
        """
        if arch_reg == ZERO_REG:
            raise ValueError("r0 is never renamed")
        new_reg = self.regfile.allocate()
        prev = self.map[arch_reg]
        self.map[arch_reg] = new_reg
        return new_reg, prev

    def undo_rename(self, arch_reg: int, new_reg: int, prev_reg: int) -> None:
        """Roll back a rename during squash (youngest-first order)."""
        assert self.map[arch_reg] == new_reg, "squash must unwind in order"
        self.map[arch_reg] = prev_reg
        self.regfile.release(new_reg)

    def architectural_value(self, arch_reg: int) -> int:
        """Committed-state read (only meaningful when the thread is idle)."""
        if arch_reg == ZERO_REG:
            return 0
        return self.regfile.read(self.map[arch_reg])
