"""The chaos controller: arms a plan and executes fault decisions.

Instrumented infrastructure code calls :func:`chaos_point` at named
sites.  With nothing armed the call is a global load and a ``None``
test — cheap enough to leave compiled into every hot path (the guard
benchmark in ``benchmarks/test_campaign_throughput.py`` holds it under
1% of per-task campaign cost).  With a plan armed, each crossing is
matched against the plan's rules and a firing rule's fault is executed
in place:

========== ==============================================================
crash      ``os._exit(87)`` — an abrupt worker kill (no atexit, no
           flush), exactly what a SIGKILL'd pool process looks like
stall      *deferred* to the crossing wrapper: :func:`chaos_point`
           sleeps with ``time.sleep``, :func:`chaos_point_async` with
           ``asyncio.sleep`` — so a stall injected on the serve path
           slows one request instead of freezing the event loop
disk-full  raises ``OSError(ENOSPC)``
io-error   raises ``OSError(EIO)``
conn-reset raises ``ConnectionResetError``
torn-write *returned* to the site, which writes a deterministic
           partial prefix of its buffer and then raises ``OSError``
========== ==============================================================

Cross-process arming: :func:`arm` exports the plan into the process
environment (``REPRO_CHAOS_PLAN``), so pool workers inherit it whether
the pool forks (module state is copied armed) or spawns (the child
lazily re-arms from the environment on its first crossing).
"""

import asyncio
import os
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.plan import FAULT_KINDS, ChaosPlan

#: Environment variable carrying the armed plan JSON into child
#: processes (spawn-start pools re-arm from it lazily).
ENV_PLAN = "REPRO_CHAOS_PLAN"

#: Exit status of a chaos-crashed process (distinctive in pool logs).
CRASH_EXIT_CODE = 87


@dataclass(frozen=True)
class ChaosEvent:
    """One fired fault (also the torn-write directive handed to sites)."""

    seq: int
    site: str
    key: Optional[str]
    attempt: int
    fault: str
    rule_index: int
    fraction: float = 0.5  # torn-write tear point, deterministic
    delay_s: float = 0.0   # stall duration the crossing wrapper sleeps

    def tear(self, size: int) -> int:
        """Bytes of a ``size``-byte buffer to write before failing."""
        if size <= 1:
            return size
        return min(size - 1, max(1, int(size * self.fraction)))


class ChaosController:
    """Evaluates an armed plan at every hook crossing."""

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan.validate()
        self.fired: Dict[int, int] = {}   # rule index -> fire count
        self.log: List[ChaosEvent] = []
        self._counters: Dict[str, int] = {}  # keyless-crossing counters

    # -- evaluation --------------------------------------------------------
    def fire(self, site: str, key: Optional[str],
             attempt: int) -> Optional[ChaosEvent]:
        for index in self.plan.matching_rules(site):
            rule = self.plan.rules[index]
            if attempt > rule.max_attempt:
                continue
            if rule.key_pattern is not None:
                if key is None or not re.search(rule.key_pattern, key):
                    continue
            if rule.limit is not None and \
                    self.fired.get(index, 0) >= rule.limit:
                continue
            draw_key = key if key is not None else self._next_count(site)
            if not self.plan.decides(index, site, str(draw_key), attempt):
                continue
            self.fired[index] = self.fired.get(index, 0) + 1
            event = ChaosEvent(
                seq=len(self.log), site=site, key=key, attempt=attempt,
                fault=rule.fault, rule_index=index,
                fraction=self.plan.fraction(index, site, str(draw_key),
                                            attempt),
                delay_s=(rule.delay_s if rule.fault == "stall" else 0.0))
            self.log.append(event)
            # Observability: fired faults show up in /metrics and the
            # `repro metrics` snapshot alongside the serve counters.
            from repro.obs.metrics import registry
            registry().counter(f"chaos.fired.{rule.fault}").inc()
            return self._execute(rule, event)
        return None

    def _next_count(self, site: str) -> str:
        count = self._counters.get(site, 0)
        self._counters[site] = count + 1
        return f"#{count}"

    def _execute(self, rule, event: ChaosEvent) -> Optional[ChaosEvent]:
        if rule.fault == "crash":
            os._exit(CRASH_EXIT_CODE)
        if rule.fault == "stall":
            return event  # the crossing wrapper performs the sleep
        if rule.fault == "torn-write":
            return event  # the site tears its own buffer
        message = (f"chaos[{event.seq}]: {rule.fault} at {event.site}"
                   + (f" key={event.key}" if event.key else ""))
        errno_value = FAULT_KINDS[rule.fault]
        if rule.fault == "conn-reset":
            raise ConnectionResetError(errno_value, message)
        raise OSError(errno_value, message)

    # -- introspection -----------------------------------------------------
    def summary(self) -> Dict[str, object]:
        by_fault: Dict[str, int] = {}
        for event in self.log:
            by_fault[event.fault] = by_fault.get(event.fault, 0) + 1
        return {
            "rules": len(self.plan.rules),
            "fired": len(self.log),
            "by_fault": dict(sorted(by_fault.items())),
        }


# -- module-level arming ---------------------------------------------------

_CONTROLLER: Optional[ChaosController] = None
#: True only when this process was handed a plan through the
#: environment (spawned pool worker) and has not loaded it yet.
_ENV_PENDING = ENV_PLAN in os.environ


def _active_controller() -> Optional[ChaosController]:
    controller = _CONTROLLER
    if controller is None and _ENV_PENDING:
        controller = _arm_from_env()
    return controller


def chaos_point(site: str, key: Optional[str] = None,
                attempt: int = 0) -> Optional[ChaosEvent]:
    """Cross an instrumented site; a no-op unless a plan is armed.

    Returns a :class:`ChaosEvent` only for torn-write faults (the site
    performs the tear); error faults raise, stalls sleep here with
    ``time.sleep``, crashes never return.  Event-loop code must use
    :func:`chaos_point_async` instead, which awaits its stalls.
    """
    controller = _active_controller()
    if controller is None:
        return None
    event = controller.fire(site, key, attempt)
    if event is not None and event.fault == "stall":
        time.sleep(event.delay_s)
        return None
    return event


async def chaos_point_async(site: str, key: Optional[str] = None,
                            attempt: int = 0) -> Optional[ChaosEvent]:
    """:func:`chaos_point` for coroutines: stalls yield to the loop.

    A ``stall`` fault injected on the serve path should model one slow
    request, not a frozen daemon — ``asyncio.sleep`` keeps every other
    connection breathing while this crossing is held.
    """
    controller = _active_controller()
    if controller is None:
        return None
    event = controller.fire(site, key, attempt)
    if event is not None and event.fault == "stall":
        await asyncio.sleep(event.delay_s)
        return None
    return event


def controller() -> Optional[ChaosController]:
    """The armed controller, or None."""
    return _CONTROLLER


def arm(plan: ChaosPlan) -> ChaosController:
    """Arm ``plan`` process-wide (and for future child processes)."""
    global _CONTROLLER, _ENV_PENDING
    _CONTROLLER = ChaosController(plan)
    _ENV_PENDING = False
    os.environ[ENV_PLAN] = plan.to_json()
    return _CONTROLLER


def disarm() -> None:
    """Disarm chaos in this process and stop exporting it to children."""
    global _CONTROLLER, _ENV_PENDING
    _CONTROLLER = None
    _ENV_PENDING = False
    os.environ.pop(ENV_PLAN, None)


def _arm_from_env() -> Optional[ChaosController]:
    global _CONTROLLER, _ENV_PENDING
    _ENV_PENDING = False
    text = os.environ.get(ENV_PLAN)
    if not text:
        return None
    _CONTROLLER = ChaosController(ChaosPlan.from_json(text))
    return _CONTROLLER


@contextmanager
def armed(plan: ChaosPlan):
    """``with armed(plan): ...`` — arm for a scope, always disarm."""
    controller = arm(plan)
    try:
        yield controller
    finally:
        disarm()
